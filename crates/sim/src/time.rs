//! Virtual time: nanoseconds since simulation start, as a totally ordered
//! integer type. All performance in the simulation is expressed in virtual
//! time, never wall-clock time, so runs are deterministic and independent
//! of host load.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// From nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        VirtualTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        VirtualTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1_000_000_000)
    }

    /// From fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time {s}");
        VirtualTime((s * 1e9).round() as u64)
    }

    /// From fractional nanoseconds (rounded).
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns >= 0.0 && ns.is_finite(), "invalid time {ns}");
        VirtualTime(ns.round() as u64)
    }

    /// Nanoseconds.
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(earlier.0))
    }

    /// Larger of two times.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.checked_sub(rhs.0).expect("negative virtual time"))
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(VirtualTime::from_secs(2).ns(), 2_000_000_000);
        assert_eq!(VirtualTime::from_ms(3).ns(), 3_000_000);
        assert_eq!(VirtualTime::from_us(5).ns(), 5_000);
        assert_eq!(VirtualTime::from_secs_f64(0.5).ns(), 500_000_000);
        assert!((VirtualTime::from_ns(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = VirtualTime::from_ns(100);
        let b = VirtualTime::from_ns(250);
        assert_eq!((a + b).ns(), 350);
        assert_eq!((b - a).ns(), 150);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c.ns(), 350);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let a = VirtualTime::from_ns(100);
        let b = VirtualTime::from_ns(250);
        assert_eq!(a.saturating_since(b), VirtualTime::ZERO);
        assert_eq!(b.saturating_since(a).ns(), 150);
    }

    #[test]
    #[should_panic(expected = "negative virtual time")]
    fn checked_subtraction_panics_on_underflow() {
        let _ = VirtualTime::from_ns(1) - VirtualTime::from_ns(2);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(VirtualTime::from_ns(12).to_string(), "12ns");
        assert_eq!(VirtualTime::from_us(12).to_string(), "12.000us");
        assert_eq!(VirtualTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(VirtualTime::from_secs(12).to_string(), "12.000s");
    }
}
