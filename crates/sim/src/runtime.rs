//! Spawning and joining the simulated ranks.
//!
//! Each rank runs on its own OS thread with a small stack; all timing is
//! virtual, so host scheduling cannot perturb results. Determinism: every
//! source of randomness is a per-rank RNG seeded from `(seed, rank)`, and
//! inter-rank interactions (message matching, collectives) are
//! order-independent, so the same configuration always produces the same
//! virtual-time outcome, to the last nanosecond.

use crate::comm::{CommWorld, NetConfig};
use crate::fs::{FsConfig, SimFs};
use crate::intercept::Interceptor;
use crate::noise::NoiseSchedule;
use crate::rank::RankCtx;
use crate::time::VirtualTime;
use crate::topology::Topology;
use std::sync::Arc;
use vapro_pmu::{CpuConfig, CpuModel, JitterModel};

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of ranks (processes or threads).
    pub ranks: usize,
    /// Machine topology.
    pub topology: Topology,
    /// CPU model configuration.
    pub cpu: CpuConfig,
    /// PMU measurement-jitter model.
    pub pmu_jitter: JitterModel,
    /// Network cost model.
    pub net: NetConfig,
    /// Filesystem cost model.
    pub fs: FsConfig,
    /// Enable the client-side file buffer (the RAxML fix).
    pub fs_buffered: bool,
    /// Noise schedule.
    pub noise: NoiseSchedule,
    /// Master seed; per-rank seeds derive from it.
    pub seed: u64,
    /// Per-rank thread stack size in KiB (ranks carry little real state).
    pub stack_kib: usize,
}

impl SimConfig {
    /// A run of `ranks` ranks on a Tianhe-like cluster, quiet machine.
    pub fn new(ranks: usize) -> Self {
        SimConfig {
            ranks,
            topology: Topology::tianhe_like(ranks),
            cpu: CpuConfig::default(),
            pmu_jitter: JitterModel::default(),
            net: NetConfig::default(),
            fs: FsConfig::default(),
            fs_buffered: false,
            noise: NoiseSchedule::quiet(),
            seed: 0xC0FFEE,
            stack_kib: 512,
        }
    }

    /// Builder: set the noise schedule.
    pub fn with_noise(mut self, noise: NoiseSchedule) -> Self {
        self.noise = noise;
        self
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }
}

/// Per-rank outcome of a run.
pub struct RankResult {
    /// Final virtual clock — the rank's total execution time.
    pub clock: VirtualTime,
    /// The rank's interceptor, carrying whatever the tool recorded.
    pub interceptor: Box<dyn Interceptor>,
    /// Number of intercepted invocations.
    pub invocations: u64,
}

/// Result of a whole simulation.
pub struct SimResult {
    /// Per-rank results, indexed by rank.
    pub ranks: Vec<RankResult>,
}

impl SimResult {
    /// The program's execution time: the slowest rank's clock (parallel
    /// programs finish when the last rank finishes).
    pub fn makespan(&self) -> VirtualTime {
        self.ranks.iter().map(|r| r.clock).max().unwrap_or(VirtualTime::ZERO)
    }

    /// Downcast one rank's interceptor to a concrete tool type.
    pub fn tool<T: 'static>(&self, rank: usize) -> Option<&T> {
        self.ranks[rank].interceptor.as_any().downcast_ref::<T>()
    }

    /// Consume the result, downcasting every rank's interceptor. Panics
    /// if any rank's tool is of a different type.
    pub fn into_tools<T: 'static>(self) -> Vec<T> {
        self.ranks
            .into_iter()
            .map(|r| {
                *r.interceptor
                    .into_any()
                    .downcast::<T>()
                    .unwrap_or_else(|_| panic!("interceptor type mismatch"))
            })
            .collect()
    }

    /// Total intercepted invocations across ranks.
    pub fn total_invocations(&self) -> u64 {
        self.ranks.iter().map(|r| r.invocations).sum()
    }
}

/// Run the simulation: `app` is executed once per rank,
/// `make_interceptor` builds each rank's tool instance.
pub fn run_simulation(
    cfg: &SimConfig,
    make_interceptor: impl Fn(usize) -> Box<dyn Interceptor> + Sync,
    app: impl Fn(&mut RankCtx) + Sync,
) -> SimResult {
    assert!(cfg.ranks > 0, "need at least one rank");
    let world = Arc::new(CommWorld::new(cfg.ranks, cfg.net));
    let fs = Arc::new(SimFs::new(cfg.fs, cfg.fs_buffered));
    let topo = Arc::new(cfg.topology.clone());
    let noise = Arc::new(cfg.noise.clone());
    let cpu = CpuModel::with_jitter(cfg.cpu, cfg.pmu_jitter);

    let results: Vec<RankResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.ranks)
            .map(|rank| {
                let world = world.clone();
                let fs = fs.clone();
                let topo = topo.clone();
                let noise = noise.clone();
                let cpu = cpu.clone();
                let interceptor = make_interceptor(rank);
                let app = &app;
                let seed = cfg.seed;
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(cfg.stack_kib * 1024)
                    .spawn_scoped(scope, move || {
                        let mut ctx = RankCtx::new(
                            rank,
                            world.size(),
                            cpu,
                            world,
                            fs,
                            topo,
                            noise,
                            seed,
                            interceptor,
                        );
                        app(&mut ctx);
                        let (clock, interceptor, invocations) = ctx.finish();
                        RankResult { clock, interceptor, invocations }
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });

    SimResult { ranks: results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callsite::CallSite;
    use crate::comm::ReduceOp;
    use crate::intercept::{NullInterceptor, RecordingInterceptor};
    use crate::noise::{NoiseEvent, NoiseKind, TargetSet};
    use vapro_pmu::WorkloadSpec;

    const SITE_A: CallSite = CallSite("test.c:1:MPI_Send");
    const SITE_B: CallSite = CallSite("test.c:2:MPI_Recv");
    const SITE_C: CallSite = CallSite("test.c:3:MPI_Allreduce");

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            if ctx.rank() == 0 {
                ctx.compute(&WorkloadSpec::mixed(1e5));
                ctx.send(1, 0, 1024, None, SITE_A);
            } else {
                let m = ctx.recv(Some(0), Some(0), SITE_B);
                assert_eq!(m.bytes, 1024);
            }
        });
        assert!(res.ranks[0].clock > VirtualTime::ZERO);
        // The receiver waits for the sender's computation, so its clock is
        // at least the sender's send time plus latency.
        assert!(res.ranks[1].clock > res.ranks[0].clock);
    }

    #[test]
    fn allreduce_produces_identical_results_everywhere() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            let mine = [ctx.rank() as f64];
            let sum = ctx.allreduce(&mine, ReduceOp::Sum, SITE_C);
            assert_eq!(sum, vec![6.0]);
        });
        assert_eq!(res.ranks.len(), 4);
    }

    #[test]
    fn collective_rendezvous_synchronises_clocks() {
        let cfg = SimConfig::new(3);
        let res = run_simulation(&cfg, null, |ctx| {
            // Rank 2 computes much longer before the barrier.
            let work = if ctx.rank() == 2 { 5e6 } else { 1e4 };
            ctx.compute(&WorkloadSpec::compute_bound(work));
            ctx.barrier(CallSite("test.c:9:MPI_Barrier"));
        });
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        // All ranks leave the barrier at the same virtual time.
        assert_eq!(clocks[0], clocks[1]);
        assert_eq!(clocks[1], clocks[2]);
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = SimConfig::new(4).with_noise(NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::MemContention { intensity: 0.5 },
            TargetSet::Ranks(vec![1]),
        )));
        let app = |ctx: &mut RankCtx| {
            ctx.compute(&WorkloadSpec::memory_bound(1e6));
            ctx.barrier(CallSite("t:1:MPI_Barrier"));
            ctx.compute(&WorkloadSpec::mixed(1e5));
        };
        let a = run_simulation(&cfg, null, app);
        let b = run_simulation(&cfg, null, app);
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x.clock, y.clock);
        }
    }

    #[test]
    fn noisy_rank_is_slower() {
        let cfg = SimConfig::new(2).with_noise(NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::CpuContention { steal: 0.5 },
            TargetSet::Ranks(vec![1]),
        )));
        let res = run_simulation(&cfg, null, |ctx| {
            ctx.compute(&WorkloadSpec::compute_bound(1e7));
        });
        let r0 = res.ranks[0].clock.ns() as f64;
        let r1 = res.ranks[1].clock.ns() as f64;
        assert!((r1 / r0 - 2.0).abs() < 0.1, "ratio {}", r1 / r0);
    }

    #[test]
    fn interceptor_sees_paired_hooks_with_context() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(
            &cfg,
            |_| Box::new(RecordingInterceptor::default()),
            |ctx| {
                ctx.region("main", |ctx| {
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, 64, None, SITE_A);
                    } else {
                        ctx.recv(Some(0), Some(0), SITE_B);
                    }
                });
            },
        );
        let rec = res.tool::<RecordingInterceptor>(0).unwrap();
        assert_eq!(rec.enters.len(), 1);
        assert_eq!(rec.exits.len(), 1);
        assert_eq!(rec.enters[0].site, SITE_A);
        assert_eq!(rec.enters[0].path.frames, vec!["main"]);
        assert!(rec.exits[0].time >= rec.enters[0].time);
    }

    #[test]
    fn hook_cost_shows_up_as_overhead() {
        let app = |ctx: &mut RankCtx| {
            for _ in 0..1000 {
                ctx.compute(&WorkloadSpec::mixed(1e4));
                ctx.barrier(CallSite("t:1:MPI_Barrier"));
            }
        };
        let cfg = SimConfig::new(2);
        let base = run_simulation(&cfg, null, app).makespan();
        let tooled = run_simulation(
            &cfg,
            |_| {
                Box::new(RecordingInterceptor { cost_ns: 2_000.0, ..Default::default() })
            },
            app,
        )
        .makespan();
        assert!(tooled > base);
        let overhead = (tooled.ns() - base.ns()) as f64 / base.ns() as f64;
        assert!(overhead > 0.001, "overhead {overhead}");
    }

    #[test]
    fn makespan_is_the_slowest_rank() {
        let cfg = SimConfig::new(3);
        let res = run_simulation(&cfg, null, |ctx| {
            ctx.compute(&WorkloadSpec::compute_bound(
                1e5 * (ctx.rank() + 1) as f64,
            ));
        });
        assert_eq!(res.makespan(), res.ranks[2].clock);
    }

    #[test]
    fn io_blocks_and_counts_suspension() {
        let cfg = SimConfig::new(1);
        let res = run_simulation(&cfg, null, |ctx| {
            ctx.fs_open(1, CallSite("t:1:open"));
            ctx.fs_read(1, 1 << 20, CallSite("t:2:read"));
        });
        assert!(res.ranks[0].clock.ns() > 1_000_000); // ≥ 1 ms of IO
        assert_eq!(res.ranks[0].invocations, 2);
    }

    #[test]
    fn invocation_counts_are_tracked() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            for _ in 0..5 {
                ctx.barrier(CallSite("t:1:MPI_Barrier"));
            }
        });
        assert_eq!(res.total_invocations(), 10);
    }
}
