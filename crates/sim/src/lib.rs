#![warn(missing_docs)]

//! # vapro-sim — virtual-time parallel runtime
//!
//! The execution substrate of the Vapro reproduction. The paper evaluates
//! on real MPI programs over Tianhe-2A; here, each rank is an OS thread
//! carrying a **virtual clock**, a simulated PMU core ([`vapro_pmu`]), and
//! MPI-like communication whose envelopes piggyback virtual timestamps, so
//! waiting time and causality are modelled exactly without real hardware.
//!
//! The pieces:
//!
//! * [`time`] — nanosecond virtual time;
//! * [`topology`] — nodes / sockets / cores and rank placement;
//! * [`callsite`] — call-site and call-path identities (what LD_PRELOAD
//!   interposition would recover from return addresses and backtraces);
//! * [`intercept`] — the [`intercept::Interceptor`] hook trait:
//!   Vapro's collector, the baselines, and the null interceptor all plug in
//!   here;
//! * [`noise`] — the injected perturbation schedule (CPU contention, memory
//!   contention, L2 hardware bug, slow node, filesystem interference);
//! * [`comm`] — eager point-to-point with virtual-time envelopes, plus
//!   max-clock collectives (barrier, allreduce, bcast, reduce, alltoall);
//! * [`fs`] — a shared filesystem with heavy-tailed latency and an optional
//!   client-side buffer (the RAxML mitigation of paper §6.5.3);
//! * [`rank`] — [`rank::RankCtx`], the API mini-apps program against;
//! * [`runtime`] — thread spawning, joining and result collection.

pub mod callsite;
pub mod comm;
pub mod fs;
pub mod intercept;
pub mod noise;
pub mod rank;
pub mod runtime;
pub mod time;
pub mod topology;

pub use callsite::{CallPath, CallSite};
pub use intercept::{EnterEvent, ExitEvent, Interceptor, InvocationKind, NullInterceptor};
pub use noise::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet};
pub use rank::RankCtx;
pub use runtime::{run_simulation, SimConfig, SimResult};
pub use time::VirtualTime;
pub use topology::{Placement, Topology};
