//! [`RankCtx`]: the per-rank execution context mini-apps program against.
//!
//! A rank owns a virtual clock, a simulated CPU/PMU, a deterministic RNG,
//! a region stack (for call-paths) and an [`Interceptor`]. Every external
//! operation — communication, IO, thread synchronisation, user markers —
//! flows through an interception bracket that fires the enter/exit hooks
//! exactly the way `LD_PRELOAD` interposition brackets a real call, and
//! charges the tool's per-hook cost to the clock (the source of the
//! overhead numbers in the paper's Table 1).

use crate::callsite::{CallPath, CallSite};
use crate::comm::{CommWorld, Message, Payload, ReduceOp};
use crate::fs::{ClientBuffer, SimFs};
use crate::intercept::{EnterEvent, ExitEvent, Interceptor, InvocationKind};
use crate::noise::NoiseSchedule;
use crate::time::VirtualTime;
use crate::topology::Topology;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use vapro_pmu::{CounterId, CounterSnapshot, CpuModel, WorkloadSpec};

/// Reserved tag for gather data movement (outside the application tag
/// space, which apps keep small).
const GATHER_TAG: u64 = u64::MAX - 1;
/// Reserved tag for scatter data movement.
const SCATTER_TAG: u64 = u64::MAX - 2;

/// A pending non-blocking operation.
#[derive(Debug, Clone)]
pub enum Request {
    /// A posted receive, matched at wait time.
    Recv {
        /// Expected source (None = any).
        src: Option<usize>,
        /// Expected tag (None = any).
        tag: Option<u64>,
    },
    /// A send whose transfer already completed eagerly.
    SendDone,
}

/// The result of a completed receive.
#[derive(Debug, Clone)]
pub struct RecvResult {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// Optional payload.
    pub data: Payload,
}

/// Per-rank execution context.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    clock: VirtualTime,
    cpu: CpuModel,
    counters: CounterSnapshot,
    world: Arc<CommWorld>,
    fs: Arc<SimFs>,
    fs_buffer: ClientBuffer,
    topo: Arc<Topology>,
    noise: Arc<NoiseSchedule>,
    rng: ChaCha8Rng,
    regions: Vec<&'static str>,
    interceptor: Box<dyn Interceptor>,
    invocations: u64,
}

impl RankCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        nranks: usize,
        cpu: CpuModel,
        world: Arc<CommWorld>,
        fs: Arc<SimFs>,
        topo: Arc<Topology>,
        noise: Arc<NoiseSchedule>,
        seed: u64,
        interceptor: Box<dyn Interceptor>,
    ) -> Self {
        let mut counters = CounterSnapshot::default();
        for id in CounterId::ALL {
            counters.put(id, 0.0);
        }
        RankCtx {
            rank,
            nranks,
            clock: VirtualTime::ZERO,
            cpu,
            counters,
            world,
            fs,
            fs_buffer: ClientBuffer::default(),
            topo,
            noise,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            regions: Vec::new(),
            interceptor,
            invocations: 0,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.nranks
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.clock
    }

    /// Deterministic per-rank RNG for application data.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }

    /// Cumulative counters with the TSC synthesised from the clock.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut c = self.counters.clone();
        c.put(CounterId::Tsc, self.clock.ns() as f64 * self.cpu.cycles_per_ns());
        c
    }

    /// Number of intercepted invocations so far.
    pub fn invocation_count(&self) -> u64 {
        self.invocations
    }

    // --- computation ------------------------------------------------------

    /// Execute a computation block: advances the clock and accumulates
    /// counters under the noise environment active *now*.
    pub fn compute(&mut self, spec: &WorkloadSpec) {
        let env = self.noise.env_for(&self.topo, self.rank, self.clock);
        let out = self.cpu.execute(spec, &env, &mut self.rng);
        for (id, v) in out.counters.entries() {
            if id != CounterId::Tsc {
                self.counters.add(id, v);
            }
        }
        self.clock += VirtualTime::from_ns_f64(out.wall_ns);
    }

    // --- regions (call-path frames) ----------------------------------------

    /// Run `body` inside a named region; the region appears in the
    /// call-paths of invocations made within.
    pub fn region<T>(&mut self, name: &'static str, body: impl FnOnce(&mut Self) -> T) -> T {
        self.regions.push(name);
        let out = body(self);
        self.regions.pop();
        out
    }

    fn path(&self, site: CallSite) -> CallPath {
        CallPath::new(&self.regions, site)
    }

    // --- the interception bracket ------------------------------------------

    /// Run `body` as an intercepted external invocation.
    fn intercepted<T>(
        &mut self,
        kind: InvocationKind,
        site: CallSite,
        body: impl FnOnce(&mut Self) -> T,
    ) -> T {
        self.invocations += 1;
        // Tool overhead: charged half at enter, half at exit.
        let hook = self.interceptor.hook_cost_ns();
        self.clock += VirtualTime::from_ns_f64(hook * 0.5);
        let enter = EnterEvent {
            rank: self.rank,
            kind,
            site,
            path: self.path(site),
            time: self.clock,
            counters: self.snapshot(),
        };
        self.interceptor.on_enter(&enter);
        let out = body(self);
        self.clock += VirtualTime::from_ns_f64(hook * 0.5);
        let exit = ExitEvent { rank: self.rank, time: self.clock, counters: self.snapshot() };
        self.interceptor.on_exit(&exit);
        out
    }

    /// Account a blocking wait of `until - clock` (if positive) as a
    /// voluntary context switch plus suspension, then land at `until`.
    fn block_until(&mut self, until: VirtualTime) {
        if until > self.clock {
            let wait = until - self.clock;
            self.counters.add(CounterId::SuspensionNs, wait.ns() as f64);
            self.counters.add(CounterId::CtxSwitchVoluntary, 1.0);
            self.clock = until;
        }
    }

    fn net_jitter(&mut self) -> f64 {
        let amp = self.noise.net_amplitude(&self.topo, self.rank, self.clock);
        if amp > 0.0 {
            self.rng.gen::<f64>() * amp
        } else {
            0.0
        }
    }

    // --- point-to-point ------------------------------------------------------

    /// Blocking (eager) send of `bytes` with optional payload.
    pub fn send(&mut self, dst: usize, tag: u64, bytes: u64, data: Payload, site: CallSite) {
        assert!(dst < self.nranks, "send to invalid rank {dst}");
        let kind = InvocationKind::Comm { op: "MPI_Send", bytes, peer: dst };
        self.intercepted(kind, site, |ctx| ctx.raw_send(dst, tag, bytes, data));
    }

    fn raw_send(&mut self, dst: usize, tag: u64, bytes: u64, data: Payload) {
        let jitter = self.net_jitter();
        let net = self.world.net;
        // Sender occupancy: software overhead plus injection.
        let inject = net.overhead_ns + bytes as f64 / net.bytes_per_ns;
        self.clock += VirtualTime::from_ns_f64(inject);
        let arrival = self.clock + VirtualTime::from_ns_f64(net.latency_ns * (1.0 + jitter));
        self.world
            .deposit(dst, Message { src: self.rank, tag, bytes, arrival, data });
    }

    /// Blocking receive matching `(src, tag)` (None = wildcard).
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u64>, site: CallSite) -> RecvResult {
        let kind = InvocationKind::Comm {
            op: "MPI_Recv",
            bytes: 0,
            peer: src.unwrap_or(usize::MAX),
        };
        self.intercepted(kind, site, |ctx| ctx.raw_recv(src, tag))
    }

    fn raw_recv(&mut self, src: Option<usize>, tag: Option<u64>) -> RecvResult {
        let net = self.world.net;
        self.clock += VirtualTime::from_ns_f64(net.overhead_ns);
        let msg = self.world.take(self.rank, src, tag);
        self.block_until(msg.arrival);
        RecvResult { src: msg.src, tag: msg.tag, bytes: msg.bytes, data: msg.data }
    }

    /// Non-blocking send (completes eagerly; `wait` on it is free).
    pub fn isend(
        &mut self,
        dst: usize,
        tag: u64,
        bytes: u64,
        data: Payload,
        site: CallSite,
    ) -> Request {
        assert!(dst < self.nranks, "isend to invalid rank {dst}");
        let kind = InvocationKind::Comm { op: "MPI_Isend", bytes, peer: dst };
        self.intercepted(kind, site, |ctx| {
            ctx.raw_send(dst, tag, bytes, data);
            Request::SendDone
        })
    }

    /// Post a non-blocking receive; matching happens at `wait`.
    pub fn irecv(&mut self, src: Option<usize>, tag: Option<u64>, site: CallSite) -> Request {
        let kind = InvocationKind::Comm {
            op: "MPI_Irecv",
            bytes: 0,
            peer: src.unwrap_or(usize::MAX),
        };
        self.intercepted(kind, site, |ctx| {
            let net = ctx.world.net;
            ctx.clock += VirtualTime::from_ns_f64(net.overhead_ns * 0.5);
            Request::Recv { src, tag }
        })
    }

    /// Wait for one request.
    pub fn wait(&mut self, req: Request, site: CallSite) -> Option<RecvResult> {
        let kind = InvocationKind::Comm { op: "MPI_Wait", bytes: 0, peer: usize::MAX };
        self.intercepted(kind, site, |ctx| ctx.raw_wait(req))
    }

    fn raw_wait(&mut self, req: Request) -> Option<RecvResult> {
        match req {
            Request::SendDone => None,
            Request::Recv { src, tag } => Some(self.raw_recv(src, tag)),
        }
    }

    /// Wait for all requests (one intercepted `MPI_Waitall`).
    pub fn waitall(&mut self, reqs: Vec<Request>, site: CallSite) -> Vec<Option<RecvResult>> {
        let kind = InvocationKind::Comm { op: "MPI_Waitall", bytes: 0, peer: usize::MAX };
        self.intercepted(kind, site, |ctx| {
            reqs.into_iter().map(|r| ctx.raw_wait(r)).collect()
        })
    }

    /// Combined send + receive (MPI_Sendrecv): posts the receive, sends,
    /// then completes the receive — deadlock-free by construction for
    /// pairwise exchanges.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        bytes: u64,
        src: Option<usize>,
        recv_tag: Option<u64>,
        site: CallSite,
    ) -> RecvResult {
        assert!(dst < self.nranks, "sendrecv to invalid rank {dst}");
        let kind = InvocationKind::Comm { op: "MPI_Sendrecv", bytes, peer: dst };
        self.intercepted(kind, site, |ctx| {
            ctx.raw_send(dst, send_tag, bytes, None);
            ctx.raw_recv(src, recv_tag)
        })
    }

    // --- collectives ----------------------------------------------------------

    /// Barrier over all ranks.
    pub fn barrier(&mut self, site: CallSite) {
        let kind = InvocationKind::Comm { op: "MPI_Barrier", bytes: 0, peer: usize::MAX };
        self.intercepted(kind, site, |ctx| {
            ctx.raw_collective(0, None, None);
        });
    }

    /// All-reduce of `data` with `op`; every rank receives the result.
    pub fn allreduce(&mut self, data: &[f64], op: ReduceOp, site: CallSite) -> Vec<f64> {
        let bytes = (data.len() * 8) as u64;
        let kind = InvocationKind::Comm { op: "MPI_Allreduce", bytes, peer: usize::MAX };
        self.intercepted(kind, site, |ctx| {
            let payload = ctx.raw_collective(bytes, Some(data), Some(op));
            payload.map(|p| p.to_vec()).unwrap_or_default()
        })
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone
    /// receives the root's payload. `bytes` is the broadcast size, which
    /// every participant knows (MPI semantics) and pays uniformly.
    pub fn bcast(
        &mut self,
        root: usize,
        data: Option<&[f64]>,
        bytes: u64,
        site: CallSite,
    ) -> Vec<f64> {
        debug_assert_eq!(data.is_some(), self.rank == root, "only the root contributes");
        let kind = InvocationKind::Comm { op: "MPI_Bcast", bytes, peer: root };
        self.intercepted(kind, site, |ctx| {
            let payload = ctx.raw_collective(bytes, data, None);
            payload.map(|p| p.to_vec()).unwrap_or_default()
        })
    }

    /// All-to-all exchange of `bytes_per_peer` to every other rank
    /// (cost only; no payload).
    pub fn alltoall(&mut self, bytes_per_peer: u64, site: CallSite) {
        let total = bytes_per_peer * self.nranks as u64;
        let kind = InvocationKind::Comm { op: "MPI_Alltoall", bytes: total, peer: usize::MAX };
        self.intercepted(kind, site, |ctx| {
            ctx.raw_collective(total, None, None);
        });
    }

    /// Gather `contribution` at `root`: the root receives every rank's
    /// data concatenated in rank order; non-roots receive an empty vec.
    ///
    /// Data moves over the mailbox; non-roots deposit *before* the
    /// collective rendezvous, so once all ranks have arrived the root's
    /// takes are guaranteed to succeed.
    pub fn gather(&mut self, root: usize, contribution: &[f64], site: CallSite) -> Vec<f64> {
        assert!(root < self.nranks, "gather to invalid root {root}");
        let bytes = (contribution.len() * 8) as u64;
        let kind = InvocationKind::Comm { op: "MPI_Gather", bytes, peer: root };
        self.intercepted(kind, site, |ctx| {
            if ctx.rank != root {
                let mut tagged = Vec::with_capacity(contribution.len() + 1);
                tagged.push(ctx.rank as f64);
                tagged.extend_from_slice(contribution);
                let arrival = ctx.clock;
                ctx.world.deposit(
                    root,
                    crate::comm::Message {
                        src: ctx.rank,
                        tag: GATHER_TAG,
                        bytes,
                        arrival,
                        data: Some(Arc::new(tagged)),
                    },
                );
            }
            ctx.raw_collective(bytes, None, None);
            if ctx.rank == root {
                let mut parts: Vec<(usize, Vec<f64>)> = Vec::with_capacity(ctx.nranks);
                parts.push((ctx.rank, contribution.to_vec()));
                for _ in 0..ctx.nranks - 1 {
                    let msg = ctx.world.take(ctx.rank, None, Some(GATHER_TAG));
                    let data = msg.data.expect("gather payload");
                    parts.push((data[0] as usize, data[1..].to_vec()));
                }
                parts.sort_by_key(|p| p.0);
                parts.into_iter().flat_map(|p| p.1).collect()
            } else {
                Vec::new()
            }
        })
    }

    /// Scatter: the root sends `per_rank` elements to each rank; every
    /// rank receives its slice. Non-roots pass `None`.
    pub fn scatter(
        &mut self,
        root: usize,
        data: Option<&[f64]>,
        per_rank: usize,
        site: CallSite,
    ) -> Vec<f64> {
        assert!(root < self.nranks, "scatter from invalid root {root}");
        debug_assert_eq!(data.is_some(), self.rank == root, "only the root contributes");
        if let Some(d) = data {
            assert_eq!(d.len(), per_rank * self.nranks, "scatter size mismatch");
        }
        let bytes = (per_rank * 8) as u64;
        let kind = InvocationKind::Comm { op: "MPI_Scatter", bytes, peer: root };
        self.intercepted(kind, site, |ctx| {
            if ctx.rank == root {
                let d = data.expect("root data");
                for dst in 0..ctx.nranks {
                    if dst == ctx.rank {
                        continue;
                    }
                    let slice = d[dst * per_rank..(dst + 1) * per_rank].to_vec();
                    let arrival = ctx.clock;
                    ctx.world.deposit(
                        dst,
                        crate::comm::Message {
                            src: root,
                            tag: SCATTER_TAG,
                            bytes,
                            arrival,
                            data: Some(Arc::new(slice)),
                        },
                    );
                }
            }
            ctx.raw_collective(bytes, None, None);
            if ctx.rank == root {
                let d = data.expect("root data");
                d[root * per_rank..(root + 1) * per_rank].to_vec()
            } else {
                let msg = ctx.world.take(ctx.rank, Some(root), Some(SCATTER_TAG));
                msg.data.expect("scatter payload").to_vec()
            }
        })
    }

    fn raw_collective(
        &mut self,
        bytes: u64,
        contribution: Option<&[f64]>,
        op: Option<ReduceOp>,
    ) -> Payload {
        let jitter = self.net_jitter();
        let net = self.world.net;
        self.clock += VirtualTime::from_ns_f64(net.overhead_ns);
        let (rendezvous, payload) = self.world.collective().sync(self.clock, contribution, op);
        // Waiting for slower ranks is a blocking wait…
        self.block_until(rendezvous);
        // …then the collective itself costs log(n) stages.
        let cost = net.collective_ns(bytes, self.nranks, jitter);
        self.clock += VirtualTime::from_ns_f64(cost);
        payload
    }

    // --- IO ---------------------------------------------------------------------

    /// Open a file (metadata RPC).
    pub fn fs_open(&mut self, fd: u64, site: CallSite) {
        let kind = InvocationKind::Io { op: "open", bytes: 0, fd, write: false };
        self.intercepted(kind, site, |ctx| {
            let slow = ctx.noise.fs_slowdown(&ctx.topo, ctx.rank, ctx.clock);
            let mut buffer = std::mem::take(&mut ctx.fs_buffer);
            let cost = ctx.fs.open_cost_ns(&mut buffer, fd, slow, &mut ctx.rng);
            ctx.fs_buffer = buffer;
            ctx.blocking_io(cost);
        });
    }

    /// Read `bytes` from `fd`.
    pub fn fs_read(&mut self, fd: u64, bytes: u64, site: CallSite) {
        let kind = InvocationKind::Io { op: "read", bytes, fd, write: false };
        self.intercepted(kind, site, |ctx| {
            let slow = ctx.noise.fs_slowdown(&ctx.topo, ctx.rank, ctx.clock);
            let mut buffer = std::mem::take(&mut ctx.fs_buffer);
            let cost = ctx.fs.read_cost_ns(&mut buffer, fd, bytes, slow, &mut ctx.rng);
            ctx.fs_buffer = buffer;
            ctx.blocking_io(cost);
        });
    }

    /// Write `bytes` to `fd`.
    pub fn fs_write(&mut self, fd: u64, bytes: u64, site: CallSite) {
        let kind = InvocationKind::Io { op: "write", bytes, fd, write: true };
        self.intercepted(kind, site, |ctx| {
            let slow = ctx.noise.fs_slowdown(&ctx.topo, ctx.rank, ctx.clock);
            let cost = ctx.fs.write_cost_ns(fd, bytes, slow, &mut ctx.rng);
            ctx.blocking_io(cost);
        });
    }

    /// IO blocks the process: voluntary context switch plus suspension.
    fn blocking_io(&mut self, cost_ns: f64) {
        let until = self.clock + VirtualTime::from_ns_f64(cost_ns);
        self.counters.add(CounterId::SuspensionNs, cost_ns);
        self.counters.add(CounterId::CtxSwitchVoluntary, 1.0);
        self.clock = until;
    }

    // --- thread ops and user markers ----------------------------------------------

    /// A pthread-style synchronisation over all ranks (used by the
    /// multi-threaded mini-apps; intercepted like `pthread_barrier_wait`).
    pub fn thread_barrier(&mut self, site: CallSite) {
        let kind = InvocationKind::Thread { op: "pthread_barrier_wait" };
        self.intercepted(kind, site, |ctx| {
            ctx.raw_collective(0, None, None);
        });
    }

    /// A user-defined explicit invocation — the marker Vapro inserts with
    /// Dyninst at key points of invocation-sparse binaries (paper §5).
    pub fn user_marker(&mut self, label: &'static str, site: CallSite) {
        let kind = InvocationKind::UserMarker { label };
        self.intercepted(kind, site, |_| {});
    }

    // --- teardown -------------------------------------------------------------

    pub(crate) fn finish(self) -> (VirtualTime, Box<dyn Interceptor>, u64) {
        (self.clock, self.interceptor, self.invocations)
    }
}
