//! The interception layer: the simulated equivalent of Vapro's
//! `LD_PRELOAD`/`dlsym` function interposition (paper §5).
//!
//! The runtime calls [`Interceptor::on_enter`] / [`Interceptor::on_exit`]
//! around every external invocation — MPI communication, IO, pthread
//! operations, and user-defined explicit markers (the paper inserts those
//! with Dyninst into invocation-sparse binaries). Vapro's collector, the
//! vSensor and mpiP baselines, and the no-op baseline used for overhead
//! measurement all implement this trait.
//!
//! An interceptor charges `hook_cost_ns()` of virtual time per hook pair,
//! which is how the Table 1 overhead experiment measures tool overhead:
//! context-aware STGs pay more per hook (call-stack backtracing) than
//! context-free ones.

use crate::callsite::{CallPath, CallSite};
use crate::time::VirtualTime;
use std::any::Any;
use vapro_pmu::CounterSnapshot;

/// The class of an intercepted external invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InvocationKind {
    /// An MPI-like communication call. `bytes` is the message volume,
    /// `peer` the remote rank (`usize::MAX` for collectives), and `op`
    /// the function name.
    Comm {
        /// Function name, e.g. `"MPI_Send"`.
        op: &'static str,
        /// Message bytes (sum over the operation).
        bytes: u64,
        /// Peer rank, or `usize::MAX` for collective scope.
        peer: usize,
    },
    /// A POSIX-IO / MPI-IO call.
    Io {
        /// Function name, e.g. `"read"`.
        op: &'static str,
        /// Bytes transferred.
        bytes: u64,
        /// File descriptor (identifies the file).
        fd: u64,
        /// True for writes, false for reads.
        write: bool,
    },
    /// A pthread-like call (mutex, condvar, join).
    Thread {
        /// Function name, e.g. `"pthread_mutex_lock"`.
        op: &'static str,
    },
    /// A user-defined explicit invocation inserted at a key program point
    /// (function entry/exit) — the Dyninst path of paper §5.
    UserMarker {
        /// Marker label.
        label: &'static str,
    },
}

impl InvocationKind {
    /// The function name of the invocation.
    pub fn op_name(&self) -> &'static str {
        match self {
            InvocationKind::Comm { op, .. } => op,
            InvocationKind::Io { op, .. } => op,
            InvocationKind::Thread { op } => op,
            InvocationKind::UserMarker { label } => label,
        }
    }

    /// The workload-identifying invocation arguments, as the numeric
    /// vector Vapro records (message size / peer for communication, size /
    /// fd / mode for IO — paper §3.3).
    pub fn arg_vector(&self) -> Vec<f64> {
        match self {
            InvocationKind::Comm { bytes, peer, .. } => {
                vec![*bytes as f64, *peer as f64]
            }
            InvocationKind::Io { bytes, fd, write, .. } => {
                vec![*bytes as f64, *fd as f64, f64::from(u8::from(*write))]
            }
            InvocationKind::Thread { .. } => vec![],
            InvocationKind::UserMarker { .. } => vec![],
        }
    }
}

/// Everything the hook sees when an external invocation begins.
#[derive(Debug, Clone)]
pub struct EnterEvent {
    /// The invoking rank.
    pub rank: usize,
    /// What is being invoked.
    pub kind: InvocationKind,
    /// Call-site of the invocation.
    pub site: CallSite,
    /// Full call path (region stack + site).
    pub path: CallPath,
    /// Virtual time at entry.
    pub time: VirtualTime,
    /// Cumulative counters at entry (full vector; the tool projects to its
    /// active set).
    pub counters: CounterSnapshot,
}

/// Everything the hook sees when the invocation returns.
#[derive(Debug, Clone)]
pub struct ExitEvent {
    /// The invoking rank.
    pub rank: usize,
    /// Virtual time at exit.
    pub time: VirtualTime,
    /// Cumulative counters at exit.
    pub counters: CounterSnapshot,
}

/// A tool plugged into the interception layer. One instance per rank
/// (mirroring a preloaded library's per-process state), so implementations
/// need no internal locking on the hot path.
pub trait Interceptor: Any + Send {
    /// Called immediately before the external function body runs.
    fn on_enter(&mut self, ev: &EnterEvent);

    /// Called immediately after the external function body returns.
    fn on_exit(&mut self, ev: &ExitEvent);

    /// Virtual-time cost charged per enter/exit pair (tool overhead).
    fn hook_cost_ns(&self) -> f64 {
        0.0
    }

    /// Downcast support for retrieving concrete tools from
    /// [`crate::runtime::SimResult`].
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Consuming downcast support (implement as `{ self }`).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The no-op interceptor: zero cost, drops every event. Baseline runs for
/// overhead measurement use this.
#[derive(Debug, Default, Clone)]
pub struct NullInterceptor;

impl Interceptor for NullInterceptor {
    fn on_enter(&mut self, _ev: &EnterEvent) {}
    fn on_exit(&mut self, _ev: &ExitEvent) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A recording interceptor that keeps every event — handy for tests and
/// for verifying the runtime's hook discipline.
#[derive(Debug, Default)]
pub struct RecordingInterceptor {
    /// Enter events in order.
    pub enters: Vec<EnterEvent>,
    /// Exit events in order.
    pub exits: Vec<ExitEvent>,
    /// Cost charged per hook pair.
    pub cost_ns: f64,
}

impl Interceptor for RecordingInterceptor {
    fn on_enter(&mut self, ev: &EnterEvent) {
        self.enters.push(ev.clone());
    }
    fn on_exit(&mut self, ev: &ExitEvent) {
        self.exits.push(ev.clone());
    }
    fn hook_cost_ns(&self) -> f64 {
        self.cost_ns
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_arg_vector_captures_size_and_peer() {
        let k = InvocationKind::Comm { op: "MPI_Send", bytes: 4096, peer: 3 };
        assert_eq!(k.arg_vector(), vec![4096.0, 3.0]);
        assert_eq!(k.op_name(), "MPI_Send");
    }

    #[test]
    fn io_arg_vector_captures_mode() {
        let r = InvocationKind::Io { op: "read", bytes: 512, fd: 7, write: false };
        let w = InvocationKind::Io { op: "write", bytes: 512, fd: 7, write: true };
        assert_ne!(r.arg_vector(), w.arg_vector());
        assert_eq!(r.arg_vector()[0], 512.0);
    }

    #[test]
    fn null_interceptor_is_free() {
        let n = NullInterceptor;
        assert_eq!(n.hook_cost_ns(), 0.0);
    }

    #[test]
    fn recording_interceptor_downcasts() {
        let mut boxed: Box<dyn Interceptor> = Box::new(RecordingInterceptor::default());
        assert!(boxed.as_any().downcast_ref::<RecordingInterceptor>().is_some());
        assert!(boxed.as_any_mut().downcast_mut::<NullInterceptor>().is_none());
    }
}
