//! A simulated shared (distributed) filesystem.
//!
//! IO latency on a shared parallel filesystem is heavy-tailed: most
//! operations complete near the base cost, but contention from other
//! tenants occasionally inflates an operation by large factors — the
//! behaviour behind the RAxML case study (paper §6.5.3), where one process
//! merging many small files suffered large execution-time variance.
//!
//! The model: every operation costs `base + bytes/bandwidth`, multiplied
//! by a Pareto-tailed contention draw whose ceiling comes from the active
//! `FsInterference` noise. An optional **client-side file buffer** caches
//! file contents after first access — the mitigation the paper implements,
//! which cut the standard deviation of RAxML's run time by 73.5 %.

use parking_lot::Mutex;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cost model for the shared filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsConfig {
    /// Fixed per-operation latency (metadata + RPC), ns. Small-file
    /// workloads are dominated by this term.
    pub base_ns: f64,
    /// Streaming bandwidth, bytes per ns.
    pub bytes_per_ns: f64,
    /// Open/close metadata operation cost, ns.
    pub meta_ns: f64,
    /// Pareto tail shape for contention draws (higher = lighter tail).
    pub tail_shape: f64,
    /// Probability that an operation hits contention at all.
    pub tail_prob: f64,
    /// Cost of serving one byte from the client-side buffer, ns
    /// (a memcpy, orders of magnitude below the network path).
    pub buffered_byte_ns: f64,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            base_ns: 80_000.0,      // 80 µs RPC round-trip
            bytes_per_ns: 1.0,      // ~1 GB/s per client
            meta_ns: 120_000.0,
            tail_shape: 1.8,
            tail_prob: 0.12,
            buffered_byte_ns: 0.02, // ~50 GB/s memcpy
        }
    }
}

/// Per-file metadata.
#[derive(Debug, Clone, Default)]
struct FileMeta {
    size: u64,
}

/// The shared filesystem, plus per-rank client buffers.
pub struct SimFs {
    cfg: FsConfig,
    files: Mutex<HashMap<u64, FileMeta>>,
    /// Whether ranks run with the client-side file buffer (the fix).
    buffered: bool,
}

/// A per-rank view of buffered file contents (bytes cached so far) and
/// metadata (files already opened once).
#[derive(Debug, Default, Clone)]
pub struct ClientBuffer {
    cached: HashMap<u64, u64>,
    opened: std::collections::HashSet<u64>,
}

impl ClientBuffer {
    /// Bytes of `fd` already cached.
    pub fn cached_bytes(&self, fd: u64) -> u64 {
        self.cached.get(&fd).copied().unwrap_or(0)
    }

    /// Has `fd` been opened before by this rank?
    pub fn is_opened(&self, fd: u64) -> bool {
        self.opened.contains(&fd)
    }

    fn note(&mut self, fd: u64, bytes: u64) {
        let e = self.cached.entry(fd).or_insert(0);
        *e = (*e).max(bytes);
    }

    fn note_open(&mut self, fd: u64) {
        self.opened.insert(fd);
    }
}

impl SimFs {
    /// A filesystem with the given cost model. `buffered` enables the
    /// client-side file buffer on every rank.
    pub fn new(cfg: FsConfig, buffered: bool) -> Self {
        SimFs { cfg, files: Mutex::new(HashMap::new()), buffered }
    }

    /// The cost model.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// Whether the client buffer is enabled.
    pub fn is_buffered(&self) -> bool {
        self.buffered
    }

    /// Cost of an `open` of `fd` (metadata RPC), under `fs_slowdown` ≥ 1.
    /// With the client buffer, re-opening a previously opened file costs
    /// only a lookup (the buffer caches the dentry/inode too).
    pub fn open_cost_ns<R: Rng + ?Sized>(
        &self,
        buffer: &mut ClientBuffer,
        fd: u64,
        fs_slowdown: f64,
        rng: &mut R,
    ) -> f64 {
        if self.buffered && buffer.is_opened(fd) {
            return 200.0; // hash lookup + permission recheck
        }
        if self.buffered {
            buffer.note_open(fd);
        }
        self.cfg.meta_ns * self.contention(fs_slowdown, rng)
    }

    /// Cost of reading `bytes` from `fd`. Buffered re-reads bypass the
    /// network path entirely.
    pub fn read_cost_ns<R: Rng + ?Sized>(
        &self,
        buffer: &mut ClientBuffer,
        fd: u64,
        bytes: u64,
        fs_slowdown: f64,
        rng: &mut R,
    ) -> f64 {
        if self.buffered && buffer.cached_bytes(fd) >= bytes {
            return bytes as f64 * self.cfg.buffered_byte_ns;
        }
        let cost = (self.cfg.base_ns + bytes as f64 / self.cfg.bytes_per_ns)
            * self.contention(fs_slowdown, rng);
        if self.buffered {
            buffer.note(fd, bytes);
        }
        cost
    }

    /// Cost of writing `bytes` to `fd` (tracks file size; writes always
    /// take the network path — the paper's buffer is a read cache).
    pub fn write_cost_ns<R: Rng + ?Sized>(
        &self,
        fd: u64,
        bytes: u64,
        fs_slowdown: f64,
        rng: &mut R,
    ) -> f64 {
        {
            let mut files = self.files.lock();
            let meta = files.entry(fd).or_default();
            meta.size = meta.size.max(bytes);
        }
        (self.cfg.base_ns + bytes as f64 / self.cfg.bytes_per_ns)
            * self.contention(fs_slowdown, rng)
    }

    /// Known size of `fd` (0 if never written).
    pub fn file_size(&self, fd: u64) -> u64 {
        self.files.lock().get(&fd).map_or(0, |m| m.size)
    }

    /// A multiplicative contention factor ≥ 1 with a Pareto tail capped at
    /// `fs_slowdown` (which is 1.0 when no `FsInterference` noise is
    /// active, collapsing the draw to exactly 1).
    fn contention<R: Rng + ?Sized>(&self, fs_slowdown: f64, rng: &mut R) -> f64 {
        if fs_slowdown <= 1.0 {
            return 1.0;
        }
        if rng.gen::<f64>() >= self.cfg.tail_prob {
            return 1.0;
        }
        // Pareto(shape) on [1, inf), truncated at fs_slowdown.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let draw = u.powf(-1.0 / self.cfg.tail_shape);
        draw.min(fs_slowdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn quiet_fs_is_deterministic() {
        let fs = SimFs::new(FsConfig::default(), false);
        let mut buf = ClientBuffer::default();
        let mut r = rng();
        let a = fs.read_cost_ns(&mut buf, 1, 4096, 1.0, &mut r);
        let b = fs.read_cost_ns(&mut buf, 1, 4096, 1.0, &mut r);
        assert_eq!(a, b);
        assert!(a >= fs.config().base_ns);
    }

    #[test]
    fn small_files_are_latency_dominated() {
        let fs = SimFs::new(FsConfig::default(), false);
        let mut buf = ClientBuffer::default();
        let mut r = rng();
        let small = fs.read_cost_ns(&mut buf, 1, 64, 1.0, &mut r);
        let big = fs.read_cost_ns(&mut buf, 2, 1 << 20, 1.0, &mut r);
        // A 64-byte read costs almost the same as the base latency…
        assert!(small < fs.config().base_ns * 1.01);
        // …while a 1 MiB read is bandwidth-dominated.
        assert!(big > small * 5.0);
    }

    #[test]
    fn interference_produces_heavy_tail() {
        let fs = SimFs::new(FsConfig::default(), false);
        let mut buf = ClientBuffer::default();
        let mut r = rng();
        let costs: Vec<f64> = (0..2000)
            .map(|i| fs.read_cost_ns(&mut buf, i, 4096, 10.0, &mut r))
            .collect();
        let base = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let slow = costs.iter().filter(|&&c| c > base * 1.5).count();
        assert!(max > base * 3.0, "no tail: max {max} base {base}");
        // Tail events are a minority.
        assert!(slow > 0 && slow < costs.len() / 3, "slow = {slow}");
    }

    #[test]
    fn buffer_eliminates_reread_cost() {
        let fs = SimFs::new(FsConfig::default(), true);
        let mut buf = ClientBuffer::default();
        let mut r = rng();
        let first = fs.read_cost_ns(&mut buf, 9, 4096, 10.0, &mut r);
        let second = fs.read_cost_ns(&mut buf, 9, 4096, 10.0, &mut r);
        assert!(second < first / 100.0, "buffered read {second} vs first {first}");
        // A larger read than what is cached goes back to the network.
        let bigger = fs.read_cost_ns(&mut buf, 9, 8192, 1.0, &mut r);
        assert!(bigger > second * 10.0);
    }

    #[test]
    fn writes_track_file_size() {
        let fs = SimFs::new(FsConfig::default(), false);
        let mut r = rng();
        assert_eq!(fs.file_size(3), 0);
        let _ = fs.write_cost_ns(3, 1000, 1.0, &mut r);
        assert_eq!(fs.file_size(3), 1000);
        let _ = fs.write_cost_ns(3, 500, 1.0, &mut r);
        assert_eq!(fs.file_size(3), 1000); // max, not last
    }
}
