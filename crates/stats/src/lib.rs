#![warn(missing_docs)]

//! # vapro-stats — statistics substrate
//!
//! Implements, from scratch, every statistical tool the Vapro pipeline
//! needs:
//!
//! * small dense [`matrix`] algebra (inverse, determinant, solve);
//! * [`special`] functions (log-gamma, regularised incomplete gamma and
//!   beta) backing the [`dist`] distributions (normal, Student-t, χ², F);
//! * multivariate ordinary least squares ([`ols`]) with standard errors,
//!   t-statistics and two-sided p-values — the engine of the paper's
//!   OLS-based factor-time estimation (§4.2);
//! * the Farrar–Glauber multicollinearity test ([`fg`]) used to screen the
//!   explanatory factors before OLS;
//! * clustering quality scores ([`vmeasure`]: homogeneity, completeness,
//!   V-Measure) used for Table 2's verification;
//! * descriptive statistics ([`describe`]) and Pearson correlation.

pub mod describe;
pub mod dist;
pub mod fg;
pub mod matrix;
pub mod ols;
pub mod special;
pub mod vmeasure;

pub use describe::{cdf_points, mean, pearson, percentile, std_dev, variance, Summary};
pub use dist::{
    chi2_quantile, chi2_sf, f_sf, normal_cdf, normal_quantile, t_quantile, t_sf_two_sided,
};
pub use fg::{FarrarGlauber, FgOutcome};
pub use matrix::Matrix;
pub use ols::{OlsFit, OlsTerm};
pub use vmeasure::{v_measure, VMeasure};
