//! Multivariate ordinary least squares.
//!
//! The paper's OLS-based statistical method (§4.2) regresses fragment
//! execution time on normalised factor counters to estimate each factor's
//! time impact, keeping only factors significant at p < 0.05. This module
//! provides a full OLS fit: coefficients, residual variance, standard
//! errors, t-statistics, two-sided p-values, and R².

use crate::dist::t_sf_two_sided;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// One fitted term (a column of the design matrix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsTerm {
    /// Estimated coefficient β̂.
    pub coef: f64,
    /// Standard error of β̂.
    pub std_err: f64,
    /// t-statistic β̂ / se(β̂).
    pub t_stat: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl OlsTerm {
    /// Significance test at the given α (the paper uses 0.05).
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Two-sided `(1 − alpha)` confidence interval for the coefficient
    /// given the fit's residual degrees of freedom.
    pub fn confidence_interval(&self, alpha: f64, df_resid: usize) -> (f64, f64) {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range");
        let t = crate::dist::t_quantile(1.0 - alpha / 2.0, df_resid as f64);
        (self.coef - t * self.std_err, self.coef + t * self.std_err)
    }
}

/// A complete OLS fit of `y ~ X` (plus optional intercept).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Per-column terms, in design-matrix column order. When fitted with
    /// an intercept, index 0 is the intercept.
    pub terms: Vec<OlsTerm>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual degrees of freedom (n − k).
    pub df_resid: usize,
    /// Residual standard error.
    pub resid_std_err: f64,
    /// Whether an intercept column was prepended.
    pub has_intercept: bool,
}

impl OlsFit {
    /// Fit `y` against the columns of `x` (`x[j]` is the j-th explanatory
    /// variable, all of length n). Returns `None` when the system is
    /// rank-deficient or has non-positive residual degrees of freedom.
    pub fn fit(x: &[Vec<f64>], y: &[f64], intercept: bool) -> Option<OlsFit> {
        let n = y.len();
        let k_vars = x.len();
        let k = k_vars + usize::from(intercept);
        if n <= k || k == 0 {
            return None;
        }
        for col in x {
            assert_eq!(col.len(), n, "design column length mismatch");
        }

        // Build design matrix.
        let mut design = Matrix::zeros(n, k);
        for i in 0..n {
            let mut j = 0;
            if intercept {
                design[(i, 0)] = 1.0;
                j = 1;
            }
            for (c, col) in x.iter().enumerate() {
                design[(i, j + c)] = col[i];
            }
        }

        let xt = design.transpose();
        let xtx = xt.matmul(&design);
        let xtx_inv = xtx.inverse()?;
        let xty = xt.matmul(&Matrix::column(y));
        let beta = xtx_inv.matmul(&xty);

        // Residuals.
        let yhat = design.matmul(&beta);
        let mut ss_res = 0.0;
        let ybar = crate::describe::mean(y);
        let mut ss_tot = 0.0;
        for i in 0..n {
            let r = y[i] - yhat[(i, 0)];
            ss_res += r * r;
            ss_tot += (y[i] - ybar).powi(2);
        }
        let df_resid = n - k;
        let sigma2 = ss_res / df_resid as f64;
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };

        let df = df_resid as f64;
        let terms = (0..k)
            .map(|j| {
                let var = (sigma2 * xtx_inv[(j, j)]).max(0.0);
                let se = var.sqrt();
                let coef = beta[(j, 0)];
                let (t, p) = if se > 0.0 {
                    let t = coef / se;
                    (t, t_sf_two_sided(t, df))
                } else {
                    // A zero-variance (exactly determined) coefficient:
                    // infinitely significant if nonzero.
                    if coef.abs() > 1e-12 {
                        (f64::INFINITY, 0.0)
                    } else {
                        (0.0, 1.0)
                    }
                };
                OlsTerm { coef, std_err: se, t_stat: t, p_value: p }
            })
            .collect();

        Some(OlsFit {
            terms,
            r_squared,
            df_resid,
            resid_std_err: sigma2.sqrt(),
            has_intercept: intercept,
        })
    }

    /// The terms for the explanatory variables only (skipping any intercept).
    pub fn var_terms(&self) -> &[OlsTerm] {
        if self.has_intercept {
            &self.terms[1..]
        } else {
            &self.terms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        // y = 3 + 2x, no noise.
        let x = vec![vec![0.0, 1.0, 2.0, 3.0, 4.0]];
        let y = vec![3.0, 5.0, 7.0, 9.0, 11.0];
        let fit = OlsFit::fit(&x, &y, true).unwrap();
        assert!((fit.terms[0].coef - 3.0).abs() < 1e-10);
        assert!((fit.terms[1].coef - 2.0).abs() < 1e-10);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn two_variable_plane() {
        // y = 1 + 2a - 3b over a small grid.
        let mut a = vec![];
        let mut b = vec![];
        let mut y = vec![];
        for i in 0..4 {
            for j in 0..4 {
                a.push(i as f64);
                b.push(j as f64);
                y.push(1.0 + 2.0 * i as f64 - 3.0 * j as f64);
            }
        }
        let fit = OlsFit::fit(&[a, b], &y, true).unwrap();
        assert!((fit.terms[1].coef - 2.0).abs() < 1e-10);
        assert!((fit.terms[2].coef + 3.0).abs() < 1e-10);
    }

    #[test]
    fn noisy_fit_flags_significant_and_insignificant_terms() {
        // y = 10 + 5x1 + noise; x2 is irrelevant. Deterministic pseudo-noise.
        let n = 60;
        let x1: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let x2: Vec<f64> = (0..n).map(|i| ((i * 7919) % 13) as f64).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let noise = (((i * 2654435761_usize) % 1000) as f64 / 1000.0 - 0.5) * 2.0;
                10.0 + 5.0 * x1[i] + noise
            })
            .collect();
        let fit = OlsFit::fit(&[x1, x2], &y, true).unwrap();
        let terms = fit.var_terms();
        assert!(terms[0].significant(0.05), "x1 p={}", terms[0].p_value);
        assert!(!terms[1].significant(0.05), "x2 p={}", terms[1].p_value);
        assert!((terms[0].coef - 5.0).abs() < 0.2);
    }

    #[test]
    fn collinear_design_is_rejected() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2: Vec<f64> = x1.iter().map(|v| 2.0 * v).collect();
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(OlsFit::fit(&[x1, x2], &y, true).is_none());
    }

    #[test]
    fn underdetermined_system_is_rejected() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let y = vec![1.0, 2.0];
        assert!(OlsFit::fit(&x, &y, true).is_none());
    }

    #[test]
    fn confidence_intervals_cover_the_true_coefficient() {
        // y = 10 + 5x + deterministic pseudo-noise: the 95 % CI of the
        // slope should contain 5 and exclude 0.
        let n = 60;
        let x1: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let noise = (((i * 2654435761_usize) % 1000) as f64 / 1000.0 - 0.5) * 2.0;
                10.0 + 5.0 * x1[i] + noise
            })
            .collect();
        let fit = OlsFit::fit(&[x1], &y, true).unwrap();
        let (lo, hi) = fit.var_terms()[0].confidence_interval(0.05, fit.df_resid);
        assert!(lo < 5.0 && 5.0 < hi, "CI ({lo}, {hi}) misses 5");
        assert!(lo > 0.0, "CI should exclude 0: ({lo}, {hi})");
        // Tighter alpha → wider interval.
        let (lo99, hi99) = fit.var_terms()[0].confidence_interval(0.01, fit.df_resid);
        assert!(lo99 < lo && hi99 > hi);
    }

    #[test]
    fn no_intercept_fit() {
        // y = 4x exactly through origin.
        let x = vec![vec![1.0, 2.0, 3.0]];
        let y = vec![4.0, 8.0, 12.0];
        let fit = OlsFit::fit(&x, &y, false).unwrap();
        assert_eq!(fit.terms.len(), 1);
        assert!((fit.terms[0].coef - 4.0).abs() < 1e-10);
        assert_eq!(fit.var_terms().len(), 1);
    }

    #[test]
    fn r_squared_decreases_with_pure_noise_target() {
        let x = vec![(0..40).map(|i| i as f64).collect::<Vec<_>>()];
        let y: Vec<f64> = (0..40).map(|i| ((i * 31) % 17) as f64).collect();
        let fit = OlsFit::fit(&x, &y, true).unwrap();
        assert!(fit.r_squared < 0.3);
    }
}
