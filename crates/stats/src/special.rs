//! Special functions: log-gamma, regularised incomplete gamma and beta.
//!
//! Standard numerical recipes (Lanczos approximation for ln Γ; series and
//! continued-fraction evaluation for the incomplete functions), implemented
//! here so the workspace stays dependency-free for statistics. Accuracy is
//! ~1e-10 relative over the parameter ranges the diagnosis pipeline uses,
//! verified against known values in the tests.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of P(a, x), convergent for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of Q(a, x), convergent for x ≥ a + 1
/// (modified Lentz algorithm).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularised incomplete beta I_x(a, b).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain: a={a}, b={b}");
    assert!((0.0..=1.0).contains(&x), "beta_inc x out of range: {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its region of fast convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// The error function, via the incomplete gamma: erf(x) = P(1/2, x²) for x ≥ 0.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        gamma_p(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integer_values() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10);
        close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = √π / 2.
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-10);
    }

    #[test]
    fn gamma_p_q_are_complements() {
        for (a, x) in [(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 1.0, 2.5, 7.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // Chi-square with 2 dof: P(1, x/2) at x = 5.991 ≈ 0.95.
        close(gamma_p(1.0, 5.991_464_547_107_98 / 2.0), 0.95, 1e-6);
    }

    #[test]
    fn beta_inc_known_values() {
        // I_x(1, 1) = x.
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = x^2 (3 - 2x).
        for x in [0.2, 0.5, 0.8] {
            close(beta_inc(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        close(beta_inc(3.0, 5.0, 0.4), 1.0 - beta_inc(5.0, 3.0, 0.6), 1e-12);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-9);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-9);
        close(erf(2.0), 0.995_322_265_018_953, 1e-9);
    }

    #[test]
    fn monotonicity_of_gamma_p_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = gamma_p(3.0, x);
            assert!(p >= prev);
            prev = p;
        }
        assert!(prev > 0.999);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
