//! Probability distributions built on the special functions: CDFs and
//! survival functions of the normal, Student-t, χ² and F distributions.
//! These supply the p-values used by the OLS significance filter
//! (paper §4.2: keep factors with p < 0.05) and the Farrar–Glauber χ² test.

use crate::special::{beta_inc, erf, gamma_p, gamma_q};

/// Standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// χ² survival function: P(X > x) for `df` degrees of freedom.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf needs df > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// χ² CDF: P(X ≤ x).
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_cdf needs df > 0");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(df / 2.0, x / 2.0)
}

/// Two-sided Student-t p-value: P(|T| > |t|) for `df` degrees of freedom.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t test needs df > 0");
    let t2 = t * t;
    // P(|T| > t) = I_{df/(df + t²)}(df/2, 1/2).
    beta_inc(df / 2.0, 0.5, df / (df + t2))
}

/// Student-t CDF.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    let p_two = t_sf_two_sided(t, df);
    if t >= 0.0 {
        1.0 - p_two / 2.0
    } else {
        p_two / 2.0
    }
}

/// F-distribution survival function: P(F > f) with (d1, d2) dof.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_sf needs positive dof");
    if f <= 0.0 {
        return 1.0;
    }
    beta_inc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f))
}

/// Invert a monotone-increasing CDF by bisection over `[lo, hi]`.
fn invert_cdf(cdf: impl Fn(f64) -> f64, p: f64, mut lo: f64, mut hi: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal quantile Φ⁻¹(p), `p` in (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    invert_cdf(normal_cdf, p, -10.0, 10.0)
}

/// Student-t quantile for `df` degrees of freedom, `p` in (0, 1).
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    assert!(df > 0.0, "t quantile needs df > 0");
    // The t distribution has heavier tails than the normal; widen the
    // bracket until it contains the answer.
    let mut bound = 50.0;
    while t_cdf(bound, df) < p || t_cdf(-bound, df) > p {
        bound *= 4.0;
        if bound > 1e12 {
            break;
        }
    }
    invert_cdf(|x| t_cdf(x, df), p, -bound, bound)
}

/// χ² quantile for `df` degrees of freedom, `p` in (0, 1).
pub fn chi2_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    assert!(df > 0.0, "chi2 quantile needs df > 0");
    let mut hi = df * 4.0 + 40.0;
    while chi2_cdf(hi, df) < p {
        hi *= 2.0;
    }
    invert_cdf(|x| chi2_cdf(x, df), p, 0.0, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn normal_cdf_known_points() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.975, 1e-4);
        close(normal_cdf(-1.96), 0.025, 1e-4);
        close(normal_cdf(3.0), 0.99865, 1e-4);
    }

    #[test]
    fn chi2_critical_values() {
        // Standard table: χ²₀.₀₅ critical values.
        close(chi2_sf(3.841, 1.0), 0.05, 1e-3);
        close(chi2_sf(5.991, 2.0), 0.05, 1e-3);
        close(chi2_sf(11.070, 5.0), 0.05, 1e-3);
        close(chi2_sf(18.307, 10.0), 0.05, 1e-3);
    }

    #[test]
    fn chi2_cdf_sf_complement() {
        for df in [1.0, 3.0, 7.0] {
            for x in [0.5, 2.0, 10.0] {
                close(chi2_cdf(x, df) + chi2_sf(x, df), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn t_critical_values() {
        // Two-sided 5 % critical values from standard tables.
        close(t_sf_two_sided(12.706, 1.0), 0.05, 1e-4);
        close(t_sf_two_sided(2.228, 10.0), 0.05, 1e-3);
        close(t_sf_two_sided(1.96, 1e6), 0.05, 1e-3); // → normal
    }

    #[test]
    fn t_cdf_is_symmetric() {
        for df in [2.0, 5.0, 30.0] {
            for t in [0.3, 1.0, 2.5] {
                close(t_cdf(t, df) + t_cdf(-t, df), 1.0, 1e-12);
            }
        }
        close(t_cdf(0.0, 5.0), 0.5, 1e-12);
    }

    #[test]
    fn f_critical_values() {
        // F₀.₀₅(5, 10) ≈ 3.326.
        close(f_sf(3.326, 5.0, 10.0), 0.05, 1e-3);
        // F₀.₀₅(1, 1) ≈ 161.4.
        close(f_sf(161.45, 1.0, 1.0), 0.05, 1e-3);
    }

    #[test]
    fn quantiles_invert_the_cdfs() {
        // Normal: Φ⁻¹(0.975) = 1.959964…
        close(normal_quantile(0.975), 1.959_964, 1e-5);
        close(normal_quantile(0.5), 0.0, 1e-9);
        // t with 10 dof: two-sided 5 % critical value 2.228.
        close(t_quantile(0.975, 10.0), 2.228, 1e-3);
        // χ² with 2 dof: 95th percentile 5.991.
        close(chi2_quantile(0.95, 2.0), 5.991, 1e-3);
        // Round-trips.
        for p in [0.01, 0.25, 0.7, 0.99] {
            close(normal_cdf(normal_quantile(p)), p, 1e-9);
            close(t_cdf(t_quantile(p, 7.0), 7.0), p, 1e-9);
            close(chi2_cdf(chi2_quantile(p, 5.0), 5.0), p, 1e-9);
        }
    }

    #[test]
    fn t_quantile_approaches_normal_at_high_dof() {
        close(t_quantile(0.975, 1e7), normal_quantile(0.975), 1e-3);
    }

    #[test]
    fn survival_functions_are_monotone_decreasing() {
        let mut prev = 1.0;
        for i in 0..60 {
            let x = i as f64 * 0.5;
            let s = chi2_sf(x, 4.0);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }
}
