//! The Farrar–Glauber test for multicollinearity, plus the stepwise
//! factor-removal procedure Vapro applies before OLS (paper §4.2): when
//! explanatory factors are linearly related (e.g. a user-space page fault
//! is also a context switch), OLS coefficients become unstable, so Vapro
//! removes multicollinear factors one by one until the test passes, later
//! recovering the removed factors' coefficients through their correlation
//! with the retained ones.

use crate::describe::pearson;
use crate::dist::chi2_sf;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Result of one Farrar–Glauber chi-square test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FarrarGlauber {
    /// The χ² statistic: −(n − 1 − (2k + 5)/6) · ln det R.
    pub chi2: f64,
    /// Degrees of freedom k(k − 1)/2.
    pub df: f64,
    /// p-value of the test; a *small* p-value means multicollinearity is
    /// present.
    pub p_value: f64,
    /// Determinant of the correlation matrix (1 = orthogonal, 0 = singular).
    pub det_r: f64,
}

impl FarrarGlauber {
    /// Run the test on the columns of `x` (each of length n). Returns
    /// `None` when there are fewer than 2 usable columns or fewer than
    /// 3 observations.
    pub fn test(x: &[Vec<f64>]) -> Option<FarrarGlauber> {
        let k = x.len();
        if k < 2 {
            return None;
        }
        let n = x[0].len();
        if n < 3 {
            return None;
        }
        let r = correlation_matrix(x);
        let det_r = r.determinant().clamp(0.0, 1.0);
        let kf = k as f64;
        let nf = n as f64;
        let scale = nf - 1.0 - (2.0 * kf + 5.0) / 6.0;
        let chi2 = if det_r <= f64::MIN_POSITIVE {
            f64::INFINITY
        } else {
            -scale * det_r.ln()
        };
        let df = kf * (kf - 1.0) / 2.0;
        let p_value = if chi2.is_infinite() { 0.0 } else { chi2_sf(chi2, df) };
        Some(FarrarGlauber { chi2, df, p_value, det_r })
    }

    /// Whether multicollinearity is detected at significance `alpha`.
    pub fn multicollinear(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson correlation matrix of the columns of `x`.
pub fn correlation_matrix(x: &[Vec<f64>]) -> Matrix {
    let k = x.len();
    let mut r = Matrix::identity(k);
    for i in 0..k {
        for j in (i + 1)..k {
            let c = pearson(&x[i], &x[j]);
            r[(i, j)] = c;
            r[(j, i)] = c;
        }
    }
    r
}

/// Variance inflation factors: VIF_j = 1 / (1 − R²_j) where R²_j is from
/// regressing column j on the others; computed via the inverse correlation
/// matrix diagonal. `None` when the correlation matrix is singular.
pub fn vif(x: &[Vec<f64>]) -> Option<Vec<f64>> {
    let r = correlation_matrix(x);
    let inv = r.inverse()?;
    Some((0..x.len()).map(|j| inv[(j, j)].max(1.0)).collect())
}

/// Outcome of the stepwise multicollinearity-removal procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FgOutcome {
    /// Indices (into the original column list) kept for OLS.
    pub kept: Vec<usize>,
    /// Indices removed, in removal order, each with the index of the kept
    /// column it was most correlated with and that correlation — used to
    /// back-fill coefficients for removed factors.
    pub removed: Vec<RemovedFactor>,
}

/// A factor removed due to multicollinearity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemovedFactor {
    /// Original column index of the removed factor.
    pub index: usize,
    /// Kept column it is most correlated with.
    pub proxy: usize,
    /// Pearson correlation with the proxy (signed).
    pub correlation: f64,
}

/// VIF threshold below which a factor is not considered harmful even when
/// the global FG test rejects: the χ² statistic scales with n, so at large
/// sample sizes it flags even moderate correlations that OLS handles fine.
/// VIF > 5 is the standard econometric cut-off.
pub const VIF_REMOVAL_THRESHOLD: f64 = 5.0;

/// Remove columns one at a time — always the one with the highest VIF —
/// until the Farrar–Glauber test no longer rejects at `alpha` (or no
/// remaining factor exceeds [`VIF_REMOVAL_THRESHOLD`]), mirroring the
/// paper's "removes the multicorrelated factors one-by-one until
/// multicollinearity does not exist in OLS".
///
/// Constant (zero-variance) columns are removed first: they carry no
/// information for OLS and break the correlation matrix.
pub fn remove_multicollinear(x: &[Vec<f64>], alpha: f64) -> FgOutcome {
    let mut kept: Vec<usize> = Vec::with_capacity(x.len());
    let mut removed: Vec<RemovedFactor> = Vec::with_capacity(x.len());

    for (j, col) in x.iter().enumerate() {
        if crate::describe::variance(col) > 0.0 {
            kept.push(j);
        } else {
            removed.push(RemovedFactor { index: j, proxy: usize::MAX, correlation: 0.0 });
        }
    }

    loop {
        if kept.len() < 2 {
            break;
        }
        // vapro-lint: allow(R6, per-round column copies for the FG test; factor count is bounded by counters, not stream size)
        let cols: Vec<Vec<f64>> = kept.iter().map(|&j| x[j].clone()).collect();
        let fg = match FarrarGlauber::test(&cols) {
            Some(fg) => fg,
            None => break,
        };
        if !fg.multicollinear(alpha) {
            break;
        }
        // Remove the factor with the highest VIF; fall back to the highest
        // mean absolute correlation when the matrix is singular.
        let victim_pos = match vif(&cols) {
            Some(vifs) => {
                let mut best = 0;
                for (p, v) in vifs.iter().enumerate() {
                    if *v > vifs[best] {
                        best = p;
                    }
                }
                if vifs[best] < VIF_REMOVAL_THRESHOLD {
                    // FG rejected, but no factor is inflated enough to
                    // destabilise OLS — keep them all.
                    break;
                }
                best
            }
            None => {
                let r = correlation_matrix(&cols);
                let k = cols.len();
                let mut best = 0;
                let mut best_score = -1.0;
                for i in 0..k {
                    let score: f64 =
                        (0..k).filter(|&j| j != i).map(|j| r[(i, j)].abs()).sum();
                    if score > best_score {
                        best_score = score;
                        best = i;
                    }
                }
                best
            }
        };
        let victim = kept.remove(victim_pos);
        // Find the kept column it is most correlated with (its proxy).
        let mut proxy = kept[0];
        let mut best_c = 0.0f64;
        for &j in &kept {
            let c = pearson(&x[victim], &x[j]);
            if c.abs() >= best_c.abs() {
                best_c = c;
                proxy = j;
            }
        }
        removed.push(RemovedFactor { index: victim, proxy, correlation: best_c });
    }

    FgOutcome { kept, removed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthogonal_cols(n: usize) -> Vec<Vec<f64>> {
        // Two deterministic, weakly correlated pseudo-random columns.
        let a: Vec<f64> = (0..n).map(|i| ((i * 131) % 97) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 89) as f64).collect();
        vec![a, b]
    }

    #[test]
    fn orthogonal_columns_pass() {
        let x = orthogonal_cols(80);
        let fg = FarrarGlauber::test(&x).unwrap();
        assert!(!fg.multicollinear(0.05), "p = {}", fg.p_value);
        assert!(fg.det_r > 0.9);
    }

    #[test]
    fn duplicated_column_fails_hard() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b = a.clone();
        let fg = FarrarGlauber::test(&[a, b]).unwrap();
        assert!(fg.multicollinear(0.05));
        assert!(fg.det_r < 1e-9);
    }

    #[test]
    fn near_collinear_columns_fail() {
        let a: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().enumerate().map(|(i, v)| 2.0 * v + ((i % 3) as f64) * 0.01).collect();
        let fg = FarrarGlauber::test(&[a, b]).unwrap();
        assert!(fg.multicollinear(0.05));
    }

    #[test]
    fn vif_detects_the_redundant_column() {
        let a: Vec<f64> = (0..60).map(|i| ((i * 131) % 97) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| ((i * 37 + 11) % 89) as f64).collect();
        // c ≈ a + b: heavily collinear with both.
        let c: Vec<f64> =
            (0..60).map(|i| a[i] + b[i] + ((i % 5) as f64) * 0.01).collect();
        let vifs = vif(&[a, b, c]).unwrap();
        assert!(vifs[2] > 10.0, "vif = {vifs:?}");
    }

    #[test]
    fn removal_terminates_and_keeps_informative_columns() {
        let a: Vec<f64> = (0..60).map(|i| ((i * 131) % 97) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| ((i * 37 + 11) % 89) as f64).collect();
        let c: Vec<f64> = a.iter().map(|v| v * 3.0).collect(); // pure alias of a
        let out = remove_multicollinear(&[a, b, c], 0.05);
        assert_eq!(out.kept.len() + out.removed.len(), 3);
        assert!(out.kept.contains(&1), "b should survive: {out:?}");
        // The alias pair (a, c) loses exactly one member.
        let lost_alias =
            out.removed.iter().filter(|r| r.index == 0 || r.index == 2).count();
        assert_eq!(lost_alias, 1);
        let r = &out.removed[0];
        assert!(r.correlation.abs() > 0.99);
    }

    #[test]
    fn constant_columns_are_dropped_first() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let konst = vec![5.0; 30];
        let out = remove_multicollinear(&[konst, a], 0.05);
        assert_eq!(out.kept, vec![1]);
        assert_eq!(out.removed.len(), 1);
        assert_eq!(out.removed[0].index, 0);
    }

    #[test]
    fn single_column_needs_no_test() {
        let out = remove_multicollinear(&[(0..10).map(|i| i as f64).collect()], 0.05);
        assert_eq!(out.kept, vec![0]);
        assert!(FarrarGlauber::test(&[vec![1.0, 2.0]]).is_none());
    }
}
