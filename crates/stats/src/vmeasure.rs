//! Clustering quality: homogeneity, completeness and V-Measure
//! (Rosenberg & Hirschberg 2007), the external evaluation the paper uses
//! in Table 2 to verify the fixed-workload identification algorithm
//! against ground-truth execution paths.
//!
//! * **Homogeneity** (H): each cluster contains only members of a single
//!   class — violated when fragments with *different* workloads are merged
//!   (the PageRank 0.74 case in the paper).
//! * **Completeness** (C): all members of a class land in the same cluster
//!   — violated when one workload is split across clusters.
//! * **V-Measure**: harmonic mean of the two.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three scores in [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VMeasure {
    /// Homogeneity score.
    pub homogeneity: f64,
    /// Completeness score.
    pub completeness: f64,
    /// Harmonic mean of homogeneity and completeness.
    pub v_measure: f64,
}

/// Compute V-Measure from parallel slices of ground-truth class labels and
/// predicted cluster labels. Panics if lengths differ; returns perfect
/// scores for an empty input (nothing to get wrong).
pub fn v_measure(classes: &[usize], clusters: &[usize]) -> VMeasure {
    assert_eq!(classes.len(), clusters.len(), "label length mismatch");
    let n = classes.len();
    if n == 0 {
        return VMeasure { homogeneity: 1.0, completeness: 1.0, v_measure: 1.0 };
    }

    // Contingency table and marginals.
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut class_count: HashMap<usize, f64> = HashMap::new();
    let mut cluster_count: HashMap<usize, f64> = HashMap::new();
    for i in 0..n {
        *joint.entry((classes[i], clusters[i])).or_insert(0.0) += 1.0;
        *class_count.entry(classes[i]).or_insert(0.0) += 1.0;
        *cluster_count.entry(clusters[i]).or_insert(0.0) += 1.0;
    }
    let nf = n as f64;

    // Entropies (natural log; units cancel in the ratios).
    let h_class = entropy(class_count.values(), nf);
    let h_cluster = entropy(cluster_count.values(), nf);

    // Conditional entropies from the contingency table.
    let mut h_class_given_cluster = 0.0;
    let mut h_cluster_given_class = 0.0;
    for (&(cls, clu), &cnt) in &joint {
        let p = cnt / nf;
        h_class_given_cluster -= p * (cnt / cluster_count[&clu]).ln();
        h_cluster_given_class -= p * (cnt / class_count[&cls]).ln();
    }

    let homogeneity = if h_class <= 0.0 { 1.0 } else { 1.0 - h_class_given_cluster / h_class };
    let completeness =
        if h_cluster <= 0.0 { 1.0 } else { 1.0 - h_cluster_given_class / h_cluster };
    let v = if homogeneity + completeness <= 0.0 {
        0.0
    } else {
        2.0 * homogeneity * completeness / (homogeneity + completeness)
    };
    VMeasure {
        homogeneity: homogeneity.clamp(0.0, 1.0),
        completeness: completeness.clamp(0.0, 1.0),
        v_measure: v.clamp(0.0, 1.0),
    }
}

fn entropy<'a>(counts: impl Iterator<Item = &'a f64>, n: f64) -> f64 {
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / n;
            h -= p * p.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let classes = [0, 0, 1, 1, 2, 2];
        let clusters = [5, 5, 9, 9, 7, 7]; // same partition, different names
        let v = v_measure(&classes, &clusters);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!((v.v_measure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merging_two_classes_hurts_homogeneity_only() {
        // Two distinct classes put into one cluster: complete but not
        // homogeneous — exactly the paper's PageRank situation.
        let classes = [0, 0, 1, 1];
        let clusters = [0, 0, 0, 0];
        let v = v_measure(&classes, &clusters);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!(v.homogeneity < 0.5);
        assert!(v.v_measure < 1.0);
    }

    #[test]
    fn splitting_one_class_hurts_completeness_only() {
        let classes = [0, 0, 0, 0];
        let clusters = [0, 0, 1, 1];
        let v = v_measure(&classes, &clusters);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!(v.completeness < 0.5);
    }

    #[test]
    fn v_is_harmonic_mean() {
        let classes = [0, 0, 1, 1, 2, 2];
        let clusters = [0, 0, 0, 1, 1, 1];
        let v = v_measure(&classes, &clusters);
        let expect = 2.0 * v.homogeneity * v.completeness / (v.homogeneity + v.completeness);
        assert!((v.v_measure - expect).abs() < 1e-12);
        assert!(v.homogeneity > 0.0 && v.homogeneity < 1.0);
    }

    #[test]
    fn single_class_single_cluster_is_perfect() {
        let v = v_measure(&[3, 3, 3], &[1, 1, 1]);
        assert_eq!(v.v_measure, 1.0);
    }

    #[test]
    fn empty_input_is_perfect_by_convention() {
        let v = v_measure(&[], &[]);
        assert_eq!(v.v_measure, 1.0);
    }

    #[test]
    fn scores_are_label_permutation_invariant() {
        let classes = [0, 1, 1, 2, 2, 2];
        let a = v_measure(&classes, &[0, 1, 1, 2, 2, 0]);
        let b = v_measure(&classes, &[7, 3, 3, 9, 9, 7]); // renamed clusters
        assert!((a.v_measure - b.v_measure).abs() < 1e-12);
        assert!((a.homogeneity - b.homogeneity).abs() < 1e-12);
    }
}
