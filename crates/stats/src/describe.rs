//! Descriptive statistics: mean, variance, percentiles, CDF sampling,
//! min-max normalisation, Pearson correlation. These back the detection
//! layer's normalised-performance computation and the evaluation harness's
//! standard-deviation reporting (e.g. paper Fig. 16's CDF and the
//! "σ reduced by 73.5 %" results).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator); 0 for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile, `p` in [0, 100]. Panics on empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Sample the empirical CDF at `n` evenly spaced percentiles; returns
/// `(percentile, value)` pairs — the series plotted in paper Fig. 16.
pub fn cdf_points(xs: &[f64], n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2, "need at least two CDF points");
    (0..n)
        .map(|i| {
            let p = 100.0 * i as f64 / (n - 1) as f64;
            (p, percentile(xs, p))
        })
        .collect()
}

/// Min-max normalise into [0, 1] in place. A constant vector maps to all
/// zeros (the paper normalises each diagnosis factor to [0, 1] before OLS).
pub fn min_max_normalize(xs: &mut [f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    if span <= 0.0 {
        xs.iter_mut().for_each(|x| *x = 0.0);
    } else {
        xs.iter_mut().for_each(|x| *x = (*x - lo) / span);
    }
    (lo, hi)
}

/// Pearson correlation coefficient of two equally long slices.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// One-line summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample; `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        Some(Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            median: percentile(xs, 50.0),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Coefficient of variation σ/μ (0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(percentile(&a, 50.0), percentile(&b, 50.0));
    }

    #[test]
    fn cdf_points_are_monotone() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let pts = cdf_points(&xs, 11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn min_max_normalize_range_and_constant_case() {
        let mut xs = [10.0, 20.0, 15.0];
        min_max_normalize(&mut xs);
        assert_eq!(xs, [0.0, 1.0, 0.5]);
        let mut c = [7.0, 7.0];
        min_max_normalize(&mut c);
        assert_eq!(c, [0.0, 0.0]);
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let x = [1.0, 2.0, 3.0];
        let y = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn summary_matches_components() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.cv() > 1.0);
        assert!(Summary::of(&[]).is_none());
    }
}
