//! Small dense row-major matrices with the operations OLS needs:
//! multiplication, transpose, Gauss–Jordan inverse with partial pivoting,
//! determinant, and linear solve. Dimensions in this crate are tiny (the
//! number of diagnosis factors, ≤ ~15), so cache blocking is unnecessary;
//! clarity and numerical robustness win.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice; panics if the length mismatches.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        // vapro-lint: allow(R6, Matrix owns its storage; one O(n*k) buffer per OLS fit, k bounded by counters)
        Matrix { rows, cols, data: data.to_vec() }
    }

    /// Build a column vector.
    pub fn column(data: &[f64]) -> Self {
        Matrix::from_rows(data.len(), 1, data)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · rhs`; panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Inverse via Gauss–Jordan with partial pivoting. Returns `None` when
    /// the matrix is singular (pivot below `1e-12` of the row scale).
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        // vapro-lint: allow(R6, Gauss-Jordan scratch copy; O(k^2) per fit with k bounded by counters)
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivot: largest |entry| in this column at/below the diagonal.
            let mut pivot_row = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                if a[(r, col)].abs() > best {
                    best = a[(r, col)].abs();
                    pivot_row = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot_row != col {
                a.swap_rows(col, pivot_row);
                inv.swap_rows(col, pivot_row);
            }
            let p = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= p;
                inv[(col, j)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(r, j)] -= f * a[(col, j)];
                    inv[(r, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }

    /// Determinant via LU decomposition with partial pivoting.
    pub fn determinant(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        // vapro-lint: allow(R6, LU scratch copy; O(k^2) per fit with k bounded by counters)
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut pivot_row = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                if a[(r, col)].abs() > best {
                    best = a[(r, col)].abs();
                    pivot_row = r;
                }
            }
            if best < 1e-300 {
                return 0.0;
            }
            if pivot_row != col {
                a.swap_rows(col, pivot_row);
                det = -det;
            }
            let p = a[(col, col)];
            det *= p;
            for r in (col + 1)..n {
                let f = a[(r, col)] / p;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
            }
        }
        det
    }

    /// Solve `self · x = b` for a single right-hand side; `None` if singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, b.len(), "solve dimension mismatch");
        let inv = self.inverse()?;
        let x = inv.matmul(&Matrix::column(b));
        Some((0..x.rows).map(|i| x[(i, 0)]).collect())
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Maximum absolute difference from another matrix (for tests).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        // vapro-lint: allow(R5, Index contract: bounds asserted in debug, callers iterate 0..rows/cols)
        debug_assert!(i < self.rows && j < self.cols);
        // vapro-lint: allow(R5, i * cols + j < rows * cols = data.len() under the asserted bounds)
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_identity_map() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let a = Matrix::from_rows(2, 2, &[4.0, 7.0, 2.0, 6.0]);
        let inv = a.inverse().unwrap();
        let expect = Matrix::from_rows(2, 2, &[0.6, -0.7, -0.2, 0.4]);
        assert!(inv.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(
            3,
            3,
            &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0],
        );
        let prod = a.inverse().unwrap().matmul(&a);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse_and_zero_det() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(a.inverse().is_none());
        assert_eq!(a.determinant(), 0.0);
    }

    #[test]
    fn determinant_of_known_matrices() {
        assert!((Matrix::identity(4).determinant() - 1.0).abs() < 1e-12);
        let a = Matrix::from_rows(2, 2, &[3.0, 8.0, 4.0, 6.0]);
        assert!((a.determinant() + 14.0).abs() < 1e-12);
        let b = Matrix::from_rows(3, 3, &[6.0, 1.0, 1.0, 4.0, -2.0, 5.0, 2.0, 8.0, 7.0]);
        assert!((b.determinant() + 306.0).abs() < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let inv = a.inverse().unwrap();
        assert!(inv.max_abs_diff(&a) < 1e-12); // permutation is its own inverse
        assert!((a.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_tridiagonal_system() {
        let a = Matrix::from_rows(
            3,
            3,
            &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0],
        );
        let x = a.solve(&[1.0, 0.0, 1.0]).unwrap();
        // Exact solution: [1, 1, 1].
        for v in x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
