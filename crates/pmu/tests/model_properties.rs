//! Property tests of the CPU model: the physical sanity conditions every
//! workload/noise combination must satisfy, independent of the specific
//! constants in the configuration.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vapro_pmu::{
    CounterId, CpuConfig, CpuModel, JitterModel, Locality, NoiseEnv, TopDown, WorkloadSpec,
};

fn exact() -> CpuModel {
    CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wall time is monotone in every noise axis.
    #[test]
    fn noise_never_speeds_execution_up(
        ins in 1e4f64..1e7,
        mem_frac in 0.0f64..0.9,
        steal in 0.0f64..0.9,
        contention in 0.0f64..3.0,
        bw in 0.5f64..1.0,
    ) {
        let spec = WorkloadSpec {
            instructions: ins,
            mem_refs: ins * mem_frac,
            ..WorkloadSpec::default()
        };
        let m = exact();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let quiet = m.execute(&spec, &NoiseEnv::quiet(), &mut rng).wall_ns;
        for env in [
            NoiseEnv { cpu_steal: steal, ..NoiseEnv::default() },
            NoiseEnv { mem_contention: contention, ..NoiseEnv::default() },
            NoiseEnv { node_bw_factor: bw, ..NoiseEnv::default() },
        ] {
            let noisy = m.execute(&spec, &env, &mut rng).wall_ns;
            prop_assert!(noisy >= quiet - 1e-9, "env {env:?}: {noisy} < {quiet}");
        }
    }

    /// All counters are non-negative and TSC is the largest time-like
    /// quantity.
    #[test]
    fn counters_are_physical(
        ins in 1e4f64..1e7,
        mem_frac in 0.0f64..0.9,
        steal in 0.0f64..0.9,
        fresh_pages in 0u64..100,
    ) {
        let spec = WorkloadSpec {
            instructions: ins,
            mem_refs: ins * mem_frac,
            fresh_bytes: fresh_pages as f64 * 4096.0,
            ..WorkloadSpec::default()
        };
        let env = NoiseEnv { cpu_steal: steal, ..NoiseEnv::default() };
        let m = exact();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = m.execute(&spec, &env, &mut rng);
        for (id, v) in out.counters.entries() {
            prop_assert!(v >= 0.0, "{id} = {v}");
            prop_assert!(v.is_finite(), "{id} = {v}");
        }
        let tsc = out.counters.get_or_zero(CounterId::Tsc);
        let clk = out.counters.get_or_zero(CounterId::ClkUnhalted);
        prop_assert!(tsc >= clk - 1e-6, "TSC {tsc} < CLK {clk}");
        prop_assert_eq!(
            out.counters.get_or_zero(CounterId::PageFaultsSoft) as u64,
            fresh_pages
        );
    }

    /// Memory references partition exactly across the hierarchy levels.
    #[test]
    fn loads_and_stores_partition_mem_refs(
        refs in 1e3f64..1e6,
        l1 in 0.1f64..1.0,
        l2 in 0.0f64..0.5,
        l3 in 0.0f64..0.3,
        dram in 0.0f64..0.2,
        store_fraction in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec {
            instructions: refs * 4.0,
            mem_refs: refs,
            store_fraction,
            locality: Locality { l1, l2, l3, dram }.normalized(),
            ..WorkloadSpec::default()
        };
        let m = exact();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c = m.execute(&spec, &NoiseEnv::quiet(), &mut rng).counters;
        let loads = c.get_or_zero(CounterId::LoadsL1Hit)
            + c.get_or_zero(CounterId::LoadsL2Hit)
            + c.get_or_zero(CounterId::LoadsL3Hit)
            + c.get_or_zero(CounterId::LoadsDram);
        let stores = c.get_or_zero(CounterId::Stores);
        prop_assert!(
            (loads + stores - refs).abs() < refs * 1e-9,
            "loads {loads} + stores {stores} != refs {refs}"
        );
    }

    /// The top-down breakdown is invariant to CPU steal in its *running*
    /// components: steal only grows suspension, leaving the relative mix
    /// of retiring/frontend/bad-spec/backend intact.
    #[test]
    fn steal_only_rescales_running_components(
        ins in 1e5f64..1e7,
        steal in 0.05f64..0.9,
    ) {
        let spec = WorkloadSpec::mixed(ins);
        let m = exact();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let quiet =
            TopDown::from_delta(&m.execute(&spec, &NoiseEnv::quiet(), &mut rng).counters)
                .unwrap();
        let noisy = TopDown::from_delta(
            &m.execute(
                &spec,
                &NoiseEnv { cpu_steal: steal, ..NoiseEnv::default() },
                &mut rng,
            )
            .counters,
        )
        .unwrap();
        // Ratios among running components are preserved.
        let q_ratio = quiet.backend / quiet.retiring;
        let n_ratio = noisy.backend / noisy.retiring;
        prop_assert!((q_ratio - n_ratio).abs() < 1e-6);
        prop_assert!(noisy.suspension > quiet.suspension);
    }

    /// Jitter preserves counter means to within statistical tolerance.
    #[test]
    fn jitter_sigma_controls_spread(sigma in 0.001f64..0.05) {
        let m = CpuModel::with_jitter(CpuConfig::default(), JitterModel::with_sigma(sigma));
        let spec = WorkloadSpec::compute_bound(1e6);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let vals: Vec<f64> = (0..200)
            .map(|_| {
                m.execute(&spec, &NoiseEnv::quiet(), &mut rng)
                    .counters
                    .get_or_zero(CounterId::TotIns)
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        prop_assert!(((mean - 1e6) / 1e6).abs() < 4.0 * sigma / (200f64).sqrt() + 1e-4);
    }
}
