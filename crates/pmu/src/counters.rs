//! Counter identifiers, counter sets, snapshots and deltas.
//!
//! A [`CounterId`] names either a hardware PMU event or an OS software
//! counter. Real PMUs can only keep a handful of events active at a time;
//! Vapro's progressive diagnosis (paper §4.3) exploits this by widening the
//! active [`CounterSet`] stage by stage. We model the restriction
//! faithfully: a [`CounterSnapshot`] only contains the events that were in
//! the active set when it was taken.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware PMU event or OS software counter.
///
/// Hardware names follow Intel conventions (as used in the paper, e.g.
/// `CYCLE_ACTIVITY.STALLS_L2_MISS` for the HPL hardware-bug case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CounterId {
    /// Timestamp counter: wall-clock cycles, including suspension time.
    Tsc,
    /// Total retired instructions (`TOT_INS` / `INST_RETIRED.ANY`).
    TotIns,
    /// Unhalted core cycles (`CPU_CLK_UNHALTED.THREAD`): cycles while the
    /// process is actually running on the core.
    ClkUnhalted,
    /// Issue slots where the frontend delivered no uop
    /// (`IDQ_UOPS_NOT_DELIVERED.CORE`).
    IdqUopsNotDelivered,
    /// Retired uop slots (`UOPS_RETIRED.RETIRE_SLOTS`).
    UopsRetiredSlots,
    /// Issue slots wasted on mis-speculated uops and recovery
    /// (`UOPS_ISSUED.ANY - UOPS_RETIRED.RETIRE_SLOTS + recovery`).
    BadSpeculationSlots,
    /// Execution stall cycles with a demand load outstanding anywhere in the
    /// memory hierarchy (`CYCLE_ACTIVITY.STALLS_MEM_ANY`).
    StallsMemAny,
    /// Stall cycles while an L1D miss is outstanding
    /// (`CYCLE_ACTIVITY.STALLS_L1D_MISS`).
    StallsL1dMiss,
    /// Stall cycles while an L2 miss is outstanding
    /// (`CYCLE_ACTIVITY.STALLS_L2_MISS`) — the event correlated with the
    /// Intel L2-eviction bug in paper §6.5.1.
    StallsL2Miss,
    /// Stall cycles while an L3 miss is outstanding (DRAM bound).
    StallsL3Miss,
    /// Core-bound (non-memory) execution stall cycles.
    StallsCore,
    /// Retired loads that hit L1 (`MEM_LOAD_RETIRED.L1_HIT`).
    LoadsL1Hit,
    /// Retired loads that hit L2.
    LoadsL2Hit,
    /// Retired loads that hit L3.
    LoadsL3Hit,
    /// Retired loads served from DRAM.
    LoadsDram,
    /// Retired store instructions.
    Stores,
    /// Retired branch instructions.
    Branches,
    /// Mispredicted branches.
    BranchMisses,
    /// Minor (soft) page faults — resolved without IO.
    PageFaultsSoft,
    /// Major (hard) page faults — required IO.
    PageFaultsHard,
    /// Voluntary context switches (blocking waits).
    CtxSwitchVoluntary,
    /// Involuntary context switches (preemption — the signature of CPU
    /// contention noise in paper §6.4, significant at p < 0.001).
    CtxSwitchInvoluntary,
    /// Signals delivered to the process.
    Signals,
    /// Nanoseconds the process spent suspended (not running on a core).
    /// Derived from the OS scheduler; quantified directly in time.
    SuspensionNs,
}

impl CounterId {
    /// All counters the simulated PMU can produce.
    pub const ALL: [CounterId; 24] = [
        CounterId::Tsc,
        CounterId::TotIns,
        CounterId::ClkUnhalted,
        CounterId::IdqUopsNotDelivered,
        CounterId::UopsRetiredSlots,
        CounterId::BadSpeculationSlots,
        CounterId::StallsMemAny,
        CounterId::StallsL1dMiss,
        CounterId::StallsL2Miss,
        CounterId::StallsL3Miss,
        CounterId::StallsCore,
        CounterId::LoadsL1Hit,
        CounterId::LoadsL2Hit,
        CounterId::LoadsL3Hit,
        CounterId::LoadsDram,
        CounterId::Stores,
        CounterId::Branches,
        CounterId::BranchMisses,
        CounterId::PageFaultsSoft,
        CounterId::PageFaultsHard,
        CounterId::CtxSwitchVoluntary,
        CounterId::CtxSwitchInvoluntary,
        CounterId::Signals,
        CounterId::SuspensionNs,
    ];

    /// Index of this counter inside dense per-counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for OS software counters (always readable, no PMU slot needed).
    pub fn is_software(self) -> bool {
        matches!(
            self,
            CounterId::PageFaultsSoft
                | CounterId::PageFaultsHard
                | CounterId::CtxSwitchVoluntary
                | CounterId::CtxSwitchInvoluntary
                | CounterId::Signals
                | CounterId::SuspensionNs
        )
    }

    /// True for counters subject to hardware PMU measurement jitter.
    /// Software counters and the TSC are exact.
    pub fn is_jittered(self) -> bool {
        !self.is_software() && self != CounterId::Tsc
    }

    /// The Intel-style event name, as it would appear in `perf list`.
    pub fn event_name(self) -> &'static str {
        match self {
            CounterId::Tsc => "TSC",
            CounterId::TotIns => "INST_RETIRED.ANY",
            CounterId::ClkUnhalted => "CPU_CLK_UNHALTED.THREAD",
            CounterId::IdqUopsNotDelivered => "IDQ_UOPS_NOT_DELIVERED.CORE",
            CounterId::UopsRetiredSlots => "UOPS_RETIRED.RETIRE_SLOTS",
            CounterId::BadSpeculationSlots => "BAD_SPECULATION.SLOTS",
            CounterId::StallsMemAny => "CYCLE_ACTIVITY.STALLS_MEM_ANY",
            CounterId::StallsL1dMiss => "CYCLE_ACTIVITY.STALLS_L1D_MISS",
            CounterId::StallsL2Miss => "CYCLE_ACTIVITY.STALLS_L2_MISS",
            CounterId::StallsL3Miss => "CYCLE_ACTIVITY.STALLS_L3_MISS",
            CounterId::StallsCore => "CYCLE_ACTIVITY.STALLS_CORE",
            CounterId::LoadsL1Hit => "MEM_LOAD_RETIRED.L1_HIT",
            CounterId::LoadsL2Hit => "MEM_LOAD_RETIRED.L2_HIT",
            CounterId::LoadsL3Hit => "MEM_LOAD_RETIRED.L3_HIT",
            CounterId::LoadsDram => "MEM_LOAD_RETIRED.DRAM",
            CounterId::Stores => "MEM_INST_RETIRED.ALL_STORES",
            CounterId::Branches => "BR_INST_RETIRED.ALL_BRANCHES",
            CounterId::BranchMisses => "BR_MISP_RETIRED.ALL_BRANCHES",
            CounterId::PageFaultsSoft => "minor-faults",
            CounterId::PageFaultsHard => "major-faults",
            CounterId::CtxSwitchVoluntary => "context-switches:voluntary",
            CounterId::CtxSwitchInvoluntary => "context-switches:involuntary",
            CounterId::Signals => "signals",
            CounterId::SuspensionNs => "suspension-ns",
        }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.event_name())
    }
}

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = CounterId::ALL.len();

/// A set of active counters, stored as a bitmask.
///
/// Real PMUs multiplex a limited number of programmable hardware counters;
/// [`CounterSet::hardware_slots`] reports how many hardware events a set
/// needs so callers can enforce the limit the paper's progressive diagnosis
/// works around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CounterSet(u32);

impl CounterSet {
    /// The empty set.
    pub const fn empty() -> Self {
        CounterSet(0)
    }

    /// Every counter the model can produce.
    pub fn all() -> Self {
        let mut s = CounterSet::empty();
        for id in CounterId::ALL {
            s.insert(id);
        }
        s
    }

    /// Build a set from a slice of counter ids.
    pub fn from_ids(ids: &[CounterId]) -> Self {
        let mut s = CounterSet::empty();
        for &id in ids {
            s.insert(id);
        }
        s
    }

    /// Add a counter to the set.
    pub fn insert(&mut self, id: CounterId) {
        self.0 |= 1 << id.index();
    }

    /// Remove a counter from the set.
    pub fn remove(&mut self, id: CounterId) {
        self.0 &= !(1 << id.index());
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, id: CounterId) -> bool {
        self.0 & (1 << id.index()) != 0
    }

    /// Union of two sets.
    pub fn union(self, other: CounterSet) -> CounterSet {
        CounterSet(self.0 | other.0)
    }

    /// Number of counters in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no counter is active.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of hardware PMU slots this set occupies (software counters
    /// and the fixed-function TSC are free).
    pub fn hardware_slots(self) -> usize {
        self.iter()
            .filter(|id| !id.is_software() && *id != CounterId::Tsc)
            .count()
    }

    /// Iterate over the members in `CounterId::ALL` order.
    pub fn iter(self) -> impl Iterator<Item = CounterId> {
        CounterId::ALL.into_iter().filter(move |id| self.contains(*id))
    }

    /// The raw membership bitmask (bit `id.index()` set per member).
    /// Columnar fragment storage packs each fragment's active counter
    /// values contiguously in `CounterId::ALL` order; the popcount of
    /// the bits below an id recovers that value's position in O(1).
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild a set from a raw bitmask previously taken with
    /// [`CounterSet::bits`]. Bits beyond `NUM_COUNTERS` are dropped.
    #[inline]
    pub fn from_bits(bits: u32) -> CounterSet {
        CounterSet(bits & ((1u32 << NUM_COUNTERS) - 1))
    }
}

/// A dense vector of counter values; unset entries are zero.
///
/// Used both as an absolute snapshot ([`CounterSnapshot`]) and as a
/// difference between two snapshots ([`CounterDelta`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterVector {
    values: [f64; NUM_COUNTERS],
    set: CounterSet,
}

impl Default for CounterVector {
    fn default() -> Self {
        CounterVector { values: [0.0; NUM_COUNTERS], set: CounterSet::empty() }
    }
}

impl CounterVector {
    /// An all-zero vector with the given active set.
    pub fn zeroed(set: CounterSet) -> Self {
        CounterVector { values: [0.0; NUM_COUNTERS], set }
    }

    /// The active counter set.
    pub fn set(&self) -> CounterSet {
        self.set
    }

    /// Read a counter; returns `None` if it was not in the active set.
    #[inline]
    pub fn get(&self, id: CounterId) -> Option<f64> {
        if self.set.contains(id) {
            Some(self.values[id.index()])
        } else {
            None
        }
    }

    /// Read a counter, defaulting to zero when inactive.
    #[inline]
    pub fn get_or_zero(&self, id: CounterId) -> f64 {
        if self.set.contains(id) {
            self.values[id.index()]
        } else {
            0.0
        }
    }

    /// Write a counter value, activating it in the set.
    pub fn put(&mut self, id: CounterId, value: f64) {
        self.set.insert(id);
        // vapro-lint: allow(R5, CounterId::index() < NUM_COUNTERS by the enum definition)
        self.values[id.index()] = value;
    }

    /// Add to a counter value, activating it in the set.
    pub fn add(&mut self, id: CounterId, value: f64) {
        self.set.insert(id);
        self.values[id.index()] += value;
    }

    /// Accumulate another vector into this one (union of sets).
    pub fn accumulate(&mut self, other: &CounterVector) {
        for id in other.set.iter() {
            self.add(id, other.values[id.index()]);
        }
    }

    /// Element-wise difference `self - earlier`, restricted to counters
    /// active in *both* vectors (a counter must have been enabled for the
    /// whole interval to yield a meaningful delta).
    pub fn delta_since(&self, earlier: &CounterVector) -> CounterVector {
        let mut out = CounterVector::default();
        for id in CounterId::ALL {
            if self.set.contains(id) && earlier.set.contains(id) {
                out.put(id, self.values[id.index()] - earlier.values[id.index()]);
            }
        }
        out
    }

    /// Restrict to the intersection with `keep`, dropping other entries.
    pub fn project(&self, keep: CounterSet) -> CounterVector {
        let mut out = CounterVector::default();
        for id in self.set.iter() {
            if keep.contains(id) {
                out.put(id, self.values[id.index()]);
            }
        }
        out
    }

    /// Iterate over `(id, value)` pairs of active counters.
    pub fn entries(&self) -> impl Iterator<Item = (CounterId, f64)> + '_ {
        // vapro-lint: allow(R5, CounterId::index() < NUM_COUNTERS by the enum definition)
        self.set.iter().map(move |id| (id, self.values[id.index()]))
    }
}

/// An absolute reading of the active counters at a point in virtual time.
pub type CounterSnapshot = CounterVector;

/// The change in counter values across a fragment.
pub type CounterDelta = CounterVector;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_remove_contains() {
        let mut s = CounterSet::empty();
        assert!(s.is_empty());
        s.insert(CounterId::TotIns);
        s.insert(CounterId::Tsc);
        assert!(s.contains(CounterId::TotIns));
        assert!(s.contains(CounterId::Tsc));
        assert!(!s.contains(CounterId::StallsL2Miss));
        assert_eq!(s.len(), 2);
        s.remove(CounterId::Tsc);
        assert!(!s.contains(CounterId::Tsc));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_set_covers_every_counter() {
        let s = CounterSet::all();
        for id in CounterId::ALL {
            assert!(s.contains(id), "{id} missing from all()");
        }
        assert_eq!(s.len(), NUM_COUNTERS);
    }

    #[test]
    fn hardware_slots_excludes_software_and_tsc() {
        let s = CounterSet::from_ids(&[
            CounterId::Tsc,
            CounterId::TotIns,
            CounterId::PageFaultsSoft,
            CounterId::StallsL2Miss,
        ]);
        assert_eq!(s.hardware_slots(), 2);
    }

    #[test]
    fn vector_get_put_respects_set() {
        let mut v = CounterVector::default();
        assert_eq!(v.get(CounterId::TotIns), None);
        v.put(CounterId::TotIns, 1000.0);
        assert_eq!(v.get(CounterId::TotIns), Some(1000.0));
        assert_eq!(v.get_or_zero(CounterId::Tsc), 0.0);
    }

    #[test]
    fn delta_requires_both_active() {
        let mut a = CounterVector::default();
        a.put(CounterId::TotIns, 100.0);
        a.put(CounterId::Tsc, 50.0);
        let mut b = a.clone();
        b.put(CounterId::TotIns, 175.0);
        b.put(CounterId::StallsL2Miss, 9.0); // not in `a`
        let d = b.delta_since(&a);
        assert_eq!(d.get(CounterId::TotIns), Some(75.0));
        assert_eq!(d.get(CounterId::Tsc), Some(0.0));
        assert_eq!(d.get(CounterId::StallsL2Miss), None);
    }

    #[test]
    fn accumulate_unions_sets() {
        let mut a = CounterVector::default();
        a.put(CounterId::TotIns, 10.0);
        let mut b = CounterVector::default();
        b.put(CounterId::TotIns, 5.0);
        b.put(CounterId::Stores, 2.0);
        a.accumulate(&b);
        assert_eq!(a.get(CounterId::TotIns), Some(15.0));
        assert_eq!(a.get(CounterId::Stores), Some(2.0));
    }

    #[test]
    fn project_drops_entries() {
        let mut a = CounterVector::default();
        a.put(CounterId::TotIns, 10.0);
        a.put(CounterId::Stores, 3.0);
        let p = a.project(CounterSet::from_ids(&[CounterId::TotIns]));
        assert_eq!(p.get(CounterId::TotIns), Some(10.0));
        assert_eq!(p.get(CounterId::Stores), None);
    }

    #[test]
    fn display_names_are_intel_style() {
        assert_eq!(CounterId::StallsL2Miss.to_string(), "CYCLE_ACTIVITY.STALLS_L2_MISS");
        assert_eq!(
            CounterId::IdqUopsNotDelivered.to_string(),
            "IDQ_UOPS_NOT_DELIVERED.CORE"
        );
    }
}
