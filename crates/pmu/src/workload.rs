//! Abstract workload descriptions for computation fragments.
//!
//! A [`WorkloadSpec`] is what a mini-app "executes" between two external
//! invocations: an instruction count, a memory-reference count with a cache
//! [`Locality`] mix, and a branch profile. The [`crate::CpuModel`] turns a
//! spec into cycles and counters. Two fragments with equal specs are
//! *fixed-workload* in the paper's sense: their TOT_INS (and other
//! workload-proxy counters) agree up to PMU jitter, while their elapsed time
//! may differ under noise.

use serde::{Deserialize, Serialize};

/// Fractions of memory references satisfied at each level of the hierarchy.
/// The four fields must sum to 1 (enforced by [`Locality::normalized`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Locality {
    /// Fraction of references that hit in L1D.
    pub l1: f64,
    /// Fraction that miss L1 but hit L2.
    pub l2: f64,
    /// Fraction that miss L2 but hit L3.
    pub l3: f64,
    /// Fraction served from DRAM.
    pub dram: f64,
}

impl Locality {
    /// Cache-resident working set: virtually everything hits L1/L2.
    pub const CACHE_HOT: Locality = Locality { l1: 0.96, l2: 0.03, l3: 0.008, dram: 0.002 };

    /// Typical mixed scientific kernel.
    pub const MIXED: Locality = Locality { l1: 0.85, l2: 0.08, l3: 0.045, dram: 0.025 };

    /// Streaming access with little reuse: many DRAM references.
    pub const STREAMING: Locality = Locality { l1: 0.70, l2: 0.10, l3: 0.08, dram: 0.12 };

    /// Pointer-chasing / irregular access (graph workloads).
    pub const IRREGULAR: Locality = Locality { l1: 0.60, l2: 0.12, l3: 0.13, dram: 0.15 };

    /// Rescale so the four fractions sum to exactly 1.
    pub fn normalized(self) -> Locality {
        let s = self.l1 + self.l2 + self.l3 + self.dram;
        if s <= 0.0 {
            return Locality::CACHE_HOT;
        }
        Locality { l1: self.l1 / s, l2: self.l2 / s, l3: self.l3 / s, dram: self.dram / s }
    }

    /// True when each fraction is finite, non-negative, and they sum to ~1.
    pub fn is_valid(self) -> bool {
        let parts = [self.l1, self.l2, self.l3, self.dram];
        parts.iter().all(|p| p.is_finite() && *p >= 0.0)
            && (parts.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// The abstract work of one computation fragment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Retired instructions.
    pub instructions: f64,
    /// Memory reference instructions (loads + stores) — a subset of
    /// `instructions`.
    pub mem_refs: f64,
    /// Fraction of `mem_refs` that are stores.
    pub store_fraction: f64,
    /// Where memory references are satisfied.
    pub locality: Locality,
    /// Branch instructions as a fraction of `instructions`.
    pub branch_fraction: f64,
    /// Branch misprediction rate.
    pub branch_miss_rate: f64,
    /// Extra frontend pressure in [0, 1): fraction of issue slots starved
    /// by instruction fetch/decode (large code footprints, virtual calls).
    pub frontend_pressure: f64,
    /// Bytes of fresh memory touched for the first time (drives soft page
    /// faults at 4 KiB granularity).
    pub fresh_bytes: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            instructions: 0.0,
            mem_refs: 0.0,
            store_fraction: 0.3,
            locality: Locality::MIXED,
            branch_fraction: 0.12,
            branch_miss_rate: 0.01,
            frontend_pressure: 0.02,
            fresh_bytes: 0.0,
        }
    }
}

impl WorkloadSpec {
    /// A compute-bound kernel: `ins` instructions, few memory references,
    /// cache-hot locality (DGEMM-like inner blocks, EP's random-number loop).
    pub fn compute_bound(ins: f64) -> Self {
        WorkloadSpec {
            instructions: ins,
            mem_refs: ins * 0.15,
            locality: Locality::CACHE_HOT,
            branch_fraction: 0.05,
            branch_miss_rate: 0.002,
            ..WorkloadSpec::default()
        }
    }

    /// A memory-bound streaming kernel over `bytes` of data (STREAM-like,
    /// sparse matrix-vector products, large vector updates).
    pub fn memory_bound(bytes: f64) -> Self {
        // ~1 memory reference per 8 bytes plus loop overhead.
        let refs = bytes / 8.0;
        WorkloadSpec {
            instructions: refs * 2.5,
            mem_refs: refs,
            locality: Locality::STREAMING,
            branch_fraction: 0.08,
            branch_miss_rate: 0.005,
            ..WorkloadSpec::default()
        }
    }

    /// An irregular, pointer-chasing kernel with `refs` references
    /// (graph traversal, hash probing).
    pub fn irregular(refs: f64) -> Self {
        WorkloadSpec {
            instructions: refs * 4.0,
            mem_refs: refs,
            locality: Locality::IRREGULAR,
            branch_fraction: 0.2,
            branch_miss_rate: 0.06,
            ..WorkloadSpec::default()
        }
    }

    /// A balanced kernel: `ins` instructions with a MIXED locality.
    pub fn mixed(ins: f64) -> Self {
        WorkloadSpec {
            instructions: ins,
            mem_refs: ins * 0.35,
            locality: Locality::MIXED,
            ..WorkloadSpec::default()
        }
    }

    /// Scale every extensive quantity (instructions, refs, fresh bytes)
    /// by `k`, keeping rates and fractions intact.
    pub fn scaled(mut self, k: f64) -> Self {
        self.instructions *= k;
        self.mem_refs *= k;
        self.fresh_bytes *= k;
        self
    }

    /// Set the locality mix (builder style).
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality.normalized();
        self
    }

    /// Set the number of fresh bytes (builder style).
    pub fn with_fresh_bytes(mut self, bytes: f64) -> Self {
        self.fresh_bytes = bytes;
        self
    }

    /// Basic sanity: non-negative, finite, refs ≤ instructions, valid
    /// locality and rates in range.
    pub fn is_valid(&self) -> bool {
        self.instructions.is_finite()
            && self.instructions >= 0.0
            && self.mem_refs.is_finite()
            && self.mem_refs >= 0.0
            && self.mem_refs <= self.instructions + 1e-9
            && (0.0..=1.0).contains(&self.store_fraction)
            && (0.0..=1.0).contains(&self.branch_fraction)
            && (0.0..=1.0).contains(&self.branch_miss_rate)
            && (0.0..1.0).contains(&self.frontend_pressure)
            && self.fresh_bytes >= 0.0
            && self.locality.normalized().is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_presets_are_normalized() {
        for loc in [
            Locality::CACHE_HOT,
            Locality::MIXED,
            Locality::STREAMING,
            Locality::IRREGULAR,
        ] {
            assert!(loc.is_valid(), "{loc:?} does not sum to 1");
        }
    }

    #[test]
    fn normalized_rescales() {
        let loc = Locality { l1: 2.0, l2: 1.0, l3: 1.0, dram: 0.0 }.normalized();
        assert!(loc.is_valid());
        assert!((loc.l1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_degenerate_input() {
        let loc = Locality { l1: 0.0, l2: 0.0, l3: 0.0, dram: 0.0 }.normalized();
        assert!(loc.is_valid());
    }

    #[test]
    fn builders_produce_valid_specs() {
        assert!(WorkloadSpec::compute_bound(1e6).is_valid());
        assert!(WorkloadSpec::memory_bound(1e7).is_valid());
        assert!(WorkloadSpec::irregular(1e5).is_valid());
        assert!(WorkloadSpec::mixed(1e6).is_valid());
    }

    #[test]
    fn scaled_scales_extensive_quantities_only() {
        let w = WorkloadSpec::mixed(1000.0).with_fresh_bytes(4096.0);
        let s = w.scaled(3.0);
        assert_eq!(s.instructions, 3000.0);
        assert_eq!(s.fresh_bytes, 3.0 * 4096.0);
        assert_eq!(s.branch_fraction, w.branch_fraction);
        assert!(s.is_valid());
    }

    #[test]
    fn memory_bound_is_dram_heavy_compared_to_compute_bound() {
        let m = WorkloadSpec::memory_bound(1e6);
        let c = WorkloadSpec::compute_bound(1e6);
        assert!(m.locality.dram > c.locality.dram * 10.0);
    }
}
