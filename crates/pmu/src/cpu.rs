//! The CPU model: turns a [`WorkloadSpec`] executed under a [`NoiseEnv`]
//! into elapsed time and a full [`CounterDelta`].
//!
//! The model is a slot-accounting machine in the style of Yasin's top-down
//! method (the method the paper's variance-breakdown model is built on):
//! unhalted cycles are decomposed into retiring, frontend-bound,
//! bad-speculation, and backend-bound contributions, backend splits into
//! core-bound and memory-bound, and memory-bound splits across L1/L2/L3/DRAM
//! stall cycles. The identities
//!
//! ```text
//! 4 · CPU_CLK_UNHALTED = retiring + frontend + bad-spec + backend   (slots)
//! STALLS_MEM_ANY ⊇ STALLS_L1D_MISS ⊇ STALLS_L2_MISS ⊇ STALLS_L3_MISS
//! TSC = CPU_CLK_UNHALTED + suspension cycles
//! ```
//!
//! hold exactly (before measurement jitter), so the formula-based breakdown
//! of paper §4.2 recovers the injected ground truth.

use crate::counters::{CounterDelta, CounterId};
use crate::jitter::JitterModel;
use crate::noise_env::NoiseEnv;
use crate::os::OsCosts;
use crate::workload::WorkloadSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static description of the simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Core frequency in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// L2 hit latency in cycles.
    pub lat_l2: f64,
    /// L3 hit latency in cycles.
    pub lat_l3: f64,
    /// DRAM access latency in cycles.
    pub lat_dram: f64,
    /// Fraction of an L2-hit latency that actually stalls the pipeline
    /// (the rest overlaps with other work).
    pub block_l2: f64,
    /// Blocking fraction for L3 hits.
    pub block_l3: f64,
    /// Blocking fraction for DRAM accesses.
    pub block_dram: f64,
    /// Core-bound stall cycles per instruction (dependency chains, divider).
    pub core_stall_per_ins: f64,
    /// Pipeline-flush penalty per mispredicted branch, in cycles.
    pub branch_miss_penalty: f64,
    /// OS event costs.
    pub os: OsCosts,
}

impl Default for CpuConfig {
    fn default() -> Self {
        // Loosely modelled on the Xeon E5-2692 v2 (Ivy Bridge) nodes of
        // Tianhe-2A used in the paper's evaluation.
        CpuConfig {
            freq_ghz: 2.2,
            lat_l2: 12.0,
            lat_l3: 40.0,
            lat_dram: 200.0,
            block_l2: 0.5,
            block_l3: 0.65,
            block_dram: 0.8,
            core_stall_per_ins: 0.05,
            branch_miss_penalty: 15.0,
            os: OsCosts::default(),
        }
    }
}

/// The result of executing one workload: times plus the raw counter delta.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock duration in nanoseconds (includes suspension).
    pub wall_ns: f64,
    /// Nanoseconds actually running on the core.
    pub run_ns: f64,
    /// Nanoseconds suspended (stolen CPU, fault service, signal delivery).
    pub suspension_ns: f64,
    /// Full counter delta for this execution (all counters populated;
    /// restriction to the active set happens at collection time).
    pub counters: CounterDelta,
}

/// The simulated CPU core a rank executes on.
///
/// Stateless apart from configuration and the jitter model; all randomness
/// flows through the caller-provided RNG so simulations are reproducible.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cfg: CpuConfig,
    jitter: JitterModel,
}

impl CpuModel {
    /// Build a model from a configuration, with the default PMU jitter.
    pub fn new(cfg: CpuConfig) -> Self {
        CpuModel { cfg, jitter: JitterModel::default() }
    }

    /// Build a model with an explicit jitter model (e.g. `JitterModel::exact()`
    /// for unit tests asserting identities).
    pub fn with_jitter(cfg: CpuConfig, jitter: JitterModel) -> Self {
        CpuModel { cfg, jitter }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Cycles per nanosecond.
    #[inline]
    pub fn cycles_per_ns(&self) -> f64 {
        self.cfg.freq_ghz
    }

    /// Execute `spec` under `env`, returning times and counters.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        spec: &WorkloadSpec,
        env: &NoiseEnv,
        rng: &mut R,
    ) -> ExecOutcome {
        debug_assert!(spec.is_valid(), "invalid workload spec: {spec:?}");
        debug_assert!(env.is_valid(), "invalid noise env: {env:?}");
        let cfg = &self.cfg;
        let loc = spec.locality.normalized();

        // --- memory hierarchy -------------------------------------------------
        let m = spec.mem_refs;
        let l1_hits = m * loc.l1;
        let mut l2_hits = m * loc.l2;
        let mut l3_hits = m * loc.l3;
        let mut dram_refs = m * loc.dram;

        // The L2-eviction hardware bug: with probability `l2_bug_prob`, a
        // fraction of lines that would hit L2 are found evicted. Evicted
        // lines mostly land in L3 (that is where an L2 eviction goes);
        // under pressure a share is pushed out to DRAM — so the bug shows
        // up as elevated L2-miss stalls split between the L3 and DRAM
        // levels, the signature of paper §6.5.1.
        let mut bug_fired = false;
        if env.l2_bug_prob > 0.0 && rng.gen::<f64>() < env.l2_bug_prob {
            bug_fired = true;
            let moved = l2_hits * env.l2_bug_severity;
            l2_hits -= moved;
            // Most evicted lines are still in L3; a minority is pushed all
            // the way out. Time-weighted (DRAM latency ≈ 6× L3), the two
            // destinations contribute comparably — the paper's roughly
            // even L2-level vs DRAM split (48.2 % / 38.0 %).
            l3_hits += moved * 0.85;
            dram_refs += moved * 0.15;
        }

        // Effective latencies under memory-bandwidth effects. Contention by
        // co-running STREAM mostly queues DRAM accesses. A degraded node
        // (low bandwidth) raises loaded latency *super-linearly*: a memory
        // controller near saturation queues requests, so a 15 % bandwidth
        // deficit costs noticeably more than 15 % in latency (the
        // queueing-theory effect behind the Nekbone case study).
        let bw_penalty = (1.0 / env.node_bw_factor).powf(1.5);
        let lat_dram = cfg.lat_dram * (1.0 + env.mem_contention) * bw_penalty;
        let lat_l3 = cfg.lat_l3 * (1.0 + 0.3 * env.mem_contention);

        // Stall-cycle hierarchy (outer events include inner ones, exactly as
        // the CYCLE_ACTIVITY.* events nest on real hardware).
        let stalls_l3_miss = dram_refs * lat_dram * cfg.block_dram;
        let stalls_l2_miss = stalls_l3_miss + l3_hits * lat_l3 * cfg.block_l3;
        let stalls_l1d_miss = stalls_l2_miss + l2_hits * cfg.lat_l2 * cfg.block_l2;
        let stalls_mem_any = stalls_l1d_miss; // L1 hit latency fully hidden.

        // --- pipeline slot accounting ----------------------------------------
        let retire_cycles = spec.instructions / crate::PIPELINE_WIDTH;
        let core_stalls = spec.instructions * cfg.core_stall_per_ins;
        let branches = spec.instructions * spec.branch_fraction;
        let branch_misses = branches * spec.branch_miss_rate;
        let badspec_cycles = branch_misses * cfg.branch_miss_penalty;
        let work_cycles = retire_cycles + core_stalls + stalls_mem_any + badspec_cycles;
        // Frontend pressure is defined as a fraction of total unhalted
        // cycles; solve fe = p * (work + fe).
        let fe_cycles = if spec.frontend_pressure > 0.0 {
            spec.frontend_pressure * work_cycles / (1.0 - spec.frontend_pressure)
        } else {
            0.0
        };
        let unhalted = work_cycles + fe_cycles;
        let run_ns = unhalted / cfg.freq_ghz;

        // --- OS events and suspension -----------------------------------------
        let soft_faults = (spec.fresh_bytes / 4096.0).floor();
        let run_s = run_ns * 1e-9;
        let hard_faults = poisson_like(env.hard_fault_rate * run_s, rng);
        let signals = poisson_like(env.signal_rate * run_s, rng);

        let fault_ns = soft_faults * cfg.os.soft_fault_ns + hard_faults * cfg.os.hard_fault_ns;
        let signal_ns = signals * cfg.os.signal_ns;

        // CPU steal: co-scheduled noise takes `cpu_steal` of wall time, so
        // stolen = run * steal / (1 - steal).
        let stolen_ns = if env.cpu_steal > 0.0 {
            run_ns * env.cpu_steal / (1.0 - env.cpu_steal)
        } else {
            0.0
        };
        let invol_cs = if stolen_ns > 0.0 {
            (stolen_ns / cfg.os.timeslice_ns).ceil()
        } else {
            0.0
        };
        // Fault/signal service also implies a pair of switches occasionally;
        // hard faults always block.
        let vol_cs = hard_faults;

        let suspension_ns = stolen_ns + fault_ns + signal_ns;
        let wall_ns = run_ns + suspension_ns;

        // --- emit counters ------------------------------------------------------
        let mut c = CounterDelta::default();
        let w = crate::PIPELINE_WIDTH;
        c.put(CounterId::Tsc, wall_ns * cfg.freq_ghz);
        c.put(CounterId::TotIns, spec.instructions);
        c.put(CounterId::ClkUnhalted, unhalted);
        c.put(CounterId::IdqUopsNotDelivered, fe_cycles * w);
        c.put(CounterId::UopsRetiredSlots, retire_cycles * w);
        c.put(CounterId::BadSpeculationSlots, badspec_cycles * w);
        c.put(CounterId::StallsMemAny, stalls_mem_any);
        c.put(CounterId::StallsL1dMiss, stalls_l1d_miss);
        c.put(CounterId::StallsL2Miss, stalls_l2_miss);
        c.put(CounterId::StallsL3Miss, stalls_l3_miss);
        c.put(CounterId::StallsCore, core_stalls);
        c.put(CounterId::LoadsL1Hit, l1_hits * (1.0 - spec.store_fraction));
        c.put(CounterId::LoadsL2Hit, l2_hits * (1.0 - spec.store_fraction));
        c.put(CounterId::LoadsL3Hit, l3_hits * (1.0 - spec.store_fraction));
        c.put(CounterId::LoadsDram, dram_refs * (1.0 - spec.store_fraction));
        c.put(CounterId::Stores, m * spec.store_fraction);
        c.put(CounterId::Branches, branches);
        c.put(CounterId::BranchMisses, branch_misses);
        c.put(CounterId::PageFaultsSoft, soft_faults);
        c.put(CounterId::PageFaultsHard, hard_faults);
        c.put(CounterId::CtxSwitchVoluntary, vol_cs);
        c.put(CounterId::CtxSwitchInvoluntary, invol_cs);
        c.put(CounterId::Signals, signals);
        c.put(CounterId::SuspensionNs, suspension_ns);

        self.jitter.apply(&mut c, rng);
        let _ = bug_fired;

        ExecOutcome { wall_ns, run_ns, suspension_ns, counters: c }
    }
}

/// Draw an integer-valued count with the given expectation. For the small
/// expectations we see per fragment a full Poisson sampler is unnecessary;
/// we use the fractional part as a Bernoulli trial, which preserves the
/// mean exactly.
fn poisson_like<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let base = mean.floor();
    let frac = mean - base;
    base + if rng.gen::<f64>() < frac { 1.0 } else { 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Locality;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn exact_model() -> CpuModel {
        CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact())
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn slot_identity_holds_exactly() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::mixed(1e6);
        let out = m.execute(&spec, &NoiseEnv::quiet(), &mut r);
        let c = &out.counters;
        let slots = 4.0 * c.get_or_zero(CounterId::ClkUnhalted);
        let parts = c.get_or_zero(CounterId::UopsRetiredSlots)
            + c.get_or_zero(CounterId::IdqUopsNotDelivered)
            + c.get_or_zero(CounterId::BadSpeculationSlots)
            + 4.0 * (c.get_or_zero(CounterId::StallsCore)
                + c.get_or_zero(CounterId::StallsMemAny));
        assert!((slots - parts).abs() / slots < 1e-9, "slots {slots} vs parts {parts}");
    }

    #[test]
    fn stall_hierarchy_nests() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::memory_bound(1e7);
        let c = m.execute(&spec, &NoiseEnv::quiet(), &mut r).counters;
        let any = c.get_or_zero(CounterId::StallsMemAny);
        let l1 = c.get_or_zero(CounterId::StallsL1dMiss);
        let l2 = c.get_or_zero(CounterId::StallsL2Miss);
        let l3 = c.get_or_zero(CounterId::StallsL3Miss);
        assert!(any >= l1 && l1 >= l2 && l2 >= l3 && l3 > 0.0);
    }

    #[test]
    fn tsc_equals_unhalted_plus_suspension() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::mixed(1e6);
        let env = NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() };
        let out = m.execute(&spec, &env, &mut r);
        let c = &out.counters;
        let tsc = c.get_or_zero(CounterId::Tsc);
        let expect = c.get_or_zero(CounterId::ClkUnhalted)
            + out.suspension_ns * m.cycles_per_ns();
        assert!((tsc - expect).abs() / tsc < 1e-9);
    }

    #[test]
    fn cpu_steal_halves_throughput_at_50_percent() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::compute_bound(1e7);
        let quiet = m.execute(&spec, &NoiseEnv::quiet(), &mut r);
        let noisy = m.execute(
            &spec,
            &NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() },
            &mut r,
        );
        let ratio = noisy.wall_ns / quiet.wall_ns;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
        // Preemption shows up as involuntary context switches.
        assert!(noisy.counters.get_or_zero(CounterId::CtxSwitchInvoluntary) >= 1.0);
        assert_eq!(quiet.counters.get_or_zero(CounterId::CtxSwitchInvoluntary), 0.0);
    }

    #[test]
    fn tot_ins_is_noise_invariant() {
        // The crucial paper observation (Fig. 5): TOT_INS depends only on
        // the workload.
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::mixed(1e6);
        let a = m.execute(&spec, &NoiseEnv::quiet(), &mut r);
        let b = m.execute(
            &spec,
            &NoiseEnv { cpu_steal: 0.6, mem_contention: 2.0, ..NoiseEnv::default() },
            &mut r,
        );
        assert_eq!(
            a.counters.get_or_zero(CounterId::TotIns),
            b.counters.get_or_zero(CounterId::TotIns)
        );
        assert!(b.wall_ns > a.wall_ns * 1.5);
    }

    #[test]
    fn memory_contention_hurts_memory_bound_more_than_compute_bound() {
        let m = exact_model();
        let mut r = rng();
        let env = NoiseEnv { mem_contention: 1.5, ..NoiseEnv::default() };
        let mb = WorkloadSpec::memory_bound(8e6);
        let cb = WorkloadSpec::compute_bound(1e6);
        let mb_slow = m.execute(&mb, &env, &mut r).wall_ns
            / m.execute(&mb, &NoiseEnv::quiet(), &mut r).wall_ns;
        let cb_slow = m.execute(&cb, &env, &mut r).wall_ns
            / m.execute(&cb, &NoiseEnv::quiet(), &mut r).wall_ns;
        assert!(mb_slow > cb_slow * 1.2, "mem {mb_slow} vs comp {cb_slow}");
    }

    #[test]
    fn l2_bug_inflates_l2_miss_stalls() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec {
            instructions: 1e7,
            mem_refs: 3e6,
            locality: Locality { l1: 0.5, l2: 0.45, l3: 0.04, dram: 0.01 },
            ..WorkloadSpec::default()
        };
        let quiet = m.execute(&spec, &NoiseEnv::quiet(), &mut r).counters;
        let env = NoiseEnv { l2_bug_prob: 1.0, l2_bug_severity: 0.6, ..NoiseEnv::default() };
        let bugged = m.execute(&spec, &env, &mut r).counters;
        assert!(
            bugged.get_or_zero(CounterId::StallsL2Miss)
                > 5.0 * quiet.get_or_zero(CounterId::StallsL2Miss)
        );
        assert!(
            bugged.get_or_zero(CounterId::LoadsDram) > quiet.get_or_zero(CounterId::LoadsDram)
        );
    }

    #[test]
    fn slow_node_increases_dram_latency() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::memory_bound(8e6);
        let healthy = m.execute(&spec, &NoiseEnv::quiet(), &mut r).wall_ns;
        let degraded = m
            .execute(&spec, &NoiseEnv { node_bw_factor: 0.845, ..NoiseEnv::default() }, &mut r)
            .wall_ns;
        assert!(degraded > healthy * 1.02);
    }

    #[test]
    fn fresh_pages_cause_soft_faults() {
        let m = exact_model();
        let mut r = rng();
        let spec = WorkloadSpec::mixed(1e5).with_fresh_bytes(64.0 * 4096.0);
        let c = m.execute(&spec, &NoiseEnv::quiet(), &mut r).counters;
        assert_eq!(c.get_or_zero(CounterId::PageFaultsSoft), 64.0);
        assert!(c.get_or_zero(CounterId::SuspensionNs) > 0.0);
    }

    #[test]
    fn poisson_like_preserves_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = 0.37;
        let total: f64 = (0..n).map(|_| poisson_like(mean, &mut r)).sum();
        let emp = total / n as f64;
        assert!((emp - mean).abs() < 0.02, "empirical mean {emp}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let m = CpuModel::new(CpuConfig::default());
        let spec = WorkloadSpec::mixed(5e5);
        let env = NoiseEnv { mem_contention: 0.4, ..NoiseEnv::default() };
        let a = m.execute(&spec, &env, &mut rng());
        let b = m.execute(&spec, &env, &mut rng());
        assert_eq!(a, b);
    }
}
