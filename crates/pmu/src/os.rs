//! OS event cost model: how long page faults, context switches and signals
//! suspend the process.
//!
//! These feed the *suspension* branch of the paper's variance breakdown
//! model (Fig. 10): suspension splits into page faults (soft/hard), context
//! switches (voluntary/involuntary) and signals, each with a characteristic
//! service time. The constants are rough Linux magnitudes; the diagnosis
//! algorithms only rely on their relative order.

use serde::{Deserialize, Serialize};

/// Per-event service times in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsCosts {
    /// A minor fault: page already resident, only PTE fixup.
    pub soft_fault_ns: f64,
    /// A major fault: page must be read from storage.
    pub hard_fault_ns: f64,
    /// A voluntary context switch (blocking wait).
    pub ctx_switch_ns: f64,
    /// Signal delivery and handler dispatch.
    pub signal_ns: f64,
    /// Scheduler timeslice: how long a preempted process waits before
    /// being scheduled again under 2-way CPU contention.
    pub timeslice_ns: f64,
}

impl Default for OsCosts {
    fn default() -> Self {
        OsCosts {
            soft_fault_ns: 2_500.0,
            hard_fault_ns: 6_000_000.0,
            ctx_switch_ns: 3_000.0,
            signal_ns: 4_000.0,
            timeslice_ns: 4_000_000.0,
        }
    }
}

impl OsCosts {
    /// Validity: all positive and finite.
    pub fn is_valid(&self) -> bool {
        [
            self.soft_fault_ns,
            self.hard_fault_ns,
            self.ctx_switch_ns,
            self.signal_ns,
            self.timeslice_ns,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(OsCosts::default().is_valid());
    }

    #[test]
    fn hard_faults_dwarf_soft_faults() {
        let c = OsCosts::default();
        assert!(c.hard_fault_ns > 100.0 * c.soft_fault_ns);
    }
}
