//! Event groupings used by the detection and diagnosis layers.
//!
//! Vapro's progressive diagnosis activates small counter sets per stage
//! (paper §4.3): the S1 stage needs only the five top-level factors, and
//! finer stages widen the set. These helpers define the canonical sets.

use crate::counters::{CounterId, CounterSet};

/// The always-on baseline set: what the collector reads around every
/// external invocation during normal detection. `TOT_INS` is the default
/// workload proxy (paper §3.3); `TSC` gives elapsed time.
pub fn detection_set() -> CounterSet {
    CounterSet::from_ids(&[CounterId::Tsc, CounterId::TotIns])
}

/// Stage-1 diagnosis: the five S1 factors of the breakdown model —
/// retiring, frontend bound, bad speculation, backend bound (derived),
/// and suspension.
pub fn s1_set() -> CounterSet {
    CounterSet::from_ids(&[
        CounterId::Tsc,
        CounterId::TotIns,
        CounterId::ClkUnhalted,
        CounterId::IdqUopsNotDelivered,
        CounterId::UopsRetiredSlots,
        CounterId::BadSpeculationSlots,
        CounterId::SuspensionNs,
    ])
}

/// Stage-2 under *backend bound*: split into core bound vs memory bound.
pub fn s2_backend_set() -> CounterSet {
    s1_set().union(CounterSet::from_ids(&[
        CounterId::StallsCore,
        CounterId::StallsMemAny,
    ]))
}

/// Stage-2 under *suspension*: page faults vs context switches vs signals.
/// These are software counters (free), but their time impact is not
/// directly quantifiable — this is where the OLS method applies.
pub fn s2_suspension_set() -> CounterSet {
    s1_set().union(CounterSet::from_ids(&[
        CounterId::PageFaultsSoft,
        CounterId::PageFaultsHard,
        CounterId::CtxSwitchVoluntary,
        CounterId::CtxSwitchInvoluntary,
        CounterId::Signals,
    ]))
}

/// Stage-3 under *memory bound*: the L1/L2/L3/DRAM stall split used in the
/// HPL hardware-bug case study (paper §6.5.1).
pub fn s3_memory_set() -> CounterSet {
    s2_backend_set().union(CounterSet::from_ids(&[
        CounterId::StallsL1dMiss,
        CounterId::StallsL2Miss,
        CounterId::StallsL3Miss,
    ]))
}

/// The widest set a production deployment would use; everything the
/// simulated PMU offers.
pub fn full_set() -> CounterSet {
    CounterSet::all()
}

/// Hardware-slot budget of a typical PMU (4 programmable counters per core
/// plus fixed-function TSC/instructions/cycles). Sets wider than this must
/// be collected across several diagnosis periods — the constraint that
/// motivates progressive diagnosis.
pub const HW_SLOT_BUDGET: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_set_is_minimal() {
        let s = detection_set();
        assert_eq!(s.len(), 2);
        assert!(s.contains(CounterId::Tsc));
        assert!(s.contains(CounterId::TotIns));
    }

    #[test]
    fn stages_are_monotone() {
        assert!(s1_set().len() < s2_backend_set().len());
        assert!(s2_backend_set().len() < s3_memory_set().len());
        for id in s1_set().iter() {
            assert!(s3_memory_set().contains(id));
        }
    }

    #[test]
    fn per_stage_sets_respect_hw_budget() {
        // Progressive diagnosis exists so each stage fits the PMU. The
        // *increment* from one stage to the next must fit the budget.
        assert!(s1_set().hardware_slots() <= HW_SLOT_BUDGET);
        assert!(s2_backend_set().hardware_slots() <= HW_SLOT_BUDGET);
        assert!(s3_memory_set().hardware_slots() <= HW_SLOT_BUDGET + 3);
    }

    #[test]
    fn suspension_stage_uses_software_counters_only_as_increment() {
        let inc: Vec<_> = s2_suspension_set()
            .iter()
            .filter(|id| !s1_set().contains(*id))
            .collect();
        assert!(!inc.is_empty());
        assert!(inc.iter().all(|id| id.is_software()));
    }
}
