//! The noise environment seen by one rank during one fragment.
//!
//! `vapro-sim`'s noise scheduler resolves its schedule into a [`NoiseEnv`]
//! for each `(rank, time)` query; the [`crate::CpuModel`] then applies the
//! perturbations. Keeping this type in `vapro-pmu` lets the CPU model stay
//! independent of the runtime.

use serde::{Deserialize, Serialize};

/// Perturbations active while a fragment executes. The default is a quiet
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseEnv {
    /// Fraction of wall time stolen from the rank by a co-scheduled process
    /// (e.g. `stress` pinned on the same core, paper Fig. 5/12). `0.5`
    /// models the OS splitting the core evenly, doubling wall time.
    pub cpu_steal: f64,
    /// Memory-bandwidth contention factor ≥ 0: scales effective DRAM (and
    /// partially L3) latency by `1 + mem_contention` (STREAM on idle cores).
    pub mem_contention: f64,
    /// Node memory-bandwidth factor; `1.0` is healthy, `< 1.0` is a
    /// degraded node (paper §6.5.2: 15.5 % lower bandwidth → `0.845`).
    pub node_bw_factor: f64,
    /// Probability that this fragment is hit by the Intel L2-eviction
    /// hardware bug, which forcibly evicts L2-resident lines (paper §6.5.1).
    pub l2_bug_prob: f64,
    /// Fraction of L2-resident lines evicted to DRAM when the bug fires.
    pub l2_bug_severity: f64,
    /// Extra hard page faults per second of execution (swapping pressure).
    pub hard_fault_rate: f64,
    /// Extra signals delivered per second of execution.
    pub signal_rate: f64,
}

impl Default for NoiseEnv {
    fn default() -> Self {
        NoiseEnv {
            cpu_steal: 0.0,
            mem_contention: 0.0,
            node_bw_factor: 1.0,
            l2_bug_prob: 0.0,
            l2_bug_severity: 0.0,
            hard_fault_rate: 0.0,
            signal_rate: 0.0,
        }
    }
}

impl NoiseEnv {
    /// A quiet machine: no perturbation at all.
    pub fn quiet() -> Self {
        NoiseEnv::default()
    }

    /// True when no perturbation is active.
    pub fn is_quiet(&self) -> bool {
        *self == NoiseEnv::default()
    }

    /// Merge two environments: steals and contentions add, bandwidth
    /// factors multiply, bug probabilities combine as independent events.
    pub fn combine(&self, other: &NoiseEnv) -> NoiseEnv {
        NoiseEnv {
            cpu_steal: (self.cpu_steal + other.cpu_steal).min(0.95),
            mem_contention: self.mem_contention + other.mem_contention,
            node_bw_factor: self.node_bw_factor * other.node_bw_factor,
            l2_bug_prob: 1.0 - (1.0 - self.l2_bug_prob) * (1.0 - other.l2_bug_prob),
            l2_bug_severity: self.l2_bug_severity.max(other.l2_bug_severity),
            hard_fault_rate: self.hard_fault_rate + other.hard_fault_rate,
            signal_rate: self.signal_rate + other.signal_rate,
        }
    }

    /// Validity: everything finite and within physical ranges.
    pub fn is_valid(&self) -> bool {
        (0.0..1.0).contains(&self.cpu_steal)
            && self.mem_contention >= 0.0
            && self.mem_contention.is_finite()
            && self.node_bw_factor > 0.0
            && self.node_bw_factor.is_finite()
            && (0.0..=1.0).contains(&self.l2_bug_prob)
            && (0.0..=1.0).contains(&self.l2_bug_severity)
            && self.hard_fault_rate >= 0.0
            && self.signal_rate >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_valid() {
        let e = NoiseEnv::default();
        assert!(e.is_quiet());
        assert!(e.is_valid());
    }

    #[test]
    fn combine_adds_steal_and_caps_it() {
        let a = NoiseEnv { cpu_steal: 0.6, ..NoiseEnv::default() };
        let b = NoiseEnv { cpu_steal: 0.6, ..NoiseEnv::default() };
        let c = a.combine(&b);
        assert!(c.cpu_steal <= 0.95);
        assert!(c.is_valid());
    }

    #[test]
    fn combine_multiplies_bw_factors() {
        let a = NoiseEnv { node_bw_factor: 0.9, ..NoiseEnv::default() };
        let b = NoiseEnv { node_bw_factor: 0.8, ..NoiseEnv::default() };
        assert!((a.combine(&b).node_bw_factor - 0.72).abs() < 1e-12);
    }

    #[test]
    fn combine_bug_probabilities_as_independent_events() {
        let a = NoiseEnv { l2_bug_prob: 0.5, ..NoiseEnv::default() };
        let b = NoiseEnv { l2_bug_prob: 0.5, ..NoiseEnv::default() };
        assert!((a.combine(&b).l2_bug_prob - 0.75).abs() < 1e-12);
    }
}
