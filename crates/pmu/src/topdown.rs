//! Formula-based top-down breakdown of a counter delta.
//!
//! This is the "formula-based method" of paper §4.2: well-designed PMU
//! events let execution time be decomposed hierarchically by closed-form
//! formulas (Yasin's top-down method), e.g. on Ivy Bridge
//! frontend-bound = `IDQ_UOPS_NOT_DELIVERED.CORE / (4 · CPU_CLK_UNHALTED)`.
//! Factors that cannot be quantified this way (page faults, context
//! switches) are handled by the OLS statistical method in `vapro-core`.

use crate::counters::{CounterDelta, CounterId};
use crate::PIPELINE_WIDTH;
use serde::{Deserialize, Serialize};

/// Level-1 + level-2 breakdown of one fragment's wall time, as *fractions
/// of wall-clock time* (all fields sum to 1 up to measurement jitter).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TopDown {
    /// Useful work: slots retiring uops.
    pub retiring: f64,
    /// Frontend bound: fetch/decode starvation.
    pub frontend: f64,
    /// Bad speculation: wasted slots plus recovery.
    pub bad_speculation: f64,
    /// Backend bound: execution + memory stalls.
    pub backend: f64,
    /// Process suspended by the OS (not running on a core).
    pub suspension: f64,
}

/// Level-2/3 refinement of the backend-bound share.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TopDownL2 {
    /// Core bound (non-memory execution stalls), as a fraction of wall time.
    pub core_bound: f64,
    /// Memory bound total.
    pub memory_bound: f64,
    /// L1-resident component of memory bound.
    pub l1_bound: f64,
    /// L2 component.
    pub l2_bound: f64,
    /// L3 component.
    pub l3_bound: f64,
    /// DRAM component.
    pub dram_bound: f64,
}

impl TopDown {
    /// Compute the S1 breakdown from a delta that includes the
    /// [`crate::events::s1_set`] counters. Returns `None` when the required
    /// events are missing (e.g. collected under the narrow detection set) or
    /// the interval is empty.
    pub fn from_delta(c: &CounterDelta) -> Option<TopDown> {
        let tsc = c.get(CounterId::Tsc)?;
        let clk = c.get(CounterId::ClkUnhalted)?;
        let fe = c.get(CounterId::IdqUopsNotDelivered)?;
        let ret = c.get(CounterId::UopsRetiredSlots)?;
        let bad = c.get(CounterId::BadSpeculationSlots)?;
        if tsc <= 0.0 {
            return None;
        }
        let slots = PIPELINE_WIDTH * clk;
        if slots <= 0.0 {
            // Interval with no running time at all: pure suspension.
            return Some(TopDown { suspension: 1.0, ..TopDown::default() });
        }
        let run_frac = (clk / tsc).min(1.0);
        let suspension = 1.0 - run_frac;
        let fe_f = (fe / slots).clamp(0.0, 1.0);
        let ret_f = (ret / slots).clamp(0.0, 1.0);
        let bad_f = (bad / slots).clamp(0.0, 1.0);
        let be_f = (1.0 - fe_f - ret_f - bad_f).max(0.0);
        Some(TopDown {
            retiring: ret_f * run_frac,
            frontend: fe_f * run_frac,
            bad_speculation: bad_f * run_frac,
            backend: be_f * run_frac,
            suspension,
        })
    }

    /// Sum of all fractions (≈ 1 for a well-formed breakdown).
    pub fn total(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend + self.suspension
    }

    /// The dominant factor's name and share.
    pub fn dominant(&self) -> (&'static str, f64) {
        let mut best = ("retiring", self.retiring);
        for (name, v) in [
            ("frontend", self.frontend),
            ("bad_speculation", self.bad_speculation),
            ("backend", self.backend),
            ("suspension", self.suspension),
        ] {
            if v > best.1 {
                best = (name, v);
            }
        }
        best
    }
}

impl TopDownL2 {
    /// Refine the backend share using the stall-cycle events. The S2
    /// split (core vs memory) needs only `STALLS_CORE` + `STALLS_MEM_ANY`
    /// ([`crate::events::s2_backend_set`]); the per-level refinement
    /// additionally needs the L1/L2/L3 miss-stall events
    /// ([`crate::events::s3_memory_set`]) and reports zeros when they were
    /// not collected. `backend_frac` is the S1 backend share of wall time.
    pub fn from_delta(c: &CounterDelta, backend_frac: f64) -> Option<TopDownL2> {
        let core = c.get(CounterId::StallsCore)?;
        let mem_any = c.get(CounterId::StallsMemAny)?;
        let total = core + mem_any;
        if total <= 0.0 {
            return Some(TopDownL2::default());
        }
        let core_bound = backend_frac * core / total;
        let memory_bound = backend_frac * mem_any / total;
        // Nested events: share at each level is the difference between
        // consecutive stall counters. Only available at S3 collection.
        let levels = (
            c.get(CounterId::StallsL1dMiss),
            c.get(CounterId::StallsL2Miss),
            c.get(CounterId::StallsL3Miss),
        );
        let (l1, l2, l3, dram) = match levels {
            (Some(l1d_miss), Some(l2_miss), Some(l3_miss)) if mem_any > 0.0 => (
                memory_bound * ((mem_any - l1d_miss).max(0.0) / mem_any),
                memory_bound * ((l1d_miss - l2_miss).max(0.0) / mem_any),
                memory_bound * ((l2_miss - l3_miss).max(0.0) / mem_any),
                memory_bound * (l3_miss.max(0.0) / mem_any),
            ),
            _ => (0.0, 0.0, 0.0, 0.0),
        };
        Some(TopDownL2 {
            core_bound,
            memory_bound,
            l1_bound: l1,
            l2_bound: l2,
            l3_bound: l3,
            dram_bound: dram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuConfig, CpuModel};
    use crate::jitter::JitterModel;
    use crate::noise_env::NoiseEnv;
    use crate::workload::{Locality, WorkloadSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(spec: &WorkloadSpec, env: &NoiseEnv) -> CounterDelta {
        let m = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
        m.execute(spec, env, &mut ChaCha8Rng::seed_from_u64(7)).counters
    }

    #[test]
    fn breakdown_sums_to_one() {
        let c = run(&WorkloadSpec::mixed(1e6), &NoiseEnv::quiet());
        let td = TopDown::from_delta(&c).unwrap();
        assert!((td.total() - 1.0).abs() < 1e-9, "total {}", td.total());
    }

    #[test]
    fn suspension_reflects_cpu_steal() {
        let env = NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() };
        let td = TopDown::from_delta(&run(&WorkloadSpec::compute_bound(1e6), &env)).unwrap();
        assert!((td.suspension - 0.5).abs() < 0.02, "suspension {}", td.suspension);
    }

    #[test]
    fn memory_bound_workload_is_backend_dominant() {
        let td =
            TopDown::from_delta(&run(&WorkloadSpec::memory_bound(8e6), &NoiseEnv::quiet()))
                .unwrap();
        assert_eq!(td.dominant().0, "backend");
    }

    #[test]
    fn compute_bound_workload_is_retiring_heavy() {
        let td =
            TopDown::from_delta(&run(&WorkloadSpec::compute_bound(1e7), &NoiseEnv::quiet()))
                .unwrap();
        assert!(td.retiring > td.frontend + td.bad_speculation);
    }

    #[test]
    fn l2_refinement_partitions_backend() {
        let c = run(&WorkloadSpec::memory_bound(8e6), &NoiseEnv::quiet());
        let td = TopDown::from_delta(&c).unwrap();
        let l2 = TopDownL2::from_delta(&c, td.backend).unwrap();
        assert!((l2.core_bound + l2.memory_bound - td.backend).abs() < 1e-9);
        let parts = l2.l1_bound + l2.l2_bound + l2.l3_bound + l2.dram_bound;
        assert!((parts - l2.memory_bound).abs() < 1e-9);
    }

    #[test]
    fn l2_bug_shows_up_as_l2_plus_dram_bound() {
        let spec = WorkloadSpec {
            instructions: 1e7,
            mem_refs: 3e6,
            locality: Locality { l1: 0.5, l2: 0.45, l3: 0.04, dram: 0.01 },
            ..WorkloadSpec::default()
        };
        let quiet = run(&spec, &NoiseEnv::quiet());
        let env = NoiseEnv { l2_bug_prob: 1.0, l2_bug_severity: 0.6, ..NoiseEnv::default() };
        let bug = run(&spec, &env);
        let td_q = TopDown::from_delta(&quiet).unwrap();
        let td_b = TopDown::from_delta(&bug).unwrap();
        let l2_q = TopDownL2::from_delta(&quiet, td_q.backend).unwrap();
        let l2_b = TopDownL2::from_delta(&bug, td_b.backend).unwrap();
        // Evicted lines are re-fetched from L3 (mostly) and DRAM: the
        // below-L2 share of the backend breakdown balloons to dominance.
        let below_l2_q = l2_q.l3_bound + l2_q.dram_bound;
        let below_l2_b = l2_b.l3_bound + l2_b.dram_bound;
        assert!(below_l2_b > below_l2_q * 1.5, "{below_l2_b} vs {below_l2_q}");
        assert!(below_l2_b > 0.7, "below-L2 share {below_l2_b}");
        assert!(td_b.backend > td_q.backend);
    }

    #[test]
    fn missing_events_yield_none() {
        let mut c = CounterDelta::default();
        c.put(CounterId::Tsc, 100.0);
        c.put(CounterId::TotIns, 50.0);
        assert!(TopDown::from_delta(&c).is_none());
    }

    #[test]
    fn empty_interval_yields_none() {
        let mut c = CounterDelta::default();
        for id in crate::events::s1_set().iter() {
            c.put(id, 0.0);
        }
        assert!(TopDown::from_delta(&c).is_none());
    }
}
