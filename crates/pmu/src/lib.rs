#![warn(missing_docs)]

//! # vapro-pmu — simulated performance monitoring unit
//!
//! This crate is the hardware-counter substrate of the Vapro reproduction.
//! The paper collects PMU data (TOT_INS, TSC, top-down pipeline events) and
//! OS software counters (page faults, context switches) through PAPI and
//! `/proc`. Here, a [`CpuModel`] converts a declared [`WorkloadSpec`] — the
//! abstract work of a computation fragment — into elapsed cycles and a full
//! [`CounterDelta`], under an externally supplied [`NoiseEnv`] describing
//! active perturbations (CPU contention, memory-bandwidth contention, the
//! Intel L2-eviction hardware bug, a degraded node, …).
//!
//! The model preserves the statistical structure the paper's algorithms rely
//! on:
//!
//! * `TOT_INS` depends only on the workload (plus small multiplicative PMU
//!   jitter) and is therefore stable under noise — the property exploited by
//!   Vapro's fixed-workload clustering (paper Fig. 5);
//! * `TSC` (wall-clock cycles) absorbs every noise effect;
//! * the top-down identities of Yasin's method hold by construction, so the
//!   formula-based variance breakdown (paper §4.2) works exactly as on real
//!   hardware.

pub mod counters;
pub mod cpu;
pub mod events;
pub mod jitter;
pub mod noise_env;
pub mod os;
pub mod topdown;
pub mod workload;

pub use counters::{CounterDelta, CounterId, CounterSet, CounterSnapshot};
pub use cpu::{CpuConfig, CpuModel, ExecOutcome};
pub use jitter::JitterModel;
pub use noise_env::NoiseEnv;
pub use topdown::{TopDown, TopDownL2};
pub use workload::{Locality, WorkloadSpec};

/// Number of issue slots per cycle assumed by the top-down model
/// (4-wide superscalar, matching the Ivy Bridge formula quoted in the paper:
/// frontend-bound = `IDQ_UOPS_NOT_DELIVERED.CORE / (4 * CPU_CLK_UNHALTED.THREAD)`).
pub const PIPELINE_WIDTH: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_width_matches_paper_formula() {
        assert_eq!(PIPELINE_WIDTH, 4.0);
    }
}
