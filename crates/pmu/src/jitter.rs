//! PMU measurement error model.
//!
//! Real hardware counters are not exact: Weaver et al. (cited by the paper
//! as the reason Vapro tolerates small workload differences inside one
//! cluster) measured both non-determinism and systematic overcount. We
//! model this as independent multiplicative Gaussian noise on hardware
//! events. The default relative σ of 0.3 % is far below Vapro's 5 %
//! clustering threshold — exactly the regime the paper designs for.

use crate::counters::{CounterDelta, CounterId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative jitter applied to hardware counter readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Relative standard deviation of the multiplicative error.
    pub relative_sigma: f64,
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel { relative_sigma: 0.003 }
    }
}

impl JitterModel {
    /// No measurement error at all — useful for tests asserting exact
    /// model identities.
    pub fn exact() -> Self {
        JitterModel { relative_sigma: 0.0 }
    }

    /// A model with the given relative σ.
    pub fn with_sigma(relative_sigma: f64) -> Self {
        assert!(relative_sigma >= 0.0 && relative_sigma.is_finite());
        JitterModel { relative_sigma }
    }

    /// Apply jitter in place to the jitter-eligible counters of `delta`.
    pub fn apply<R: Rng + ?Sized>(&self, delta: &mut CounterDelta, rng: &mut R) {
        if self.relative_sigma == 0.0 {
            return;
        }
        for id in CounterId::ALL {
            if !id.is_jittered() {
                continue;
            }
            if let Some(v) = delta.get(id) {
                if v != 0.0 {
                    let eps = gaussian(rng) * self.relative_sigma;
                    // Clamp so a counter can never go negative.
                    delta.put(id, v * (1.0 + eps.clamp(-0.5, 0.5)));
                }
            }
        }
    }
}

/// Standard normal via Box–Muller (sufficient quality for an error model,
/// no extra dependency needed).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_model_is_identity() {
        let mut d = CounterDelta::default();
        d.put(CounterId::TotIns, 12345.0);
        let before = d.clone();
        JitterModel::exact().apply(&mut d, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(d, before);
    }

    #[test]
    fn jitter_leaves_software_counters_and_tsc_exact() {
        let mut d = CounterDelta::default();
        d.put(CounterId::Tsc, 1e6);
        d.put(CounterId::PageFaultsSoft, 7.0);
        d.put(CounterId::SuspensionNs, 500.0);
        d.put(CounterId::TotIns, 1e6);
        JitterModel::default().apply(&mut d, &mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(d.get(CounterId::Tsc), Some(1e6));
        assert_eq!(d.get(CounterId::PageFaultsSoft), Some(7.0));
        assert_eq!(d.get(CounterId::SuspensionNs), Some(500.0));
        assert_ne!(d.get(CounterId::TotIns), Some(1e6));
    }

    #[test]
    fn jitter_is_small_and_unbiased() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let jm = JitterModel::default();
        let n = 10_000;
        let mut sum = 0.0;
        let mut max_rel = 0.0f64;
        for _ in 0..n {
            let mut d = CounterDelta::default();
            d.put(CounterId::TotIns, 1e6);
            jm.apply(&mut d, &mut rng);
            let v = d.get_or_zero(CounterId::TotIns);
            sum += v;
            max_rel = max_rel.max(((v - 1e6) / 1e6).abs());
        }
        let mean = sum / n as f64;
        assert!(((mean - 1e6) / 1e6).abs() < 1e-3, "biased mean {mean}");
        // Well below the 5 % clustering threshold.
        assert!(max_rel < 0.02, "max relative error {max_rel}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = gaussian(&mut rng);
            s += g;
            s2 += g * g;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zero_values_stay_zero() {
        let mut d = CounterDelta::default();
        d.put(CounterId::BranchMisses, 0.0);
        JitterModel::default().apply(&mut d, &mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(d.get(CounterId::BranchMisses), Some(0.0));
    }
}
