//! Property tests of the columnar wire format: the binary encoding is a
//! lossless bijection on batches (including labels with `" -> "` inside,
//! unicode labels, empty windows and zero-counter fragments), malformed
//! input never panics, and both transport encodings — columnar binary
//! and the JSON debugging fallback — reassemble identical pooled
//! populations on the server side.

use proptest::prelude::*;
use proptest::prop::collection::vec;
use vapro_core::fragment::{Fragment, FragmentKind};
use vapro_core::wire::{
    EdgeGroup, FragmentBatch, ReassembledPools, VertexGroup, DEFAULT_JOB, DEFAULT_TENANT,
};
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::VirtualTime;

/// Labels exercising the separator ambiguity the dictionary removes,
/// plus unicode and the empty string.
fn label_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        vec(0u8..26, 1..12)
            .prop_map(|ix| ix.into_iter().map(|i| (b'a' + i) as char).collect::<String>()),
        Just("solve -> apply".to_string()),
        Just("a -> b -> c".to_string()),
        Just("поток:MPI_Allreduce".to_string()),
        Just("循环:письмо✓".to_string()),
        Just(String::new()),
        Just(" -> ".to_string()),
    ]
}

fn kind_strategy() -> impl Strategy<Value = FragmentKind> {
    prop_oneof![
        Just(FragmentKind::Computation),
        Just(FragmentKind::Communication),
        Just(FragmentKind::Io),
        Just(FragmentKind::Other),
    ]
}

/// Finite values only: NaN breaks `==` without telling us anything about
/// the codec.
fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), -1e12f64..1e12]
}

fn fragment_strategy() -> impl Strategy<Value = Fragment> {
    (
        0usize..64,
        kind_strategy(),
        0u64..1u64 << 48,
        0u64..1u64 << 20,
        vec((0usize..CounterId::ALL.len(), finite()), 0..6),
        vec(finite(), 0..5),
    )
        .prop_map(|(rank, kind, start, dur, counters, args)| {
            let mut delta = CounterDelta::default();
            for (idx, val) in counters {
                delta.put(CounterId::ALL[idx], val);
            }
            Fragment {
                rank,
                kind,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(start + dur),
                counters: delta,
                args,
            }
        })
}

/// An arbitrary batch: every group references a valid dictionary id;
/// groups (and the whole batch) may be empty — the "empty window" report.
fn batch_strategy() -> impl Strategy<Value = FragmentBatch> {
    vec(label_strategy(), 1..6).prop_flat_map(|labels| {
        let nlabels = labels.len() as u32;
        (
            Just(labels),
            0usize..1024,
            0u64..1u64 << 32,
            0u64..1u64 << 48,
            vec((0..nlabels, vec(fragment_strategy(), 0..8)), 0..4),
            vec((0..nlabels, 0..nlabels, vec(fragment_strategy(), 0..8)), 0..4),
        )
            .prop_map(|(labels, rank, seq, wstart, vgroups, egroups)| FragmentBatch {
                rank,
                seq,
                tenant_id: (seq >> 16) as u32,
                job_id: (seq >> 24) as u32,
                window_start_ns: wstart,
                window_end_ns: wstart + 1_000_000,
                labels,
                vertex_groups: vgroups
                    .into_iter()
                    .map(|(label, fragments)| VertexGroup { label, fragments })
                    .collect(),
                edge_groups: egroups
                    .into_iter()
                    .map(|(from, to, fragments)| EdgeGroup { from, to, fragments })
                    .collect(),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode_v3(b)) == b, for arbitrary batches — v3 carries
    /// every field including the routing stamp. The v2 layout is equally
    /// lossless except for the stamp it cannot carry, which the decoder
    /// restores to the default identity.
    #[test]
    fn binary_roundtrip_is_identity(batch in batch_strategy()) {
        let back = FragmentBatch::decode(&batch.encode_v3()).expect("own v3 parses");
        prop_assert_eq!(&batch, &back);
        let v2 = FragmentBatch::decode(&batch.encode()).expect("own v2 parses");
        prop_assert_eq!(v2, batch.clone().with_job(DEFAULT_TENANT, DEFAULT_JOB));
    }

    /// The JSON fallback is equally lossless.
    #[test]
    fn json_roundtrip_is_identity(batch in batch_strategy()) {
        let back = FragmentBatch::from_json_bytes(&batch.to_json_bytes())
            .expect("own JSON parses");
        prop_assert_eq!(&batch, &back);
    }

    /// Shipping over binary or over JSON reassembles identical pooled
    /// populations — the two transports are interchangeable end to end.
    #[test]
    fn both_transports_pool_identically(batches in vec(batch_strategy(), 1..4)) {
        let via_binary: Vec<FragmentBatch> = batches
            .iter()
            .map(|b| FragmentBatch::decode(&b.encode()).expect("binary"))
            .collect();
        let via_json: Vec<FragmentBatch> = batches
            .iter()
            .map(|b| FragmentBatch::from_json_bytes(&b.to_json_bytes()).expect("json"))
            .collect();
        let pb = ReassembledPools::from_batches(via_binary);
        let pj = ReassembledPools::from_batches(via_json);
        prop_assert_eq!(&pb, &pj);
        prop_assert_eq!(pb.len(), batches.iter().map(|b| b.len()).sum::<usize>());
    }

    /// Truncating a valid frame anywhere yields an error, never a panic
    /// and never a silently-wrong batch.
    #[test]
    fn truncation_errors_cleanly(batch in batch_strategy(), cut in 0.0f64..1.0) {
        let bytes = batch.encode();
        let cut = (bytes.len() as f64 * cut) as usize;
        if cut < bytes.len() {
            prop_assert!(FragmentBatch::decode(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in vec((0u16..256).prop_map(|b| b as u8), 0..256)) {
        let _ = FragmentBatch::decode(&bytes);
    }

    /// Mutating any single byte of a valid v2 frame never panics, and —
    /// except for the version byte, where a flip can masquerade as the
    /// uncheckedsummed legacy layout — always returns an error: the frame
    /// prefix is structurally validated and every payload byte after the
    /// version is either the CRC field or covered by it.
    #[test]
    fn byte_mutations_of_v2_frames_error_cleanly(
        batch in batch_strategy(),
        pos in 0.0f64..1.0,
        mask in 1u16..256,
    ) {
        let mut bytes = batch.encode();
        let pos = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[pos] ^= mask as u8;
        let decoded = FragmentBatch::decode(&bytes);
        if pos != 8 {
            prop_assert!(decoded.is_err(), "flip at {} decoded anyway", pos);
        }
    }

    /// The same single-byte mutation sweep on v3 frames: the routing
    /// header sits inside checksum coverage, so a flipped tenant or job
    /// id is caught like any other payload corruption.
    #[test]
    fn byte_mutations_of_v3_frames_error_cleanly(
        batch in batch_strategy(),
        pos in 0.0f64..1.0,
        mask in 1u16..256,
    ) {
        let mut bytes = batch.encode_v3();
        let pos = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[pos] ^= mask as u8;
        let decoded = FragmentBatch::decode(&bytes);
        if pos != 8 {
            prop_assert!(decoded.is_err(), "flip at {} decoded anyway", pos);
        }
    }

    /// The same mutation sweep on legacy v1 frames (no checksum): flips
    /// may decode to a *different* batch, but must never panic and never
    /// reproduce the original encoding by accident.
    #[test]
    fn byte_mutations_of_v1_frames_never_panic(
        batch in batch_strategy(),
        pos in 0.0f64..1.0,
        mask in 1u16..256,
    ) {
        let mut bytes = batch.encode_v1();
        let pos = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[pos] ^= mask as u8;
        let _ = FragmentBatch::decode(&bytes);
    }

    /// Legacy v1 frames roundtrip losslessly apart from the sequence
    /// number and routing stamp, which the v1 layout cannot carry.
    #[test]
    fn v1_roundtrip_drops_only_the_sequence(batch in batch_strategy()) {
        let back = FragmentBatch::decode(&batch.encode_v1()).expect("v1 parses");
        prop_assert_eq!(
            back,
            batch
                .with_seq(vapro_core::wire::SEQ_UNSEQUENCED)
                .with_job(DEFAULT_TENANT, DEFAULT_JOB)
        );
    }
}
