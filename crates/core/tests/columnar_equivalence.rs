//! Property tests of the columnar core: [`ColumnarPool`] lane views must
//! drive detection and diagnosis to **bit-identical** results versus the
//! AoS `&[&Fragment]` path over the same fragment population — the
//! columnar representation is an optimisation, never a semantic change.
//! Populations come in over the real wire-ingest path (arena pools),
//! including empty groups, single-fragment locations and colliding
//! timestamps; a dedicated case checks that explicitly empty lanes are
//! inert.

use proptest::prelude::*;
use proptest::prop::collection::vec;
use vapro_core::fragment::{Fragment, FragmentKind};
use vapro_core::wire::{EdgeGroup, FragmentBatch, VertexGroup};
use vapro_core::{
    detect_columnar, detect_merged, diagnose_regions_columnar, diagnose_regions_seq,
    ColumnarPool, IngestArena, RegionOfInterest, StateKey, VaproConfig,
};
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::{CallSite, VirtualTime};

const NRANKS: usize = 4;
const BINS: usize = 8;

fn kind_strategy() -> impl Strategy<Value = FragmentKind> {
    prop_oneof![
        Just(FragmentKind::Computation),
        Just(FragmentKind::Communication),
        Just(FragmentKind::Io),
        Just(FragmentKind::Other),
    ]
}

fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), -1e9f64..1e9]
}

/// Fragments over a small rank set and a narrow time range, so windows,
/// clusters and regions all actually form. Coarse start/duration grids
/// make timestamp collisions (the content-tiebreak path) common.
fn fragment_strategy() -> impl Strategy<Value = Fragment> {
    (
        0usize..NRANKS,
        kind_strategy(),
        (0u64..40).prop_map(|t| t * 1_000_000),
        (1u64..20).prop_map(|d| d * 100_000),
        vec((0usize..CounterId::ALL.len(), finite()), 0..5),
        vec(finite(), 0..4),
    )
        .prop_map(|(rank, kind, start, dur, counters, args)| {
            let mut delta = CounterDelta::default();
            for (idx, val) in counters {
                delta.put(CounterId::ALL[idx], val);
            }
            Fragment {
                rank,
                kind,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(start + dur),
                counters: delta,
                args,
            }
        })
}

/// A valid batch over a tiny label alphabet: group sizes span empty,
/// single-fragment and clusterable populations.
fn batch_strategy() -> impl Strategy<Value = FragmentBatch> {
    let labels = ["solve", "halo", "reduce"];
    (
        0usize..NRANKS,
        vec((0u32..3, vec(fragment_strategy(), 0..12)), 0..3),
        vec((0u32..3, 0u32..3, vec(fragment_strategy(), 0..12)), 0..3),
    )
        .prop_map(move |(rank, vgroups, egroups)| FragmentBatch {
            rank,
            seq: 0,
            tenant_id: 0,
            job_id: 0,
            window_start_ns: 0,
            window_end_ns: 40_000_000,
            labels: labels.iter().map(|l| l.to_string()).collect(),
            vertex_groups: vgroups
                .into_iter()
                .map(|(label, fragments)| VertexGroup { label, fragments })
                .collect(),
            edge_groups: egroups
                .into_iter()
                .map(|(from, to, fragments)| EdgeGroup { from, to, fragments })
                .collect(),
        })
}

fn pooled(batches: Vec<FragmentBatch>) -> IngestArena {
    let mut arena = IngestArena::new();
    for b in batches {
        arena.push_batch(b);
    }
    arena
}

fn rois() -> Vec<RegionOfInterest> {
    let mut rois = Vec::new();
    for r in 0..NRANKS {
        for c in 0..4u64 {
            rois.push(RegionOfInterest {
                ranks: (r, r),
                t_start: VirtualTime::from_ns(c * 15_000_000),
                t_end: VirtualTime::from_ns((c + 1) * 15_000_000),
            });
        }
    }
    rois
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// detect over lanes == detect over fragment slices, to the bit.
    /// `Debug` formatting of `f64` is shortest-roundtrip, so equal debug
    /// strings mean equal bits in every heat-map cell, region bound,
    /// series point and cluster seed.
    #[test]
    fn columnar_detection_is_bit_identical(batches in vec(batch_strategy(), 1..4)) {
        let arena = pooled(batches);
        let view = arena.full_view();
        let cfg = VaproConfig::default();
        let aos = detect_merged(&view, NRANKS, BINS, &cfg);
        let pool = ColumnarPool::from_merged(&view);
        let col = detect_columnar(&pool, NRANKS, BINS, &cfg);
        prop_assert_eq!(format!("{aos:?}"), format!("{col:?}"));
    }

    /// Batched diagnosis over lanes == over fragment slices, for every
    /// region of a grid covering the population.
    #[test]
    fn columnar_diagnosis_is_bit_identical(batches in vec(batch_strategy(), 1..4)) {
        let arena = pooled(batches);
        let view = arena.full_view();
        let cfg = VaproConfig::default();
        let pool = ColumnarPool::from_merged(&view);
        prop_assert_eq!(
            diagnose_regions_seq(&view, &rois(), &cfg),
            diagnose_regions_columnar(&pool, &rois(), &cfg)
        );
    }

    /// Refilling a recycled pool (the streaming server's scratch path)
    /// leaves no trace of the previous population.
    #[test]
    fn refill_forgets_the_previous_population(
        first in vec(batch_strategy(), 1..3),
        second in vec(batch_strategy(), 1..3),
    ) {
        let cfg = VaproConfig::default();
        let arena_a = pooled(first);
        let arena_b = pooled(second);
        let (va, vb) = (arena_a.full_view(), arena_b.full_view());
        let mut recycled = ColumnarPool::from_merged(&va);
        recycled.refill_from_merged(&vb);
        let fresh = ColumnarPool::from_merged(&vb);
        prop_assert_eq!(&recycled, &fresh);
        prop_assert_eq!(
            format!("{:?}", detect_columnar(&recycled, NRANKS, BINS, &cfg)),
            format!("{:?}", detect_columnar(&fresh, NRANKS, BINS, &cfg))
        );
    }
}

/// Explicitly empty lanes — locations that exist in the pool but hold no
/// fragments, which the AoS view path can never even produce — must be
/// inert: same heat maps, regions, rare paths, series and coverage as
/// the pool without them (empty edge lanes still occupy a slot in
/// `edge_clusters`, whose alignment is positional by design).
#[test]
fn empty_lanes_are_inert() {
    let cfg = VaproConfig::default();
    let frag = |rank: usize, start: u64, dur: u64, ins: f64| {
        let mut counters = CounterDelta::default();
        counters.put(CounterId::TotIns, ins);
        Fragment {
            rank,
            kind: FragmentKind::Computation,
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + dur),
            counters,
            args: vec![],
        }
    };
    let key = |l: &'static str| StateKey::Site(CallSite(l));

    let mut dense = ColumnarPool::new();
    dense.begin_edge(key("a"), key("b"));
    for i in 0..8u64 {
        dense.push(&frag((i % 2) as usize, i * 1_000_000, 500_000 + (i % 3) * 1_000, 1000.0));
    }
    dense.begin_vertex(key("solo"));
    dense.push(&frag(1, 2_000_000, 300_000, 64.0)); // single-fragment location

    let mut sparse = ColumnarPool::new();
    sparse.begin_vertex(key("ghost")); // empty vertex lane
    sparse.begin_edge(key("a"), key("b"));
    for i in 0..8u64 {
        sparse.push(&frag((i % 2) as usize, i * 1_000_000, 500_000 + (i % 3) * 1_000, 1000.0));
    }
    sparse.begin_edge(key("x"), key("y")); // empty edge lane
    sparse.begin_vertex(key("solo"));
    sparse.push(&frag(1, 2_000_000, 300_000, 64.0));

    let a = detect_columnar(&dense, 2, 4, &cfg);
    let b = detect_columnar(&sparse, 2, 4, &cfg);
    assert_eq!(format!("{:?}", a.comp_map), format!("{:?}", b.comp_map));
    assert_eq!(format!("{:?}", a.comm_map), format!("{:?}", b.comm_map));
    assert_eq!(format!("{:?}", a.io_map), format!("{:?}", b.io_map));
    assert_eq!(format!("{:?}", a.comp_regions), format!("{:?}", b.comp_regions));
    assert_eq!(format!("{:?}", a.rare_paths), format!("{:?}", b.rare_paths));
    assert_eq!(format!("{:?}", a.series), format!("{:?}", b.series));
    assert_eq!(a.coverage.to_bits(), b.coverage.to_bits());
    assert_eq!(a.edge_clusters.len() + 1, b.edge_clusters.len());
    assert!(b.edge_clusters.iter().any(|o| o.usable.is_empty() && o.rare.is_empty()));
}
