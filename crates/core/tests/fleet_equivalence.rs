//! Fleet-plane equivalence and fairness properties.
//!
//! * A single-job fleet — any shard count, any queue capacity — is
//!   bit-identical to a bare `WindowedIngestor` fed the same frames.
//! * Pre-v3 frames route to the default tenant/job and close the same
//!   windows they would on a bare ingestor.
//! * An over-budget tenant is rejected with structured errors while a
//!   clean tenant's windows keep closing on time.
//! * Unknown tenants are structured rejections, never panics and never
//!   silent drops.
//! * Same-node jobs with correlated variance produce an interference
//!   finding; isolated jobs do not.

use proptest::prelude::*;
use vapro_core::detect::window::Window;
use vapro_core::detect::server::{WindowReport, WindowedIngestor};
use vapro_core::fleet::{FleetConfig, FleetIngestor, FleetWindow, JobKey};
use vapro_core::fragment::{Fragment, FragmentKind};
use vapro_core::stg::{StateKey, Stg};
use vapro_core::wire::{FragmentBatch, WireError};
use vapro_core::VaproConfig;
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::{CallSite, VirtualTime};

/// A single-site looping STG: `n` iterations of ~`period_ns`, the
/// `slow_range` iterations 3x slower (same shape the server tests use).
fn looped_stg(rank: usize, n: usize, period_ns: u64, slow_range: std::ops::Range<usize>) -> Stg {
    let mut stg = Stg::new();
    let start = stg.state(StateKey::Start);
    let site = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
    stg.transition(start, site);
    let e = stg.transition(site, site);
    let mut t = 0u64;
    for i in 0..n {
        let d = if slow_range.contains(&i) { period_ns * 3 } else { period_ns };
        let mut c = CounterDelta::default();
        c.put(CounterId::TotIns, 1000.0);
        stg.attach_edge_fragment(
            e,
            Fragment {
                rank,
                kind: FragmentKind::Computation,
                start: VirtualTime::from_ns(t),
                end: VirtualTime::from_ns(t + d),
                counters: c,
                args: vec![],
            },
        );
        t += d + 10;
    }
    stg
}

/// Period-major v3 frames for one job: every rank ships period `k`
/// before any rank ships `k+1`, sequenced from 1.
fn job_frames(stgs: &[Stg], periods: u64, period: VirtualTime, key: JobKey) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for k in 0..periods {
        let w = Window {
            start: VirtualTime::from_ns(period.ns() * k),
            end: VirtualTime::from_ns(period.ns() * (k + 1)),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            frames.push(
                FragmentBatch::from_stg_starting_in(stg, rank, w)
                    .with_seq(k + 1)
                    .with_job(key.tenant, key.job)
                    .encode_v3(),
            );
        }
    }
    frames
}

fn assert_reports_identical(got: &[WindowReport], want: &[WindowReport]) {
    assert_eq!(got.len(), want.len(), "window count diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.window, w.window);
        assert_eq!(g.result.series, w.result.series);
        assert_eq!(g.result.rare_paths, w.result.rare_paths);
        assert_eq!(g.result.comp_map, w.result.comp_map);
        assert_eq!(g.result.comm_map, w.result.comm_map);
        assert_eq!(g.result.io_map, w.result.io_map);
        assert_eq!(g.result.comp_regions, w.result.comp_regions);
        assert_eq!(g.result.comm_regions, w.result.comm_regions);
        assert_eq!(g.result.io_regions, w.result.io_regions);
        assert_eq!(g.result.coverage.to_bits(), w.result.coverage.to_bits());
        assert_eq!(g.result.edge_clusters, w.result.edge_clusters);
        assert_eq!(g.diagnoses, w.diagnoses);
        assert_eq!(g.coverage, w.coverage);
    }
}

/// Run frames through a fleet, returning every closed window in order.
fn run_fleet(mut fleet: FleetIngestor, frames: &[Vec<u8>]) -> Vec<FleetWindow> {
    let mut windows = Vec::new();
    for f in frames {
        windows.extend(fleet.push_encoded(f).expect("valid frame"));
    }
    windows.extend(fleet.finish());
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: one job through the fleet — whatever the
    /// shard count or queue capacity — closes exactly the windows the
    /// bare `WindowedIngestor` closes, bit for bit.
    #[test]
    fn single_job_fleet_is_bit_identical(
        nranks in 1usize..4,
        slow_from in 0usize..20,
        shards in 1usize..5,
        queue_capacity in 1usize..17,
        tenant in prop_oneof![Just(0u32), Just(3u32)],
        job in prop_oneof![Just(0u32), Just(41u32)],
    ) {
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let mut stgs: Vec<Stg> =
            (0..nranks).map(|r| looped_stg(r, 24, 1_000_000_000, 0..0)).collect();
        stgs[nranks - 1] = looped_stg(nranks - 1, 24, 1_000_000_000, slow_from..slow_from + 6);
        let key = JobKey { tenant, job };
        let frames = job_frames(&stgs, 14, cfg.report_period, key);

        let mut bare = WindowedIngestor::new(nranks, 8, cfg.clone());
        let mut want = Vec::new();
        for f in &frames {
            // The bare ingestor sees the identical decoded batches: v3
            // decode differs from the fleet path only in the routing
            // stamp, which the ingestor ignores.
            want.extend(bare.push(FragmentBatch::decode(f).expect("valid")));
        }
        want.extend(bare.finish());

        let mut fleet_cfg = FleetConfig::new(cfg);
        fleet_cfg.shards = shards;
        fleet_cfg.default_nranks = nranks;
        fleet_cfg.queue_capacity_frames = queue_capacity;
        let mut fleet = FleetIngestor::new(fleet_cfg);
        if tenant != 0 {
            fleet.register_tenant(tenant, u64::MAX);
        }
        let got = run_fleet(fleet, &frames);

        prop_assert!(got.iter().all(|w| w.key == key), "windows tagged with the job key");
        let got_reports: Vec<WindowReport> = got.into_iter().map(|w| w.report).collect();
        assert_reports_identical(&got_reports, &want);
    }
}

#[test]
fn pre_v3_frames_route_to_the_default_job() {
    let cfg = VaproConfig {
        report_period: VirtualTime::from_secs(5),
        ..VaproConfig::default()
    };
    let stgs: Vec<Stg> = (0..2).map(|r| looped_stg(r, 20, 1_000_000_000, 5..9)).collect();

    let mut bare = WindowedIngestor::new(2, 8, cfg.clone());
    let mut fleet_cfg = FleetConfig::new(cfg.clone());
    fleet_cfg.shards = 3;
    fleet_cfg.default_nranks = 2;
    let mut fleet = FleetIngestor::new(fleet_cfg);

    let mut want = Vec::new();
    let mut got = Vec::new();
    for k in 0..10u64 {
        let w = Window {
            start: VirtualTime::from_secs(5 * k),
            end: VirtualTime::from_secs(5 * (k + 1)),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            let batch = FragmentBatch::from_stg_starting_in(stg, rank, w).with_seq(k + 1);
            // Alternate v1 and v2 encodings: both predate tenancy and
            // must land on the default job.
            let bytes = if (k as usize + rank).is_multiple_of(2) { batch.encode() } else { batch.encode_v1() };
            want.extend(bare.push_encoded(&bytes).expect("valid"));
            got.extend(fleet.push_encoded(&bytes).expect("valid"));
        }
    }
    want.extend(bare.finish());
    got.extend(fleet.finish());

    assert!(!got.is_empty(), "windows closed through the fleet");
    assert!(got.iter().all(|w| w.key == JobKey::default_job()));
    let got_reports: Vec<WindowReport> = got.into_iter().map(|w| w.report).collect();
    assert_reports_identical(&got_reports, &want);
}

#[test]
fn over_budget_tenant_is_rejected_while_clean_tenant_closes_windows() {
    let cfg = VaproConfig {
        report_period: VirtualTime::from_secs(5),
        ..VaproConfig::default()
    };
    let clean_key = JobKey { tenant: 1, job: 1 };
    let greedy_key = JobKey { tenant: 2, job: 1 };
    let stg_clean = looped_stg(0, 24, 1_000_000_000, 6..10);
    let stg_greedy = looped_stg(0, 24, 1_000_000_000, 0..0);
    let clean_frames = job_frames(std::slice::from_ref(&stg_clean), 14, cfg.report_period, clean_key);
    let greedy_frames =
        job_frames(std::slice::from_ref(&stg_greedy), 14, cfg.report_period, greedy_key);

    // The clean tenant alone, as the reference timeline.
    let mut bare = WindowedIngestor::new(1, 8, cfg.clone());
    let mut want = Vec::new();
    for f in &clean_frames {
        want.extend(bare.push(FragmentBatch::decode(f).expect("valid")));
    }
    want.extend(bare.finish());

    let mut fleet_cfg = FleetConfig::new(cfg);
    fleet_cfg.shards = 2;
    let mut fleet = FleetIngestor::new(fleet_cfg);
    fleet.register_tenant(1, u64::MAX);
    // A budget below one frame: every greedy frame is over budget.
    fleet.register_tenant(2, 16);

    let mut got = Vec::new();
    let mut rejections = 0u64;
    for (c, g) in clean_frames.iter().zip(&greedy_frames) {
        got.extend(fleet.push_encoded(c).expect("clean tenant admitted"));
        match fleet.push_encoded(g) {
            Err(WireError::TenantOverBudget { tenant, budget_bytes, requested_bytes }) => {
                assert_eq!(tenant, 2);
                assert_eq!(budget_bytes, 16);
                assert!(requested_bytes > budget_bytes);
                rejections += 1;
            }
            other => panic!("expected structured budget rejection, got {other:?}"),
        }
    }
    assert_eq!(rejections, greedy_frames.len() as u64);
    let greedy_stats = fleet.tenant_stats(2).expect("registered").clone();
    assert_eq!(greedy_stats.over_budget_frames, rejections);
    assert!(greedy_stats.over_budget_bytes > 0);
    assert_eq!(greedy_stats.frames_admitted, 0);
    let clean_stats = fleet.tenant_stats(1).expect("registered").clone();
    assert_eq!(clean_stats.frames_admitted, clean_frames.len() as u64);
    assert_eq!(clean_stats.frames_rejected(), 0);

    let (report, tail) = fleet.into_report();
    got.extend(tail);

    // The clean tenant's windows are exactly what it would have closed
    // alone — the greedy tenant never stalled or corrupted it.
    assert!(got.iter().all(|w| w.key == clean_key));
    let got_reports: Vec<WindowReport> = got.into_iter().map(|w| w.report).collect();
    assert_reports_identical(&got_reports, &want);

    // And the report attributes the rejections to the greedy tenant.
    let greedy = report.tenants.iter().find(|t| t.tenant == 2).expect("summarised");
    assert_eq!(greedy.stats.over_budget_frames, rejections);
}

#[test]
fn unknown_tenant_is_a_structured_rejection() {
    let cfg = VaproConfig {
        report_period: VirtualTime::from_secs(5),
        ..VaproConfig::default()
    };
    let stg = looped_stg(0, 12, 1_000_000_000, 0..0);
    let frames =
        job_frames(std::slice::from_ref(&stg), 6, cfg.report_period, JobKey { tenant: 9, job: 0 });

    let mut fleet = FleetIngestor::new(FleetConfig::new(cfg));
    for f in &frames {
        match fleet.push_encoded(f) {
            Err(WireError::UnknownTenant { tenant }) => assert_eq!(tenant, 9),
            other => panic!("expected unknown-tenant rejection, got {other:?}"),
        }
    }
    assert_eq!(fleet.unattributed_stats().unknown_tenant_frames, frames.len() as u64);
    assert_eq!(fleet.queued_frames(), 0, "rejected frames are never enqueued");

    // The plane still serves registered tenants afterwards.
    let default_frames =
        job_frames(std::slice::from_ref(&stg), 6, VirtualTime::from_secs(5), JobKey::default_job());
    let mut windows = Vec::new();
    for f in &default_frames {
        windows.extend(fleet.push_encoded(f).expect("default tenant admitted"));
    }
    windows.extend(fleet.finish());
    assert!(!windows.is_empty(), "default tenant still closes windows");
}

#[test]
fn same_node_jobs_with_correlated_variance_are_flagged() {
    let cfg = VaproConfig {
        report_period: VirtualTime::from_secs(5),
        ..VaproConfig::default()
    };
    // Both jobs slow over the same iterations — the co-located pair —
    // and a third job on another node with the same pattern.
    let key_a = JobKey { tenant: 1, job: 1 };
    let key_b = JobKey { tenant: 1, job: 2 };
    let key_c = JobKey { tenant: 1, job: 3 };
    let mut fleet_cfg = FleetConfig::new(cfg.clone());
    fleet_cfg.shards = 2;
    let mut fleet = FleetIngestor::new(fleet_cfg);
    fleet.register_tenant(1, u64::MAX);
    fleet.register_job(key_a, 2, 0);
    fleet.register_job(key_b, 2, 0);
    fleet.register_job(key_c, 2, 7);

    for key in [key_a, key_b, key_c] {
        let mut stgs: Vec<Stg> =
            (0..2).map(|r| looped_stg(r, 24, 1_000_000_000, 0..0)).collect();
        stgs[1] = looped_stg(1, 24, 1_000_000_000, 8..14);
        for f in job_frames(&stgs, 14, cfg.report_period, key) {
            fleet.push_encoded(&f).expect("valid frame");
        }
    }
    let (report, _) = fleet.into_report();

    assert_eq!(report.jobs.len(), 3);
    assert!(
        report.jobs.iter().all(|j| j.windows_closed > 0),
        "every job closed windows: {:?}",
        report.jobs.iter().map(|j| j.windows_closed).collect::<Vec<_>>()
    );
    // Exactly the co-located pair is flagged, and their identical slow
    // phases overlap near-fully.
    assert_eq!(report.interference.len(), 1, "findings: {:?}", report.interference);
    let f = &report.interference[0];
    assert_eq!((f.node, f.a, f.b), (0, key_a, key_b));
    assert!(f.overlap_ns > 0);
    assert!(f.overlap_frac > 0.9, "identical phases should overlap: {}", f.overlap_frac);
}
