//! Visualization (paper Fig. 2 step 7): ASCII heat maps for terminals,
//! and JSON/CSV series dumps consumed by the experiment harness.

use crate::detect::heatmap::HeatMap;
use crate::detect::region::VarianceRegion;
use serde::Serialize;

/// Shade characters from worst (left) to best performance (right).
const SHADES: &[char] = &['#', '@', '%', '+', '=', '-', ':', '.', ' '];

/// Render a heat map as ASCII art: one row per rank (`#` = slow,
/// blank = full speed, `?` = no coverage).
pub fn render_heatmap(hm: &HeatMap, max_rows: usize) -> String {
    let mut out = String::new();
    let row_step = hm.ranks.div_ceil(max_rows.max(1)).max(1);
    for rank in (0..hm.ranks).step_by(row_step) {
        out.push_str(&format!("{rank:>6} |"));
        for bin in 0..hm.bins {
            let ch = match hm.perf(rank, bin) {
                None => '?',
                Some(p) => {
                    let idx = ((p.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64).round()
                        as usize;
                    SHADES[idx]
                }
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>6} +{}\n",
        "",
        "-".repeat(hm.bins)
    ));
    out.push_str(&format!(
        "{:>6}  t0={} bin={}ns overall={:.3} coverage={:.1}%\n",
        "",
        hm.t0,
        hm.bin_ns,
        hm.overall_perf(),
        hm.coverage() * 100.0
    ));
    out
}

/// Serialise a heat map into a dense JSON object with per-cell
/// performance (null = uncovered).
pub fn heatmap_json(hm: &HeatMap) -> serde_json::Value {
    let cells: Vec<Vec<Option<f64>>> = (0..hm.ranks)
        .map(|r| (0..hm.bins).map(|b| hm.perf(r, b)).collect())
        .collect();
    serde_json::json!({
        "t0_ns": hm.t0.ns(),
        "bin_ns": hm.bin_ns,
        "bins": hm.bins,
        "ranks": hm.ranks,
        "perf": cells,
    })
}

/// A one-line textual summary of a variance region, in the style of the
/// paper's reports.
pub fn describe_region(r: &VarianceRegion) -> String {
    format!(
        "ranks {}..={} between {} and {}: mean performance {:.2}, loss {:.3}s",
        r.rank_range.0,
        r.rank_range.1,
        r.t_start,
        r.t_end,
        r.mean_perf,
        r.loss_ns * 1e-9
    )
}

/// Dump any serialisable series as a CSV with the given header.
pub fn to_csv<T: Serialize>(header: &str, rows: &[T]) -> String {
    let mut out = String::from(header);
    out.push('\n');
    for row in rows {
        let v = serde_json::to_value(row).expect("serialisable row");
        match v {
            serde_json::Value::Array(fields) => {
                let line: Vec<String> = fields.iter().map(json_scalar).collect();
                out.push_str(&line.join(","));
            }
            serde_json::Value::Object(map) => {
                let line: Vec<String> = map.values().map(json_scalar).collect();
                out.push_str(&line.join(","));
            }
            other => out.push_str(&json_scalar(&other)),
        }
        out.push('\n');
    }
    out
}

fn json_scalar(v: &serde_json::Value) -> String {
    match v {
        serde_json::Value::String(s) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::normalize::PerfPoint;
    use vapro_sim::VirtualTime;

    fn sample_map() -> HeatMap {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 8, 4);
        for r in 0..4 {
            hm.add_point(&PerfPoint {
                rank: r,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_ns(800),
                perf: if r == 2 { 0.3 } else { 1.0 },
                loss_ns: 0.0,
            });
        }
        hm
    }

    #[test]
    fn ascii_render_marks_slow_rows() {
        let s = render_heatmap(&sample_map(), 10);
        let lines: Vec<&str> = s.lines().collect();
        // Rank 2 at perf 0.3 renders a dark shade; full-speed rows are blank.
        assert!(lines[2].contains('%') || lines[2].contains('@'), "{s}");
        assert!(!lines[1].contains('%'), "{s}");
        assert!(lines[0].trim_start().starts_with('0'));
        assert!(s.contains("coverage"));
    }

    #[test]
    fn ascii_render_subsamples_rows() {
        let s = render_heatmap(&sample_map(), 2);
        // 4 ranks at max 2 rows → 2 data rows + 2 footer lines.
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn json_dump_has_cells() {
        let j = heatmap_json(&sample_map());
        assert_eq!(j["ranks"], 4);
        assert_eq!(j["bins"], 8);
        assert!(j["perf"][2][0].as_f64().unwrap() < 0.5);
    }

    #[test]
    fn region_description_is_readable() {
        let r = VarianceRegion {
            cells: vec![(2, 1)],
            rank_range: (2, 2),
            bin_range: (1, 1),
            t_start: VirtualTime::from_ns(100),
            t_end: VirtualTime::from_ns(200),
            loss_ns: 5e8,
            mean_perf: 0.4,
        };
        let s = describe_region(&r);
        assert!(s.contains("ranks 2..=2"));
        assert!(s.contains("0.40"));
        assert!(s.contains("0.500s"));
    }

    #[test]
    fn csv_of_tuples() {
        let rows = vec![(1.0, 2.0), (3.0, 4.0)];
        let csv = to_csv("a,b", &rows);
        assert_eq!(csv, "a,b\n1.0,2.0\n3.0,4.0\n");
    }
}
