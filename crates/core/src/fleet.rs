//! The sharded multi-tenant fleet ingest plane.
//!
//! One [`crate::detect::server::WindowedIngestor`] serves exactly one
//! job. Production monitoring serves a *fleet*: thousands of jobs across
//! many tenants, all shipping v3 frames (see [`crate::wire`]) into one
//! plane. The [`FleetIngestor`] scales that out in three layers:
//!
//! * **Routing** — each decoded frame carries a `(tenant_id, job_id)`
//!   stamp; a job hash picks one of N shards, so a job's frames always
//!   land on the same shard and per-job ordering is preserved.
//! * **Sharding** — each shard owns the `WindowedIngestor`s of the jobs
//!   routed to it plus a bounded frame queue. Frames are *enqueued* on
//!   the (cheap, sequential) admission path and *drained* in batches:
//!   when any queue reaches capacity, every shard drains its backlog on
//!   a worker from the rayon pool. A shard is owned by exactly one
//!   worker during a drain — the shards `Vec` is moved into the fan-out
//!   and moved back — so the hot path takes no cross-shard lock at all.
//! * **Admission** — every tenant is registered with a byte budget
//!   extending the per-ingestor `max_buffered_bytes` cap to the plane:
//!   a frame that would push its tenant's in-flight bytes (queued +
//!   buffered ahead of its jobs' watermarks) past the budget is rejected
//!   with a structured [`WireError::TenantOverBudget`], counted in that
//!   tenant's [`IngestStats`] — and *only* that tenant's: a noisy or
//!   over-budget tenant can never stall another tenant's windows.
//!
//! A single-job fleet is bit-identical to a bare `WindowedIngestor`:
//! routing and queueing only ever *reorder work between jobs*, never
//! within one, and the per-job ingestor is exactly the single-job code
//! path (property-tested in `tests/fleet_equivalence.rs`).
//!
//! [`FleetIngestor::finish`] returns a [`FleetReport`]: per-job window
//! tails and stats, per-tenant admission stats, and a first cross-job
//! **interference pass** — jobs placed on the same simulated node whose
//! detected variance regions overlap in time are reported as candidate
//! noisy-neighbour pairs, the fleet-level analogue of the paper's
//! variance-source attribution.

use crate::config::VaproConfig;
use crate::detect::server::{IngestStats, WindowReport, WindowedIngestor};
use crate::wire::{FragmentBatch, WireError, DEFAULT_TENANT};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Identity of one monitored job: the `(tenant_id, job_id)` pair a v3
/// frame carries. Pre-v3 frames map to the all-default key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobKey {
    /// Owning tenant.
    pub tenant: u32,
    /// Job within the tenant.
    pub job: u32,
}

impl JobKey {
    /// The key every pre-v3 frame routes to.
    pub fn default_job() -> JobKey {
        JobKey { tenant: DEFAULT_TENANT, job: crate::wire::DEFAULT_JOB }
    }

    /// The routing key of a decoded batch.
    pub fn of(batch: &FragmentBatch) -> JobKey {
        JobKey { tenant: batch.tenant_id, job: batch.job_id }
    }
}

/// Fleet-plane configuration. Plain fields; start from [`FleetConfig::new`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Ingest shards. Each shard drains on its own worker; jobs are
    /// hash-distributed across shards.
    pub shards: usize,
    /// Rank count for jobs first seen on the wire (explicitly registered
    /// jobs carry their own).
    pub default_nranks: usize,
    /// Heat-map bins per analysis window, passed to every job ingestor.
    pub bins_per_window: usize,
    /// The per-job analysis configuration (report period, diagnosis
    /// depth, fault-tolerance policy).
    pub vapro: VaproConfig,
    /// Frames one shard buffers before a fleet-wide drain is triggered.
    /// Batching amortises the fan-out: the admission path only enqueues.
    pub queue_capacity_frames: usize,
    /// Byte budget of the pre-registered default tenant (pre-v3 senders).
    pub default_tenant_budget_bytes: u64,
}

impl FleetConfig {
    /// A single-shard plane with an effectively unlimited default-tenant
    /// budget — the drop-in replacement for one bare `WindowedIngestor`.
    pub fn new(vapro: VaproConfig) -> FleetConfig {
        FleetConfig {
            shards: 1,
            default_nranks: 1,
            bins_per_window: 8,
            vapro,
            queue_capacity_frames: 64,
            default_tenant_budget_bytes: u64::MAX,
        }
    }
}

/// One closed window, tagged with the job it belongs to.
#[derive(Debug)]
pub struct FleetWindow {
    /// The job whose window closed.
    pub key: JobKey,
    /// The window's analysis report.
    pub report: WindowReport,
}

/// Per-tenant admission state.
#[derive(Debug)]
struct TenantState {
    budget_bytes: u64,
    /// Bytes currently in flight for the tenant: enqueued-but-undrained
    /// frames plus bytes its jobs hold ahead of their watermarks.
    in_flight_bytes: u64,
    stats: IngestStats,
}

/// One frame admitted and awaiting a drain. Its bytes were charged to
/// the tenant at admission; the charge is recomputed from the ingestors'
/// buffers after each drain.
struct Queued {
    key: JobKey,
    batch: FragmentBatch,
}

/// A `[start_ns, end_ns)` interval a detected variance region covered.
type Span = (u64, u64);

/// One job's ingestor plus the bookkeeping the fleet report needs.
struct JobState {
    ingestor: WindowedIngestor,
    node: u32,
    windows_closed: usize,
    /// Time spans of every variance region the job's closed windows
    /// detected, for the interference pass. Unmerged; normalised at
    /// finish time.
    variance_spans: Vec<Span>,
}

impl JobState {
    fn record(&mut self, reports: &[WindowReport]) {
        self.windows_closed += reports.len();
        for r in reports {
            let regions = r
                .result
                .comp_regions
                .iter()
                .chain(&r.result.comm_regions)
                .chain(&r.result.io_regions);
            for region in regions {
                let (s, e) = (region.t_start.ns(), region.t_end.ns());
                if e > s {
                    self.variance_spans.push((s, e));
                }
            }
        }
    }
}

/// One ingest shard: a bounded frame queue plus the ingestors of the
/// jobs routed here. Owned by a single worker during a drain.
#[derive(Default)]
struct Shard {
    queue: Vec<Queued>,
    jobs: BTreeMap<JobKey, JobState>,
}

impl Shard {
    /// Feed the queued frames to their job ingestors, in arrival order,
    /// collecting every window that closes.
    fn drain_queue(&mut self) -> Vec<FleetWindow> {
        let queued = std::mem::take(&mut self.queue);
        let mut out = Vec::new();
        for q in queued {
            // Enqueue registers the job, so the lookup cannot miss; a
            // missing entry would mean a routing bug, not bad input.
            let Some(job) = self.jobs.get_mut(&q.key) else {
                // vapro-lint: allow(R5, defensive assert on an impossible routing state; release continues)
                debug_assert!(false, "queued frame for unregistered job");
                continue;
            };
            let reports = job.ingestor.push(q.batch);
            job.record(&reports);
            out.extend(reports.into_iter().map(|report| FleetWindow { key: q.key, report }));
        }
        // Join the analysis stages: windows whose pipelined analysis
        // completed since the last drain are harvested here (still in
        // per-job window order), including for jobs that had no frames
        // queued this round — a drain leaves no finished report parked.
        for (&key, job) in self.jobs.iter_mut() {
            let reports = job.ingestor.poll_reports();
            if !reports.is_empty() {
                job.record(&reports);
                out.extend(reports.into_iter().map(|report| FleetWindow { key, report }));
            }
        }
        out
    }
}

/// Summary of one job in the [`FleetReport`].
#[derive(Debug)]
pub struct JobSummary {
    /// The job's identity.
    pub key: JobKey,
    /// Simulated node the job is placed on.
    pub node: u32,
    /// Windows flushed by the final cover pass (earlier windows were
    /// returned as they closed during ingestion).
    pub final_windows: Vec<WindowReport>,
    /// Windows the job closed over its whole lifetime, final flush
    /// included.
    pub windows_closed: usize,
    /// The job ingestor's admission statistics.
    pub stats: IngestStats,
    /// Peak resident fragment bytes of the job's arena over its
    /// lifetime. With watermark eviction this plateaus at O(watermark
    /// lag + open windows) per job, independent of stream length.
    pub arena_high_water_bytes: u64,
}

/// Summary of one tenant in the [`FleetReport`].
#[derive(Debug)]
pub struct TenantSummary {
    /// The tenant id.
    pub tenant: u32,
    /// Its configured admission budget, bytes.
    pub budget_bytes: u64,
    /// Plane-level admission statistics (budget rejections included).
    pub stats: IngestStats,
}

/// Two same-node jobs whose detected variance regions overlap in time —
/// a candidate noisy-neighbour pair for cross-job diagnosis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceFinding {
    /// The shared simulated node.
    pub node: u32,
    /// The pair, in key order.
    pub a: JobKey,
    /// Second job of the pair.
    pub b: JobKey,
    /// Nanoseconds both jobs spent inside detected variance regions
    /// simultaneously.
    pub overlap_ns: u64,
    /// The overlap as a fraction of the smaller job's total variance
    /// time — 1.0 means one job never varied without the other.
    pub overlap_frac: f64,
}

/// Everything the fleet knows at shutdown.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job summaries, in key order.
    pub jobs: Vec<JobSummary>,
    /// Per-tenant admission summaries, in tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Same-node jobs with time-correlated variance, strongest overlap
    /// first.
    pub interference: Vec<InterferenceFinding>,
    /// Rejections that could not be attributed to any tenant: structural
    /// decode failures and unknown-tenant frames.
    pub unattributed: IngestStats,
}

impl FleetReport {
    /// The largest per-job arena high-water mark in the plane — the
    /// fleet-level memory-bound stat the bench reports.
    pub fn arena_high_water_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.arena_high_water_bytes).max().unwrap_or(0)
    }
}

/// The sharded multi-tenant ingest plane. See the module docs.
pub struct FleetIngestor {
    cfg: FleetConfig,
    shards: Vec<Shard>,
    tenants: BTreeMap<u32, TenantState>,
    unattributed: IngestStats,
}

impl FleetIngestor {
    /// A fresh plane. The default tenant is pre-registered with
    /// `cfg.default_tenant_budget_bytes` so pre-v3 senders keep working.
    pub fn new(cfg: FleetConfig) -> FleetIngestor {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.queue_capacity_frames > 0, "need a nonzero queue capacity");
        let shards = (0..cfg.shards).map(|_| Shard::default()).collect();
        let mut fleet = FleetIngestor {
            shards,
            tenants: BTreeMap::new(),
            unattributed: IngestStats::default(),
            cfg,
        };
        fleet.register_tenant(DEFAULT_TENANT, fleet.cfg.default_tenant_budget_bytes);
        fleet
    }

    /// Register (or re-budget) a tenant. Frames from unregistered
    /// tenants are rejected with [`WireError::UnknownTenant`].
    pub fn register_tenant(&mut self, tenant: u32, budget_bytes: u64) {
        let entry = self.tenants.entry(tenant).or_insert(TenantState {
            budget_bytes,
            in_flight_bytes: 0,
            stats: IngestStats::default(),
        });
        entry.budget_bytes = budget_bytes;
    }

    /// Register a job explicitly: its rank count and simulated-node
    /// placement. Unregistered jobs of a registered tenant are created
    /// on first frame with `cfg.default_nranks` and their shard id as
    /// the node.
    pub fn register_job(&mut self, key: JobKey, nranks: usize, node: u32) {
        let shard = self.shard_of(key);
        let cfg = self.cfg.clone();
        let Some(shard) = self.shards.get_mut(shard) else {
            return; // shard_of is always in range; stay total regardless
        };
        shard.jobs.entry(key).or_insert_with(|| JobState {
            ingestor: WindowedIngestor::new(nranks, cfg.bins_per_window, cfg.vapro),
            node,
            windows_closed: 0,
            variance_spans: Vec::new(),
        });
    }

    /// The shard a job's frames are routed to: FNV-1a over the key, so
    /// placement is stable across runs and processes.
    pub fn shard_of(&self, key: JobKey) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.tenant.to_le_bytes().into_iter().chain(key.job.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.cfg.shards as u64) as usize
    }

    /// Plane-level admission statistics of one tenant.
    pub fn tenant_stats(&self, tenant: u32) -> Option<&IngestStats> {
        self.tenants.get(&tenant).map(|t| &t.stats)
    }

    /// Rejections attributable to no tenant (decode failures, unknown
    /// tenants).
    pub fn unattributed_stats(&self) -> &IngestStats {
        &self.unattributed
    }

    /// Frames enqueued across all shards, awaiting a drain.
    pub fn queued_frames(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Admit one encoded frame: decode, check the tenant's budget, and
    /// enqueue on the owning job's shard. Returns the windows closed by
    /// the batch drain this frame triggered (usually none — draining is
    /// batched). Rejections are structured errors, counted against the
    /// claiming tenant where one is known.
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<Vec<FleetWindow>, WireError> {
        let batch = match FragmentBatch::decode(bytes) {
            Ok(b) => b,
            Err(e) => {
                self.unattributed.count_decode_error(&e);
                return Err(e);
            }
        };
        self.push_batch(batch, bytes.len() as u64)
    }

    /// Admit one already-decoded batch accounting `frame_bytes` against
    /// its tenant's budget (the in-memory entry point; `push_encoded`
    /// derives the byte count from the frame itself).
    pub fn push_batch(
        &mut self,
        batch: FragmentBatch,
        frame_bytes: u64,
    ) -> Result<Vec<FleetWindow>, WireError> {
        let key = JobKey::of(&batch);
        let Some(tenant) = self.tenants.get_mut(&key.tenant) else {
            let e = WireError::UnknownTenant { tenant: key.tenant };
            self.unattributed.count_decode_error(&e);
            crate::vopr::fault_points::hit(crate::vopr::fault_points::FaultPoint::UnknownTenantReject);
            return Err(e);
        };
        let requested = tenant.in_flight_bytes.saturating_add(frame_bytes);
        if requested > tenant.budget_bytes {
            let e = WireError::TenantOverBudget {
                tenant: key.tenant,
                budget_bytes: tenant.budget_bytes,
                requested_bytes: requested,
            };
            tenant.stats.count_decode_error(&e);
            tenant.stats.over_budget_bytes += frame_bytes;
            crate::vopr::fault_points::hit(
                crate::vopr::fault_points::FaultPoint::TenantOverBudgetReject,
            );
            return Err(e);
        }
        tenant.in_flight_bytes = requested;
        tenant.stats.frames_admitted += 1;

        let shard = self.shard_of(key);
        if self.shards.get(shard).is_some_and(|s| !s.jobs.contains_key(&key)) {
            self.register_job(key, self.cfg.default_nranks, shard as u32);
        }
        let capacity = self.cfg.queue_capacity_frames;
        let full = match self.shards.get_mut(shard) {
            Some(s) => {
                s.queue.push(Queued { key, batch });
                s.queue.len() >= capacity
            }
            None => false, // shard_of is always in range; stay total regardless
        };
        if full {
            Ok(self.drain())
        } else {
            Ok(Vec::new())
        }
    }

    /// Drain every shard's backlog, independent shards in parallel, and
    /// return all windows that closed. The shards are moved into the
    /// fan-out and back — each is owned by exactly one worker, so there
    /// is no locking between them.
    pub fn drain(&mut self) -> Vec<FleetWindow> {
        if self.shards.iter().all(|s| s.queue.is_empty()) {
            return Vec::new();
        }
        let shards = std::mem::take(&mut self.shards);
        let drained: Vec<(Shard, Vec<FleetWindow>)> = shards
            .into_par_iter()
            .map(|mut s| {
                let windows = s.drain_queue();
                (s, windows)
            })
            .collect();
        let mut out = Vec::new();
        for (shard, windows) in drained {
            self.shards.push(shard);
            out.extend(windows);
        }
        self.refresh_in_flight();
        out
    }

    /// Recompute every tenant's in-flight bytes from its jobs' actual
    /// ahead-of-watermark buffers: the queues are empty after a drain,
    /// so what remains charged is what the ingestors still hold.
    fn refresh_in_flight(&mut self) {
        for t in self.tenants.values_mut() {
            t.in_flight_bytes = 0;
        }
        for shard in &self.shards {
            for (key, job) in &shard.jobs {
                if let Some(t) = self.tenants.get_mut(&key.tenant) {
                    t.in_flight_bytes =
                        t.in_flight_bytes.saturating_add(job.ingestor.buffered_ahead_bytes());
                }
            }
        }
    }

    /// Flush all queues, close every job's remaining cover, and build
    /// the fleet report (jobs, tenants, interference pass).
    pub fn finish(self) -> Vec<FleetWindow> {
        // Kept separate from `report` so callers only needing the final
        // windows don't pay for the summary; `into_report` gives both.
        self.into_report().1
    }

    /// Flush and shut down, returning the [`FleetReport`] and the
    /// windows the final flush closed (also inside the report, per job).
    pub fn into_report(mut self) -> (FleetReport, Vec<FleetWindow>) {
        let mut flushed = self.drain();

        let shards = std::mem::take(&mut self.shards);
        let finished: Vec<Vec<TaggedSummary>> = shards
            .into_par_iter()
            .map(|shard| {
                shard
                    .jobs
                    .into_iter()
                    .map(|(key, mut job)| {
                        let stats = job.ingestor.stats().clone();
                        let arena_high_water_bytes = job.ingestor.arena().high_water_bytes();
                        let final_windows = job.ingestor.finish();
                        job.windows_closed += final_windows.len();
                        // `record` needs the struct, but the ingestor is
                        // gone: fold the tail spans in directly.
                        for r in &final_windows {
                            let regions = r
                                .result
                                .comp_regions
                                .iter()
                                .chain(&r.result.comm_regions)
                                .chain(&r.result.io_regions);
                            for region in regions {
                                let (s, e) = (region.t_start.ns(), region.t_end.ns());
                                if e > s {
                                    job.variance_spans.push((s, e));
                                }
                            }
                        }
                        JobSummary {
                            key,
                            node: job.node,
                            final_windows,
                            windows_closed: job.windows_closed,
                            stats,
                            arena_high_water_bytes,
                        }
                        .with_spans(job.variance_spans)
                    })
                    .collect()
            })
            .collect();

        let mut jobs_with_spans: Vec<(JobSummary, Vec<Span>)> = finished
            .into_iter()
            .flatten()
            .map(|tagged| (tagged.summary, tagged.spans))
            .collect();
        jobs_with_spans.sort_by_key(|(j, _)| j.key);

        let interference = interference_pass(&jobs_with_spans);
        let mut jobs = Vec::with_capacity(jobs_with_spans.len());
        for (mut summary, _) in jobs_with_spans {
            flushed.extend(
                std::mem::take(&mut summary.final_windows)
                    .into_iter()
                    .map(|report| FleetWindow { key: summary.key, report }),
            );
            // The summary keeps its own copy via windows_closed; the
            // reports themselves ride out through the flushed list AND
            // stay in the summary for offline consumers.
            jobs.push(summary);
        }

        let tenants = self
            .tenants
            .iter()
            .map(|(&tenant, t)| TenantSummary {
                tenant,
                budget_bytes: t.budget_bytes,
                stats: t.stats.clone(),
            })
            .collect();

        let report = FleetReport {
            jobs,
            tenants,
            interference,
            unattributed: self.unattributed.clone(),
        };
        (report, flushed)
    }
}

/// Internal carrier pairing a summary with its variance spans through
/// the parallel finish.
struct TaggedSummary {
    summary: JobSummary,
    spans: Vec<Span>,
}

impl JobSummary {
    fn with_spans(self, spans: Vec<Span>) -> TaggedSummary {
        TaggedSummary { summary: self, spans }
    }
}

/// Merge unsorted spans into disjoint sorted intervals.
fn merge_spans(spans: &[Span]) -> Vec<Span> {
    let mut sorted: Vec<Span> = spans.to_vec();
    sorted.sort_unstable();
    let mut merged: Vec<Span> = Vec::with_capacity(sorted.len());
    for (s, e) in sorted {
        match merged.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Total overlap between two disjoint sorted interval lists, ns.
fn overlap_ns(a: &[Span], b: &[Span]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let (asn, aen) = a[i];
        let (bsn, ben) = b[j];
        let lo = asn.max(bsn);
        let hi = aen.min(ben);
        if hi > lo {
            total += hi - lo;
        }
        if aen <= ben {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Correlate variance regions between jobs sharing a simulated node:
/// for each same-node pair, the time both spent inside detected
/// variance regions, as nanoseconds and as a fraction of the smaller
/// job's variance time. Findings sorted by overlap, strongest first.
fn interference_pass(jobs: &[(JobSummary, Vec<Span>)]) -> Vec<InterferenceFinding> {
    let merged: Vec<(JobKey, u32, Vec<Span>)> = jobs
        .iter()
        .map(|(j, spans)| (j.key, j.node, merge_spans(spans)))
        .collect();
    let mut findings = Vec::new();
    for (i, (ka, na, sa)) in merged.iter().enumerate() {
        for (kb, nb, sb) in merged.iter().skip(i + 1) {
            if na != nb || sa.is_empty() || sb.is_empty() {
                continue;
            }
            let overlap = overlap_ns(sa, sb);
            if overlap == 0 {
                continue;
            }
            let total = |s: &[Span]| s.iter().map(|(a, b)| b - a).sum::<u64>();
            let denom = total(sa).min(total(sb));
            findings.push(InterferenceFinding {
                node: *na,
                a: *ka,
                b: *kb,
                overlap_ns: overlap,
                overlap_frac: if denom > 0 { overlap as f64 / denom as f64 } else { 0.0 },
            });
        }
    }
    findings.sort_by(|x, y| y.overlap_ns.cmp(&x.overlap_ns).then(x.a.cmp(&y.a)).then(x.b.cmp(&y.b)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merging_and_overlap() {
        let merged = merge_spans(&[(10, 20), (15, 30), (40, 50), (5, 10)]);
        assert_eq!(merged, vec![(5, 30), (40, 50)]);
        // Overlap of [5,30)∪[40,50) with [20,45): 10 (20..30) + 5 (40..45).
        assert_eq!(overlap_ns(&merged, &[(20, 45)]), 15);
        assert_eq!(overlap_ns(&merged, &[(30, 40)]), 0);
        assert_eq!(overlap_ns(&[], &[(0, 10)]), 0);
    }

    #[test]
    fn job_hashing_is_stable_and_spreads() {
        let cfg = FleetConfig {
            shards: 4,
            ..FleetConfig::new(VaproConfig::default())
        };
        let fleet = FleetIngestor::new(cfg);
        let mut hit = [false; 4];
        for job in 0..64 {
            let s = fleet.shard_of(JobKey { tenant: 1, job });
            assert_eq!(s, fleet.shard_of(JobKey { tenant: 1, job }), "stable");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 jobs cover all 4 shards: {hit:?}");
    }
}
