//! Variance detection (paper §3.5): per-cluster performance
//! normalisation, weighted merging across clusters, heat maps, region
//! growing, and the periodic inter-process analysis servers.

pub mod heatmap;
pub mod normalize;
pub mod pipeline;
pub mod region;
pub mod server;
pub(crate) mod stage;
pub mod window;

pub use heatmap::HeatMap;
pub use normalize::{CategorySeries, PerfPoint};
pub use pipeline::{detect, DetectionResult, RarePath};
pub use region::{grow_regions, VarianceRegion};
pub use server::{
    AnalysisServer, IngestArena, IngestStats, RankHealth, ServerPool, WindowReport,
    WindowedIngestor,
};
pub use window::{windows_covering, Window};
