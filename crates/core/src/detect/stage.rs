//! The pipelined window-analysis stage: a bounded, strictly in-order
//! hand-off between window *sealing* (snapshotting a closed window's
//! fragments into a [`ColumnarPool`] on the admission thread) and window
//! *analysis* (clustering + detection + diagnosis on stage workers).
//!
//! The stage exists so admission never serialises behind clustering:
//! `WindowedIngestor::close_ready` seals each ready window, submits it,
//! and immediately returns to draining frames while workers analyse in
//! the background. Three properties make this safe for the repo's
//! load-bearing stream ≡ one-shot bit-identity invariant:
//!
//! * **Sealing is synchronous.** The window view and its columnar
//!   refill happen on the admission thread *before* the arena evicts
//!   anything or absorbs another batch, so a sealed window's input is
//!   exactly what the inline path would have analysed.
//! * **Emission is in window order.** Every submission gets a dense
//!   sequence number; completed reports park in a reorder buffer and
//!   only the contiguous prefix is ever released. Workers may finish
//!   out of order, callers never observe it.
//! * **The stage is bounded.** At most `depth` windows are in flight;
//!   submission blocks past that, so a slow analysis stage exerts
//!   backpressure instead of queueing unboundedly.
//!
//! Worker threads recycle every finished window's [`ColumnarPool`] back
//! into the ingestor's shared scratch stack, so steady-state sealing
//! allocates no new lanes (PR 6's recycling guarantee, now across
//! threads).

use crate::columnar::ColumnarPool;
use crate::config::VaproConfig;
use crate::detect::server::{analyze_view_columnar, WindowReport};
use crate::detect::window::Window;
use crate::report::WindowCoverage;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Cap on stage worker threads. Fleet planes run one ingestor per job,
/// so per-job stages stay small and the shards provide the wide
/// parallelism; within one job, window closes arrive at most a few per
/// period and four workers already cover the half-overlap fan-out.
const MAX_WORKERS: usize = 4;

/// One sealed window travelling through the stage: the immutable
/// analysis input snapshotted at close time.
struct SealedWindow {
    /// Dense submission index; emission releases exactly this order.
    seq: u64,
    window: Window,
    /// Transport-side coverage, snapshotted when the window closed (the
    /// cumulative drop counters must reflect close time, not whenever a
    /// worker happens to run).
    coverage: WindowCoverage,
    /// Deployment width at close time. Travels per window because a
    /// rank born mid-stream widens later windows without retroactively
    /// widening ones already sealed.
    nranks: usize,
    /// The window's fragments in columnar form, owned by the task.
    pool: ColumnarPool,
}

/// A sealed window's inputs before sequence assignment — what the
/// `ReorderRelease` canary parks to force an out-of-order release.
#[cfg(feature = "vopr-canary")]
struct SealedInput {
    window: Window,
    coverage: WindowCoverage,
    nranks: usize,
    pool: ColumnarPool,
}

/// Mutable stage state behind one mutex: the task queue, the reorder
/// buffer, and the in-flight count that implements the depth bound.
#[derive(Default)]
struct StageState {
    queue: VecDeque<SealedWindow>,
    completed: BTreeMap<u64, WindowReport>,
    /// Sealed windows submitted but not yet completed (queued or
    /// running). Bounded by the configured depth.
    in_flight: usize,
    shutdown: bool,
}

/// Everything workers share with the submitting ingestor.
struct StageShared {
    state: Mutex<StageState>,
    /// Signalled when a task is queued or shutdown is flagged.
    task_ready: Condvar,
    /// Signalled when a worker completes a window: capacity freed for
    /// submitters, a result possibly available for drainers.
    window_done: Condvar,
    /// Immutable analysis context, identical to what the inline path
    /// would pass to [`analyze_view_columnar`].
    cfg: VaproConfig,
    bins: usize,
    /// The ingestor's recycled columnar scratch: finished pools return
    /// here with their lane capacity intact.
    scratch: Arc<Mutex<Vec<ColumnarPool>>>,
}

/// A bounded in-order analysis pipeline owned by one
/// [`WindowedIngestor`](crate::detect::server::WindowedIngestor).
pub(crate) struct AnalysisStage {
    shared: Arc<StageShared>,
    workers: Vec<JoinHandle<()>>,
    depth: usize,
    /// Next submission sequence number.
    next_seq: u64,
    /// Next sequence number to emit; everything below has been released.
    next_emit: u64,
    /// `ReorderRelease` canary state: a parked submission awaiting its
    /// successor, which is then sequenced *before* it — deliberately
    /// breaking the submission-order contract for the VOPR harness to
    /// catch.
    #[cfg(feature = "vopr-canary")]
    canary_parked: Option<SealedInput>,
}

impl std::fmt::Debug for AnalysisStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisStage")
            .field("depth", &self.depth)
            .field("workers", &self.workers.len())
            .field("next_seq", &self.next_seq)
            .field("next_emit", &self.next_emit)
            .finish()
    }
}

impl AnalysisStage {
    /// Spawn a stage with at most `depth` windows in flight. Worker
    /// count adapts to the host but never exceeds the depth (extra
    /// workers could never all be busy) or [`MAX_WORKERS`].
    pub(crate) fn new(
        depth: usize,
        cfg: VaproConfig,
        bins: usize,
        scratch: Arc<Mutex<Vec<ColumnarPool>>>,
    ) -> AnalysisStage {
        // vapro-lint: allow(R5, crate-internal constructor contract; callers gate on depth > 0)
        debug_assert!(depth > 0, "depth 0 means the inline path, not a stage");
        let shared = Arc::new(StageShared {
            state: Mutex::new(StageState::default()),
            task_ready: Condvar::new(),
            window_done: Condvar::new(),
            cfg,
            bins,
            scratch,
        });
        let nworkers = rayon::current_num_threads().min(depth).clamp(1, MAX_WORKERS);
        let workers = (0..nworkers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vapro-stage-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // vapro-lint: allow(R5, thread-spawn failure is unrecoverable resource exhaustion at startup)
                    .expect("spawn analysis stage worker")
            })
            .collect();
        AnalysisStage {
            shared,
            workers,
            depth,
            next_seq: 0,
            next_emit: 0,
            #[cfg(feature = "vopr-canary")]
            canary_parked: None,
        }
    }

    /// Submit one sealed window. Blocks while the stage is at depth —
    /// bounded memory beats unbounded queueing when analysis lags.
    pub(crate) fn submit(
        &mut self,
        window: Window,
        coverage: WindowCoverage,
        nranks: usize,
        pool: ColumnarPool,
    ) {
        #[cfg(feature = "vopr-canary")]
        if crate::vopr::canary::armed(crate::vopr::canary::Canary::ReorderRelease) {
            // Park every other submission and sequence it *after* its
            // successor: the stage then releases windows out of
            // submission order deterministically, regardless of worker
            // timing. The VOPR tiling and pipeline ≡ inline invariants
            // must catch the swap.
            match self.canary_parked.take() {
                None => {
                    self.canary_parked = Some(SealedInput { window, coverage, nranks, pool });
                    return;
                }
                Some(parked) => {
                    self.submit_now(window, coverage, nranks, pool);
                    self.submit_now(parked.window, parked.coverage, parked.nranks, parked.pool);
                    return;
                }
            }
        }
        self.submit_now(window, coverage, nranks, pool);
    }

    fn submit_now(
        &mut self,
        window: Window,
        coverage: WindowCoverage,
        nranks: usize,
        pool: ColumnarPool,
    ) {
        let mut state = self.shared.state.lock();
        while state.in_flight >= self.depth {
            self.shared.window_done.wait(&mut state);
        }
        state.queue.push_back(SealedWindow { seq: self.next_seq, window, coverage, nranks, pool });
        state.in_flight += 1;
        self.next_seq += 1;
        drop(state);
        self.shared.task_ready.notify_one();
    }

    /// Release every report whose predecessors have all been released —
    /// the contiguous completed prefix, in window order. Never blocks.
    pub(crate) fn take_completed(&mut self) -> Vec<WindowReport> {
        let mut state = self.shared.state.lock();
        let mut out = Vec::with_capacity(state.completed.len());
        while let Some(report) = state.completed.remove(&self.next_emit) {
            out.push(report);
            self.next_emit += 1;
        }
        out
    }

    /// Block until every submitted window has been analysed and return
    /// the remaining reports in window order. `finish` and fleet drains
    /// join the stage through here.
    pub(crate) fn drain(&mut self) -> Vec<WindowReport> {
        // A parked canary submission must flush before the join below,
        // or drain would wait forever on a sequence number never issued.
        #[cfg(feature = "vopr-canary")]
        if let Some(parked) = self.canary_parked.take() {
            self.submit_now(parked.window, parked.coverage, parked.nranks, parked.pool);
        }
        let mut state = self.shared.state.lock();
        let pending = (self.next_seq - self.next_emit) as usize;
        let mut out = Vec::with_capacity(pending);
        while self.next_emit < self.next_seq {
            match state.completed.remove(&self.next_emit) {
                Some(report) => {
                    out.push(report);
                    self.next_emit += 1;
                }
                None => self.shared.window_done.wait(&mut state),
            }
        }
        out
    }

    /// Windows submitted but not yet emitted (in flight or parked in
    /// the reorder buffer awaiting a predecessor).
    pub(crate) fn pending(&self) -> u64 {
        self.next_seq - self.next_emit
    }
}

impl Drop for AnalysisStage {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.task_ready.notify_all();
        for worker in self.workers.drain(..) {
            // A worker only panics if analysis itself panicked; the
            // report was already lost, so surfacing the join error here
            // would add nothing.
            let _ = worker.join();
        }
    }
}

/// Worker body: pop a sealed window, analyse it exactly as the inline
/// path would, recycle its pool, park the report for in-order release.
fn worker_loop(shared: &StageShared) {
    loop {
        let task = {
            let mut state = shared.state.lock();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                shared.task_ready.wait(&mut state);
            }
        };
        let report = analyze_view_columnar(
            &task.pool,
            task.window,
            task.nranks,
            shared.bins,
            &shared.cfg,
            task.coverage,
        );
        // Capacity goes back to the sealing side before the report is
        // parked: the next seal can reuse these lanes immediately.
        // vapro-lint: allow(R4, recycle stack holds at most `depth` pools; not a per-element lane build)
        shared.scratch.lock().push(task.pool);
        {
            let mut state = shared.state.lock();
            state.completed.insert(task.seq, report);
            state.in_flight -= 1;
        }
        shared.window_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reorder buffer releases only contiguous prefixes: a stage
    /// fed windows that complete out of order must still emit them in
    /// submission order.
    #[test]
    fn emission_is_in_submission_order() {
        let cfg = VaproConfig::default();
        let scratch = Arc::new(Mutex::new(Vec::new()));
        let mut stage = AnalysisStage::new(4, cfg.clone(), 8, Arc::clone(&scratch));
        let period = cfg.report_period.ns();
        for k in 0..6u64 {
            let start = k * (period / 2);
            let window = Window {
                start: vapro_sim::VirtualTime::from_ns(start),
                end: vapro_sim::VirtualTime::from_ns(start + period),
            };
            stage.submit(window, WindowCoverage::full(2), 2, ColumnarPool::new());
        }
        let reports = stage.drain();
        assert_eq!(reports.len(), 6);
        for (k, report) in reports.iter().enumerate() {
            assert_eq!(report.window.start.ns(), k as u64 * (period / 2));
        }
        assert_eq!(stage.pending(), 0);
        // Every pool came back to the scratch stack.
        assert_eq!(scratch.lock().len(), 6);
    }
}
