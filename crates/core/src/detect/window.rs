//! Overlapped sliding analysis windows (paper Fig. 8): servers analyse
//! the last reporting period's data; consecutive windows overlap by half
//! a period so results concatenate without edge artefacts.

use serde::{Deserialize, Serialize};
use vapro_sim::VirtualTime;

/// One analysis window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    /// Window start (inclusive).
    pub start: VirtualTime,
    /// Window end (exclusive).
    pub end: VirtualTime,
}

impl Window {
    /// Does `[s, e)` overlap this window?
    pub fn overlaps(&self, s: VirtualTime, e: VirtualTime) -> bool {
        s < self.end && e > self.start
    }

    /// Window length.
    pub fn len(&self) -> VirtualTime {
        self.end.saturating_since(self.start)
    }

    /// Zero-length?
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Enumerate half-overlapped windows of length `period` covering
/// `[t0, t1)`: starts advance by `period / 2`.
pub fn windows_covering(t0: VirtualTime, t1: VirtualTime, period: VirtualTime) -> Vec<Window> {
    assert!(period.ns() > 0, "zero analysis period");
    if t1 <= t0 {
        return vec![];
    }
    let step = (period.ns() / 2).max(1);
    let mut out = Vec::new();
    let mut start = t0.ns();
    loop {
        let w = Window {
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + period.ns()),
        };
        out.push(w);
        if w.end >= t1 {
            break;
        }
        start += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_tile_with_half_overlap() {
        let ws = windows_covering(
            VirtualTime::ZERO,
            VirtualTime::from_secs(30),
            VirtualTime::from_secs(15),
        );
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].start, VirtualTime::ZERO);
        assert_eq!(ws[1].start, VirtualTime::from_secs(7) + VirtualTime::from_ms(500));
        assert!(ws.last().unwrap().end >= VirtualTime::from_secs(30));
    }

    #[test]
    fn every_instant_is_covered() {
        let ws = windows_covering(
            VirtualTime::from_secs(1),
            VirtualTime::from_secs(100),
            VirtualTime::from_secs(15),
        );
        for t in (1..100).map(VirtualTime::from_secs) {
            assert!(
                ws.iter().any(|w| t >= w.start && t < w.end),
                "uncovered instant {t}"
            );
        }
    }

    #[test]
    fn interior_instants_are_covered_twice() {
        let ws = windows_covering(
            VirtualTime::ZERO,
            VirtualTime::from_secs(60),
            VirtualTime::from_secs(15),
        );
        // An instant well inside the range is in exactly two windows.
        let t = VirtualTime::from_secs(30);
        let n = ws.iter().filter(|w| t >= w.start && t < w.end).count();
        assert_eq!(n, 2);
    }

    #[test]
    fn short_run_gets_one_window() {
        let ws = windows_covering(
            VirtualTime::ZERO,
            VirtualTime::from_secs(3),
            VirtualTime::from_secs(15),
        );
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn empty_range_yields_nothing() {
        assert!(windows_covering(
            VirtualTime::from_secs(5),
            VirtualTime::from_secs(5),
            VirtualTime::from_secs(15)
        )
        .is_empty());
    }

    #[test]
    fn overlap_predicate() {
        let w = Window { start: VirtualTime::from_ns(100), end: VirtualTime::from_ns(200) };
        assert!(w.overlaps(VirtualTime::from_ns(150), VirtualTime::from_ns(250)));
        assert!(w.overlaps(VirtualTime::from_ns(0), VirtualTime::from_ns(101)));
        assert!(!w.overlaps(VirtualTime::from_ns(200), VirtualTime::from_ns(300)));
        assert!(!w.overlaps(VirtualTime::from_ns(0), VirtualTime::from_ns(100)));
    }
}
