//! The end-to-end detection pipeline: merge per-rank STGs by state key,
//! cluster each edge/vertex, normalise, build heat maps per category, and
//! grow variance regions.
//!
//! Because SPMD ranks execute the same code, fragments from the *same
//! state* on *different ranks* belong to the same clustering population —
//! which is exactly what enables the inter-process detection of §3.5 and
//! the cross-process comparisons of the HPL case study (§6.5.1).

use crate::clustering::{cluster_fragments, Cluster};
use crate::config::VaproConfig;
use crate::detect::heatmap::HeatMap;
use crate::detect::normalize::{normalize_cluster_outcome, CategorySeries};
use crate::detect::region::{grow_regions, VarianceRegion};
use crate::fragment::{Fragment, FragmentKind};
use crate::stg::{StateKey, Stg};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A rarely-executed path flagged by Algorithm 1's post-processing:
/// few executions but potentially long — the user should check whether it
/// represents abnormal behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RarePath {
    /// Label of the owning state / transition.
    pub location: String,
    /// Number of fragments.
    pub count: usize,
    /// Total time spent in them, ns.
    pub total_ns: f64,
}

/// Full detection output.
#[derive(Debug)]
pub struct DetectionResult {
    /// Heat map of computation performance.
    pub comp_map: HeatMap,
    /// Heat map of communication performance.
    pub comm_map: HeatMap,
    /// Heat map of IO performance.
    pub io_map: HeatMap,
    /// Variance regions per category, ranked by loss.
    pub comp_regions: Vec<VarianceRegion>,
    /// Communication variance regions.
    pub comm_regions: Vec<VarianceRegion>,
    /// IO variance regions.
    pub io_regions: Vec<VarianceRegion>,
    /// Rare paths flagged for user attention.
    pub rare_paths: Vec<RarePath>,
    /// The merged, normalised series (kept for diagnosis and plotting).
    pub series: CategorySeries,
    /// Detection coverage: fraction of total execution time spent inside
    /// usable fixed-workload fragments (the paper's coverage metric, §6.2).
    pub coverage: f64,
}

impl DetectionResult {
    /// Quantified total loss across computation regions, ns.
    pub fn comp_loss_ns(&self) -> f64 {
        self.comp_regions.iter().map(|r| r.loss_ns).sum()
    }

    /// The top region of a category, if any.
    pub fn top_region(&self, kind: FragmentKind) -> Option<&VarianceRegion> {
        match kind {
            FragmentKind::Computation => self.comp_regions.first(),
            FragmentKind::Communication | FragmentKind::Other => self.comm_regions.first(),
            FragmentKind::Io => self.io_regions.first(),
        }
    }
}

/// Groups of same-state fragments pooled across ranks.
pub struct MergedStg<'a> {
    /// Vertex pools keyed by state.
    pub vertices: BTreeMap<StateKey, Vec<&'a Fragment>>,
    /// Edge pools keyed by (from, to) state keys.
    pub edges: BTreeMap<(StateKey, StateKey), Vec<&'a Fragment>>,
}

/// Pool fragments of all ranks' STGs by state key.
pub fn merge_stgs<'a>(stgs: &'a [Stg]) -> MergedStg<'a> {
    let mut vertices: BTreeMap<StateKey, Vec<&Fragment>> = BTreeMap::new();
    let mut edges: BTreeMap<(StateKey, StateKey), Vec<&Fragment>> = BTreeMap::new();
    for stg in stgs {
        for v in stg.vertices() {
            if v.fragments.is_empty() {
                continue;
            }
            vertices
                .entry(v.key.clone())
                .or_default()
                .extend(v.fragments.iter());
        }
        for e in stg.edges() {
            if e.fragments.is_empty() {
                continue;
            }
            let from = stg.vertices()[e.from].key.clone();
            let to = stg.vertices()[e.to].key.clone();
            edges.entry((from, to)).or_default().extend(e.fragments.iter());
        }
    }
    MergedStg { vertices, edges }
}

/// Run detection over the per-rank STGs. `nranks` sizes the heat maps;
/// `bins` is the number of time columns.
pub fn detect(stgs: &[Stg], nranks: usize, bins: usize, cfg: &VaproConfig) -> DetectionResult {
    let merged = merge_stgs(stgs);
    let mut series = CategorySeries::default();
    let mut rare_paths = Vec::new();
    let mut covered_ns = 0.0f64;

    let handle_pool = |label: String,
                           frags: &[&Fragment],
                           series: &mut CategorySeries,
                           rare_paths: &mut Vec<RarePath>,
                           covered_ns: &mut f64| {
        let owned: Vec<Fragment> = frags.iter().map(|f| (*f).clone()).collect();
        let outcome = cluster_fragments(
            &owned,
            &cfg.proxy_counters,
            cfg.cluster_threshold,
            cfg.min_cluster_size,
        );
        for c in &outcome.usable {
            *covered_ns += cluster_time(&owned, c);
        }
        for c in &outcome.rare {
            rare_paths.push(RarePath {
                location: label.clone(),
                count: c.len(),
                total_ns: cluster_time(&owned, c),
            });
        }
        normalize_cluster_outcome(&owned, &outcome, series);
    };

    for (key, frags) in &merged.vertices {
        handle_pool(key.label(), frags, &mut series, &mut rare_paths, &mut covered_ns);
    }
    for ((from, to), frags) in &merged.edges {
        handle_pool(
            format!("{} -> {}", from.label(), to.label()),
            frags,
            &mut series,
            &mut rare_paths,
            &mut covered_ns,
        );
    }

    // Coverage: covered fragment time over total execution time (sum of
    // per-rank makespans). Grouping by the fragments' own rank ids keeps
    // the metric identical whether fragments arrive as per-rank STGs or
    // as one reassembled wire-format graph.
    let mut rank_end: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for stg in stgs {
        for f in stg
            .vertices()
            .iter()
            .flat_map(|v| v.fragments.iter())
            .chain(stg.edges().iter().flat_map(|e| e.fragments.iter()))
        {
            let e = rank_end.entry(f.rank).or_insert(0);
            *e = (*e).max(f.end.ns());
        }
    }
    let total_ns: f64 = rank_end.values().map(|&e| e as f64).sum();
    let coverage = if total_ns > 0.0 { (covered_ns / total_ns).min(1.0) } else { 0.0 };

    let build = |points: &[crate::detect::normalize::PerfPoint]| {
        if points.is_empty() {
            HeatMap::new(vapro_sim::VirtualTime::ZERO, 1, 1, nranks.max(1))
        } else {
            HeatMap::spanning(points, bins, nranks.max(1))
        }
    };
    let comp_map = build(&series.computation);
    let comm_map = build(&series.communication);
    let io_map = build(&series.io);
    let comp_regions = grow_regions(&comp_map, cfg.perf_threshold);
    let comm_regions = grow_regions(&comm_map, cfg.perf_threshold);
    let io_regions = grow_regions(&io_map, cfg.perf_threshold);

    rare_paths.sort_by(|a, b| b.total_ns.partial_cmp(&a.total_ns).expect("finite"));

    DetectionResult {
        comp_map,
        comm_map,
        io_map,
        comp_regions,
        comm_regions,
        io_regions,
        rare_paths,
        series,
        coverage,
    }
}

fn cluster_time(fragments: &[Fragment], cluster: &Cluster) -> f64 {
    cluster
        .members
        .iter()
        .map(|&m| fragments[m].duration_ns())
        .sum()
}

/// Intra-process detection (the temporal dimension of paper §3.5): one
/// rank's STG analysed on its own, yielding a 1-row heat map whose
/// regions are *time windows* in which this rank ran below its own
/// fixed-workload baseline.
pub fn detect_intra(stg: &Stg, bins: usize, cfg: &VaproConfig) -> DetectionResult {
    // Fragments keep their real rank ids; remap to row 0 so the heat map
    // has exactly one row regardless of which rank produced the STG.
    let mut remapped = Stg::new();
    let ids: Vec<_> = stg
        .vertices()
        .iter()
        .map(|v| remapped.state(v.key.clone()))
        .collect();
    for (i, v) in stg.vertices().iter().enumerate() {
        for f in &v.fragments {
            remapped.attach_vertex_fragment(ids[i], Fragment { rank: 0, ..f.clone() });
        }
    }
    for e in stg.edges() {
        let eid = remapped.transition(ids[e.from], ids[e.to]);
        for f in &e.fragments {
            remapped.attach_edge_fragment(eid, Fragment { rank: 0, ..f.clone() });
        }
    }
    detect(std::slice::from_ref(&remapped), 1, bins, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::{CallSite, VirtualTime};

    /// Build a one-rank STG: a loop of invocations at `site` with
    /// computation fragments of the given durations between them.
    fn stg_with_loop(rank: usize, durations: &[u64], ins: f64) -> Stg {
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("loop:MPI_Allreduce")));
        let _first = stg.transition(start, site);
        let selfloop = stg.transition(site, site);
        let mut t = 0u64;
        for (i, &d) in durations.iter().enumerate() {
            // Invocation fragment (constant cost 10ns).
            stg.attach_vertex_fragment(
                site,
                Fragment {
                    rank,
                    kind: FragmentKind::Communication,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + 10),
                    counters: CounterDelta::default(),
                    args: vec![64.0, 1.0],
                },
            );
            t += 10;
            // Computation fragment of duration d.
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            if i > 0 || true {
                stg.attach_edge_fragment(
                    selfloop,
                    Fragment {
                        rank,
                        kind: FragmentKind::Computation,
                        start: VirtualTime::from_ns(t),
                        end: VirtualTime::from_ns(t + d),
                        counters: c,
                        args: vec![],
                    },
                );
            }
            t += d;
        }
        stg
    }

    #[test]
    fn quiet_run_detects_nothing() {
        let stgs: Vec<Stg> = (0..4).map(|r| stg_with_loop(r, &[100; 20], 1000.0)).collect();
        let res = detect(&stgs, 4, 16, &VaproConfig::default());
        assert!(res.comp_regions.is_empty(), "{:?}", res.comp_regions);
        assert!(res.coverage > 0.5, "coverage {}", res.coverage);
    }

    #[test]
    fn slow_rank_is_detected_spatially() {
        // Rank 2 computes 2× slower with the same workload.
        let mut stgs: Vec<Stg> = (0..4).map(|r| stg_with_loop(r, &[100; 20], 1000.0)).collect();
        stgs[2] = stg_with_loop(2, &[200; 20], 1000.0);
        let res = detect(&stgs, 4, 8, &VaproConfig::default());
        assert!(!res.comp_regions.is_empty());
        assert!(res.comp_regions[0].covers_rank(2));
        assert!(!res.comp_regions[0].covers_rank(0));
        // ~50% performance in the slow region.
        assert!((res.comp_regions[0].mean_perf - 0.5).abs() < 0.1);
    }

    #[test]
    fn temporal_variance_is_detected_within_one_rank() {
        // One rank: fast for 15 iterations, slow for 5, fast again.
        let mut durs = vec![100u64; 15];
        durs.extend([300; 5]);
        durs.extend([100; 15]);
        let stgs = vec![stg_with_loop(0, &durs, 1000.0)];
        let res = detect(&stgs, 1, 35, &VaproConfig::default());
        assert!(!res.comp_regions.is_empty());
        let region = &res.comp_regions[0];
        // The slow window is in the middle of the run.
        assert!(region.bin_range.0 > 0);
        assert!(region.bin_range.1 < 34);
    }

    #[test]
    fn detect_intra_works_for_any_rank_id() {
        // The intra-process entry point: rank 1234's own STG analysed in
        // isolation still yields a usable one-row heat map.
        let mut durs = vec![100u64; 10];
        durs.extend([400; 4]);
        durs.extend([100; 10]);
        let stg = stg_with_loop(1234, &durs, 1000.0);
        let res = detect_intra(&stg, 24, &VaproConfig::default());
        assert_eq!(res.comp_map.ranks, 1);
        assert!(!res.comp_regions.is_empty());
        assert!(res.comp_regions[0].covers_rank(0));
        assert!(res.coverage > 0.5);
    }

    #[test]
    fn different_workloads_do_not_mask_variance() {
        // Alternating small/large workloads (runtime-fixed, compile-time
        // variable — the AMG situation). Each class is internally stable,
        // so no variance should be reported even though durations differ 10×.
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("amg:MPI_Waitall")));
        stg.transition(start, site);
        let e = stg.transition(site, site);
        let mut t = 0u64;
        for i in 0..40 {
            let (d, ins) = if i % 2 == 0 { (100u64, 1000.0) } else { (1000u64, 10_000.0) };
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + d),
                    counters: c,
                    args: vec![],
                },
            );
            t += d + 10;
        }
        let res = detect(&[stg], 1, 16, &VaproConfig::default());
        assert!(res.comp_regions.is_empty(), "{:?}", res.comp_regions);
    }

    #[test]
    fn rare_paths_are_reported_with_time() {
        let mut stg = stg_with_loop(0, &[100; 10], 1000.0);
        // One huge, once-executed fragment on a separate edge.
        let a = stg.state(StateKey::Site(CallSite("init:read")));
        let b = stg.state(StateKey::Site(CallSite("loop:MPI_Allreduce")));
        let e = stg.transition(a, b);
        let mut c = CounterDelta::default();
        c.put(CounterId::TotIns, 1e9);
        stg.attach_edge_fragment(
            e,
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_secs(1),
                counters: c,
                args: vec![],
            },
        );
        let res = detect(&[stg], 1, 8, &VaproConfig::default());
        assert!(!res.rare_paths.is_empty());
        assert!(res.rare_paths[0].total_ns >= 1e9);
        assert_eq!(res.rare_paths[0].count, 1);
    }

    #[test]
    fn coverage_reflects_usable_fraction() {
        // All fragments usable (same workload, ≥5 repeats).
        let stgs = vec![stg_with_loop(0, &[1000; 50], 1000.0)];
        let res = detect(&stgs, 1, 8, &VaproConfig::default());
        assert!(res.coverage > 0.8, "coverage {}", res.coverage);
        // A run with a single non-repeated fragment has no usable cluster.
        let mut stg = Stg::new();
        let s0 = stg.state(StateKey::Start);
        let s1 = stg.state(StateKey::Site(CallSite("once")));
        let e = stg.transition(s0, s1);
        stg.attach_edge_fragment(
            e,
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_ns(1000),
                counters: CounterDelta::default(),
                args: vec![],
            },
        );
        let res2 = detect(&[stg], 1, 8, &VaproConfig::default());
        assert_eq!(res2.coverage, 0.0);
    }
}
