//! The end-to-end detection pipeline: merge per-rank STGs by state key,
//! cluster each edge/vertex, normalise, build heat maps per category, and
//! grow variance regions.
//!
//! Because SPMD ranks execute the same code, fragments from the *same
//! state* on *different ranks* belong to the same clustering population —
//! which is exactly what enables the inter-process detection of §3.5 and
//! the cross-process comparisons of the HPL case study (§6.5.1).

use crate::clustering::{cluster_pool, Cluster, ClusterOutcome};
use crate::columnar::{ColumnarPool, LaneView, PoolView};
use crate::config::VaproConfig;
use crate::detect::heatmap::HeatMap;
use crate::detect::normalize::{normalize_cluster_outcome_view, CategorySeries};
use crate::detect::region::{grow_regions, VarianceRegion};
use crate::detect::window::Window;
use crate::fragment::{Fragment, FragmentKind};
use crate::intern::{Sym, SymbolTable};
use crate::stg::{StateKey, Stg};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A rarely-executed path flagged by Algorithm 1's post-processing:
/// few executions but potentially long — the user should check whether it
/// represents abnormal behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RarePath {
    /// Label of the owning state / transition.
    pub location: String,
    /// Number of fragments.
    pub count: usize,
    /// Total time spent in them, ns.
    pub total_ns: f64,
}

/// Full detection output.
#[derive(Debug)]
pub struct DetectionResult {
    /// Heat map of computation performance.
    pub comp_map: HeatMap,
    /// Heat map of communication performance.
    pub comm_map: HeatMap,
    /// Heat map of IO performance.
    pub io_map: HeatMap,
    /// Variance regions per category, ranked by loss.
    pub comp_regions: Vec<VarianceRegion>,
    /// Communication variance regions.
    pub comm_regions: Vec<VarianceRegion>,
    /// IO variance regions.
    pub io_regions: Vec<VarianceRegion>,
    /// Rare paths flagged for user attention.
    pub rare_paths: Vec<RarePath>,
    /// The merged, normalised series (kept for diagnosis and plotting).
    pub series: CategorySeries,
    /// Detection coverage: fraction of total execution time spent inside
    /// usable fixed-workload fragments (the paper's coverage metric, §6.2).
    pub coverage: f64,
    /// Cluster outcomes of the edge pools, aligned with the merged STG's
    /// `edges` (key order). Diagnosis clusters with the same parameters,
    /// so a [`crate::diagnose::DiagnosisBatch`] over the same merged view
    /// can seed from these and never re-cluster a pool.
    pub edge_clusters: Vec<ClusterOutcome>,
}

impl DetectionResult {
    /// Quantified total loss across computation regions, ns.
    pub fn comp_loss_ns(&self) -> f64 {
        self.comp_regions.iter().map(|r| r.loss_ns).sum()
    }

    /// The top region of a category, if any.
    pub fn top_region(&self, kind: FragmentKind) -> Option<&VarianceRegion> {
        match kind {
            FragmentKind::Computation => self.comp_regions.first(),
            FragmentKind::Communication | FragmentKind::Other => self.comm_regions.first(),
            FragmentKind::Io => self.io_regions.first(),
        }
    }
}

/// Groups of same-state fragments pooled across ranks, keyed by interned
/// symbols. Pools hold *borrowed* fragments — merging never clones a
/// fragment or a [`StateKey`].
///
/// Both pool lists are sorted by key order (`StateKey`'s `Ord`), so
/// iteration order — and therefore every downstream label, series and
/// rare-path ordering — matches what the previous `BTreeMap`-backed
/// representation produced.
pub struct MergedStg<'a> {
    /// The key ↔ symbol table shared by both pool lists.
    pub symbols: SymbolTable<&'a StateKey>,
    /// Vertex pools `(state, fragments)`, sorted by state key.
    pub vertices: Vec<(Sym, Vec<&'a Fragment>)>,
    /// Edge pools `((from, to), fragments)`, sorted by key pair.
    pub edges: Vec<((Sym, Sym), Vec<&'a Fragment>)>,
}

impl<'a> MergedStg<'a> {
    /// Resolve a symbol back to its state key.
    pub fn key(&self, sym: Sym) -> &'a StateKey {
        self.symbols.key(sym)
    }

    /// Iterate vertex pools as `(key, fragments)`.
    pub fn vertex_pools(&self) -> impl Iterator<Item = (&'a StateKey, &[&'a Fragment])> + '_ {
        self.vertices.iter().map(|(s, p)| (self.key(*s), p.as_slice()))
    }

    /// Iterate edge pools as `(from, to, fragments)`.
    pub fn edge_pools(
        &self,
    ) -> impl Iterator<Item = (&'a StateKey, &'a StateKey, &[&'a Fragment])> + '_ {
        self.edges
            .iter()
            .map(|((f, t), p)| (self.key(*f), self.key(*t), p.as_slice()))
    }

    /// Total fragments across all pools.
    pub fn total_fragments(&self) -> usize {
        self.vertices.iter().map(|(_, p)| p.len()).sum::<usize>()
            + self.edges.iter().map(|(_, p)| p.len()).sum::<usize>()
    }
}

/// Pool fragments of all ranks' STGs by state key.
///
/// Keys are interned once per distinct state (one hash lookup per vertex
/// per rank); edges resolve their endpoints through the precomputed
/// per-STG `StateId → Sym` map instead of cloning two keys per edge.
pub fn merge_stgs<'a>(stgs: &'a [Stg]) -> MergedStg<'a> {
    merge_stgs_filtered(stgs, |_| true)
}

/// Pool only the fragments overlapping `window` — the per-window *view*
/// of the windowed ingestion path. Pure borrows: building a view never
/// clones a [`Fragment`], unlike the old per-window STG slicing.
pub fn merge_stgs_window<'a>(stgs: &'a [Stg], window: Window) -> MergedStg<'a> {
    merge_stgs_filtered(stgs, |f| window.overlaps(f.start, f.end))
}

fn merge_stgs_filtered<'a>(
    stgs: &'a [Stg],
    keep: impl Fn(&Fragment) -> bool,
) -> MergedStg<'a> {
    let mut symbols = SymbolTable::new();
    let mut vertex_pools: Vec<Vec<&Fragment>> = Vec::new();
    let mut edge_pools: HashMap<(Sym, Sym), Vec<&Fragment>> = HashMap::new();
    for stg in stgs {
        let syms: Vec<Sym> = stg
            .vertices()
            .iter()
            .map(|v| {
                let s = symbols.intern(&v.key);
                if s as usize >= vertex_pools.len() {
                    vertex_pools.resize_with(s as usize + 1, Vec::new);
                }
                s
            })
            .collect();
        for (v, &s) in stg.vertices().iter().zip(&syms) {
            vertex_pools[s as usize].extend(v.fragments.iter().filter(|f| keep(f)));
        }
        for e in stg.edges() {
            let mut kept = e.fragments.iter().filter(|f| keep(f)).peekable();
            if kept.peek().is_some() {
                edge_pools.entry((syms[e.from], syms[e.to])).or_default().extend(kept);
            }
        }
    }
    let mut vertices: Vec<(Sym, Vec<&Fragment>)> = vertex_pools
        .into_iter()
        .enumerate()
        .filter(|(_, pool)| !pool.is_empty())
        .map(|(s, pool)| (s as Sym, pool))
        .collect();
    vertices.sort_by(|a, b| symbols.key(a.0).cmp(symbols.key(b.0)));
    let mut edges: Vec<((Sym, Sym), Vec<&Fragment>)> = edge_pools.into_iter().collect();
    edges.sort_by(|a, b| {
        (symbols.key(a.0 .0), symbols.key(a.0 .1)).cmp(&(symbols.key(b.0 .0), symbols.key(b.0 .1)))
    });
    MergedStg { symbols, vertices, edges }
}

/// One pooled location to analyse: a vertex or an edge, tagged with the
/// borrowed state key(s) the rare-path labels are built from. Shared by
/// the AoS ([`detect_merged`]) and columnar ([`detect_columnar`]) paths.
#[derive(Clone, Copy)]
enum Location<'k> {
    Vertex(&'k StateKey),
    Edge(&'k StateKey, &'k StateKey),
}

/// The per-location analysis output, accumulated sequentially in
/// location order after the (possibly parallel) fan-out.
struct LocationAnalysis {
    covered_ns: f64,
    /// `(count, total_ns)` per rare cluster; labelled during the fold.
    rare: Vec<(usize, f64)>,
    series: CategorySeries,
    /// The pool's full cluster outcome — kept for edge locations so
    /// batched diagnosis can reuse it instead of re-clustering.
    outcome: ClusterOutcome,
}

/// Cluster → rare-path → normalise chain for one location's pool. Pure
/// over its inputs, which is what makes the fan-out safe. Generic over
/// the pool representation: `&[&Fragment]` slices and columnar
/// [`LaneView`]s run the identical chain.
fn analyze_pool<P: PoolView + ?Sized>(
    pool: &P,
    cfg: &VaproConfig,
    rank_override: Option<usize>,
) -> LocationAnalysis {
    let outcome = cluster_pool(
        pool,
        &cfg.proxy_counters,
        cfg.cluster_threshold,
        cfg.min_cluster_size,
    );
    let mut covered_ns = 0.0f64;
    for c in &outcome.usable {
        covered_ns += cluster_time(pool, c);
    }
    let rare = outcome
        .rare
        .iter()
        .map(|c| (c.len(), cluster_time(pool, c)))
        .collect();
    let mut series = CategorySeries::default();
    normalize_cluster_outcome_view(pool, &outcome, &mut series, rank_override);
    LocationAnalysis { covered_ns, rare, series, outcome }
}

/// Shared body of [`detect`], [`detect_seq`] and [`detect_intra`].
fn detect_impl(
    stgs: &[Stg],
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    parallel: bool,
    rank_override: Option<usize>,
) -> DetectionResult {
    detect_merged_impl(&merge_stgs(stgs), nranks, bins, cfg, parallel, rank_override)
}

/// Run detection over pre-pooled populations — the borrow path the
/// windowed server ingestion feeds: callers build a [`MergedStg`] view
/// (e.g. with [`merge_stgs_window`] or from a decoded batch arena)
/// without cloning a single [`Fragment`], and get the same output as
/// [`detect`] over equivalent STGs.
pub fn detect_merged(
    merged: &MergedStg<'_>,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
) -> DetectionResult {
    detect_merged_impl(merged, nranks, bins, cfg, true, None)
}

/// Locations (merged vertices, then merged edges, both in key order) are
/// analysed independently — in parallel when `parallel` is set — and the
/// per-location results are folded *sequentially in location order*, so
/// the output is identical whichever path ran.
pub(crate) fn detect_merged_impl(
    merged: &MergedStg<'_>,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    parallel: bool,
    rank_override: Option<usize>,
) -> DetectionResult {
    let locations: Vec<(Location<'_>, &[&Fragment])> = merged
        .vertices
        .iter()
        .map(|(s, pool)| (Location::Vertex(merged.key(*s)), pool.as_slice()))
        .chain(merged.edges.iter().map(|((f, t), pool)| {
            (Location::Edge(merged.key(*f), merged.key(*t)), pool.as_slice())
        }))
        .collect();
    detect_locations_impl(&locations, nranks, bins, cfg, parallel, rank_override)
}

/// Run detection over a columnar pool: the same generic pipeline as
/// [`detect_merged`], fed by [`LaneView`]s instead of fragment slices.
/// Output is bit-identical to [`detect_merged`] over the AoS view the
/// pool was transposed from.
pub fn detect_columnar(
    pool: &ColumnarPool,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
) -> DetectionResult {
    detect_columnar_impl(pool, nranks, bins, cfg, true, None)
}

/// Shared body of [`detect_columnar`] (and its sequential twin used by
/// the equivalence tests).
pub(crate) fn detect_columnar_impl(
    pool: &ColumnarPool,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    parallel: bool,
    rank_override: Option<usize>,
) -> DetectionResult {
    let locations: Vec<(Location<'_>, LaneView<'_>)> = (0..pool.num_vertices())
        .map(|i| {
            let (key, view) = pool.vertex(i);
            (Location::Vertex(key), view)
        })
        .chain((0..pool.num_edges()).map(|i| {
            let (from, to, view) = pool.edge(i);
            (Location::Edge(from, to), view)
        }))
        .collect();
    detect_locations_impl(&locations, nranks, bins, cfg, parallel, rank_override)
}

/// Locations (vertices, then edges, both in key order) are analysed
/// independently — in parallel when `parallel` is set — and the
/// per-location results are folded *sequentially in location order*, so
/// the output is identical whichever path (or representation) ran.
fn detect_locations_impl<V: PoolView + Sync>(
    locations: &[(Location<'_>, V)],
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    parallel: bool,
    rank_override: Option<usize>,
) -> DetectionResult {
    // Fan out: each location's cluster → normalise chain is independent.
    // Results come back in input order either way.
    let analyses: Vec<LocationAnalysis> = if parallel && locations.len() > 1 {
        locations
            .par_iter()
            .map(|(_, pool)| analyze_pool(pool, cfg, rank_override))
            .collect()
    } else {
        locations
            .iter()
            .map(|(_, pool)| analyze_pool(pool, cfg, rank_override))
            .collect()
    };

    // Sequential in-order fold: series points, rare paths and the covered
    // time accumulate exactly as a fully sequential pass would produce
    // them. Rare-path labels are built lazily — only locations that
    // actually have rare clusters pay for label formatting.
    let mut series = CategorySeries::default();
    let mut rare_paths = Vec::new();
    let mut covered_ns = 0.0f64;
    // Vertex outcomes are dropped (diagnosis pools computation fragments,
    // which live on edges); edge outcomes are kept in edge order.
    let num_edges = locations.iter().filter(|(l, _)| matches!(l, Location::Edge(..))).count();
    let mut edge_clusters = Vec::with_capacity(num_edges);
    for ((loc, _), analysis) in locations.iter().zip(analyses) {
        covered_ns += analysis.covered_ns;
        if matches!(loc, Location::Edge(..)) {
            edge_clusters.push(analysis.outcome);
        }
        if !analysis.rare.is_empty() {
            let label = match loc {
                Location::Vertex(s) => s.label(),
                Location::Edge(f, t) => format!("{} -> {}", f.label(), t.label()),
            };
            for (count, total_ns) in analysis.rare {
                // vapro-lint: allow(R1, one owned label string per rare path in the report; rare by definition)
                rare_paths.push(RarePath { location: label.clone(), count, total_ns });
            }
        }
        series.extend(analysis.series);
    }

    // Coverage: covered fragment time over total execution time (sum of
    // per-rank makespans). Grouping by the fragments' own rank ids keeps
    // the metric identical whether fragments arrive as per-rank STGs or
    // as one reassembled wire-format graph. Every fragment is in exactly
    // one pool, so walking the pools visits the same population the old
    // STG walk did; the BTreeMap keeps the f64 summation order fixed.
    let mut rank_end: BTreeMap<usize, u64> = BTreeMap::new();
    for (_, pool) in locations.iter() {
        for i in 0..pool.len() {
            let e = rank_end.entry(rank_override.unwrap_or(pool.rank(i))).or_insert(0);
            *e = (*e).max(pool.end(i).ns());
        }
    }
    let total_ns: f64 = rank_end.values().map(|&e| e as f64).sum();
    let coverage = if total_ns > 0.0 { (covered_ns / total_ns).min(1.0) } else { 0.0 };

    let build = |points: &[crate::detect::normalize::PerfPoint]| {
        if points.is_empty() {
            HeatMap::new(vapro_sim::VirtualTime::ZERO, 1, 1, nranks.max(1))
        } else if parallel {
            // Bit-identical to the sequential fill (rank-partitioned).
            HeatMap::spanning_par(points, bins, nranks.max(1))
        } else {
            HeatMap::spanning(points, bins, nranks.max(1))
        }
    };
    let comp_map = build(&series.computation);
    let comm_map = build(&series.communication);
    let io_map = build(&series.io);
    let comp_regions = grow_regions(&comp_map, cfg.perf_threshold);
    let comm_regions = grow_regions(&comm_map, cfg.perf_threshold);
    let io_regions = grow_regions(&io_map, cfg.perf_threshold);

    rare_paths.sort_by(|a, b| b.total_ns.partial_cmp(&a.total_ns).expect("finite"));

    DetectionResult {
        comp_map,
        comm_map,
        io_map,
        comp_regions,
        comm_regions,
        io_regions,
        rare_paths,
        series,
        coverage,
        edge_clusters,
    }
}

/// Run detection over the per-rank STGs. `nranks` sizes the heat maps;
/// `bins` is the number of time columns. Locations fan out across the
/// thread pool; output is identical to [`detect_seq`].
pub fn detect(stgs: &[Stg], nranks: usize, bins: usize, cfg: &VaproConfig) -> DetectionResult {
    detect_impl(stgs, nranks, bins, cfg, true, None)
}

/// Single-threaded reference of [`detect`]: same pipeline, no fan-out.
/// Exists for the equivalence property tests and as the sequential
/// baseline of the benchmark harness.
pub fn detect_seq(stgs: &[Stg], nranks: usize, bins: usize, cfg: &VaproConfig) -> DetectionResult {
    detect_impl(stgs, nranks, bins, cfg, false, None)
}

fn cluster_time<P: PoolView + ?Sized>(pool: &P, cluster: &Cluster) -> f64 {
    cluster
        .members
        .iter()
        .map(|&m| pool.duration_ns(m))
        .sum()
}

/// Intra-process detection (the temporal dimension of paper §3.5): one
/// rank's STG analysed on its own, yielding a 1-row heat map whose
/// regions are *time windows* in which this rank ran below its own
/// fixed-workload baseline.
///
/// The rank-to-row-0 folding happens inside the pipeline (every point and
/// coverage entry takes rank 0), so no remapped copy of the STG — and no
/// `Fragment` clone — is ever built.
pub fn detect_intra(stg: &Stg, bins: usize, cfg: &VaproConfig) -> DetectionResult {
    detect_impl(std::slice::from_ref(stg), 1, bins, cfg, true, Some(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::{CallSite, VirtualTime};

    /// Build a one-rank STG: a loop of invocations at `site` with
    /// computation fragments of the given durations between them.
    fn stg_with_loop(rank: usize, durations: &[u64], ins: f64) -> Stg {
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("loop:MPI_Allreduce")));
        let _first = stg.transition(start, site);
        let selfloop = stg.transition(site, site);
        let mut t = 0u64;
        for &d in durations {
            // Invocation fragment (constant cost 10ns).
            stg.attach_vertex_fragment(
                site,
                Fragment {
                    rank,
                    kind: FragmentKind::Communication,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + 10),
                    counters: CounterDelta::default(),
                    args: vec![64.0, 1.0],
                },
            );
            t += 10;
            // Computation fragment of duration d.
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            stg.attach_edge_fragment(
                selfloop,
                Fragment {
                    rank,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + d),
                    counters: c,
                    args: vec![],
                },
            );
            t += d;
        }
        stg
    }

    #[test]
    fn quiet_run_detects_nothing() {
        let stgs: Vec<Stg> = (0..4).map(|r| stg_with_loop(r, &[100; 20], 1000.0)).collect();
        let res = detect(&stgs, 4, 16, &VaproConfig::default());
        assert!(res.comp_regions.is_empty(), "{:?}", res.comp_regions);
        assert!(res.coverage > 0.5, "coverage {}", res.coverage);
    }

    #[test]
    fn slow_rank_is_detected_spatially() {
        // Rank 2 computes 2× slower with the same workload.
        let mut stgs: Vec<Stg> = (0..4).map(|r| stg_with_loop(r, &[100; 20], 1000.0)).collect();
        stgs[2] = stg_with_loop(2, &[200; 20], 1000.0);
        let res = detect(&stgs, 4, 8, &VaproConfig::default());
        assert!(!res.comp_regions.is_empty());
        assert!(res.comp_regions[0].covers_rank(2));
        assert!(!res.comp_regions[0].covers_rank(0));
        // ~50% performance in the slow region.
        assert!((res.comp_regions[0].mean_perf - 0.5).abs() < 0.1);
    }

    #[test]
    fn temporal_variance_is_detected_within_one_rank() {
        // One rank: fast for 15 iterations, slow for 5, fast again.
        let mut durs = vec![100u64; 15];
        durs.extend([300; 5]);
        durs.extend([100; 15]);
        let stgs = vec![stg_with_loop(0, &durs, 1000.0)];
        let res = detect(&stgs, 1, 35, &VaproConfig::default());
        assert!(!res.comp_regions.is_empty());
        let region = &res.comp_regions[0];
        // The slow window is in the middle of the run.
        assert!(region.bin_range.0 > 0);
        assert!(region.bin_range.1 < 34);
    }

    #[test]
    fn detect_intra_works_for_any_rank_id() {
        // The intra-process entry point: rank 1234's own STG analysed in
        // isolation still yields a usable one-row heat map.
        let mut durs = vec![100u64; 10];
        durs.extend([400; 4]);
        durs.extend([100; 10]);
        let stg = stg_with_loop(1234, &durs, 1000.0);
        let res = detect_intra(&stg, 24, &VaproConfig::default());
        assert_eq!(res.comp_map.ranks, 1);
        assert!(!res.comp_regions.is_empty());
        assert!(res.comp_regions[0].covers_rank(0));
        assert!(res.coverage > 0.5);
    }

    #[test]
    fn different_workloads_do_not_mask_variance() {
        // Alternating small/large workloads (runtime-fixed, compile-time
        // variable — the AMG situation). Each class is internally stable,
        // so no variance should be reported even though durations differ 10×.
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("amg:MPI_Waitall")));
        stg.transition(start, site);
        let e = stg.transition(site, site);
        let mut t = 0u64;
        for i in 0..40 {
            let (d, ins) = if i % 2 == 0 { (100u64, 1000.0) } else { (1000u64, 10_000.0) };
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + d),
                    counters: c,
                    args: vec![],
                },
            );
            t += d + 10;
        }
        let res = detect(&[stg], 1, 16, &VaproConfig::default());
        assert!(res.comp_regions.is_empty(), "{:?}", res.comp_regions);
    }

    #[test]
    fn rare_paths_are_reported_with_time() {
        let mut stg = stg_with_loop(0, &[100; 10], 1000.0);
        // One huge, once-executed fragment on a separate edge.
        let a = stg.state(StateKey::Site(CallSite("init:read")));
        let b = stg.state(StateKey::Site(CallSite("loop:MPI_Allreduce")));
        let e = stg.transition(a, b);
        let mut c = CounterDelta::default();
        c.put(CounterId::TotIns, 1e9);
        stg.attach_edge_fragment(
            e,
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_secs(1),
                counters: c,
                args: vec![],
            },
        );
        let res = detect(&[stg], 1, 8, &VaproConfig::default());
        assert!(!res.rare_paths.is_empty());
        assert!(res.rare_paths[0].total_ns >= 1e9);
        assert_eq!(res.rare_paths[0].count, 1);
    }

    #[test]
    fn parallel_and_sequential_paths_are_identical() {
        let mut stgs: Vec<Stg> = (0..4).map(|r| stg_with_loop(r, &[100; 20], 1000.0)).collect();
        stgs[1] = stg_with_loop(1, &[250; 20], 1000.0);
        let cfg = VaproConfig::default();
        let par = detect(&stgs, 4, 16, &cfg);
        let seq = detect_seq(&stgs, 4, 16, &cfg);
        assert_eq!(par.series, seq.series);
        assert_eq!(par.rare_paths, seq.rare_paths);
        assert_eq!(par.comp_map, seq.comp_map);
        assert_eq!(par.comm_map, seq.comm_map);
        assert_eq!(par.io_map, seq.io_map);
        assert_eq!(par.comp_regions, seq.comp_regions);
        assert_eq!(par.comm_regions, seq.comm_regions);
        assert_eq!(par.io_regions, seq.io_regions);
        assert_eq!(par.coverage.to_bits(), seq.coverage.to_bits());
        assert_eq!(par.edge_clusters, seq.edge_clusters);
        // One outcome per merged edge pool, in edge order.
        assert_eq!(par.edge_clusters.len(), merge_stgs(&stgs).edges.len());
    }

    #[test]
    fn merged_pools_are_sorted_by_state_key() {
        let stgs: Vec<Stg> = (0..3).map(|r| stg_with_loop(r, &[100; 4], 1000.0)).collect();
        let merged = merge_stgs(&stgs);
        let vkeys: Vec<_> = merged.vertex_pools().map(|(k, _)| k.clone()).collect();
        let mut sorted = vkeys.clone();
        sorted.sort();
        assert_eq!(vkeys, sorted);
        let ekeys: Vec<_> = merged
            .edge_pools()
            .map(|(f, t, _)| (f.clone(), t.clone()))
            .collect();
        let mut esorted = ekeys.clone();
        esorted.sort();
        assert_eq!(ekeys, esorted);
        // Cross-rank pooling: each vertex pool holds all 3 ranks' fragments.
        for (_, pool) in merged.vertex_pools() {
            assert_eq!(pool.len(), 3 * 4);
        }
    }

    #[test]
    fn coverage_reflects_usable_fraction() {
        // All fragments usable (same workload, ≥5 repeats).
        let stgs = vec![stg_with_loop(0, &[1000; 50], 1000.0)];
        let res = detect(&stgs, 1, 8, &VaproConfig::default());
        assert!(res.coverage > 0.8, "coverage {}", res.coverage);
        // A run with a single non-repeated fragment has no usable cluster.
        let mut stg = Stg::new();
        let s0 = stg.state(StateKey::Start);
        let s1 = stg.state(StateKey::Site(CallSite("once")));
        let e = stg.transition(s0, s1);
        stg.attach_edge_fragment(
            e,
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_ns(1000),
                counters: CounterDelta::default(),
                args: vec![],
            },
        );
        let res2 = detect(&[stg], 1, 8, &VaproConfig::default());
        assert_eq!(res2.coverage, 0.0);
    }
}
