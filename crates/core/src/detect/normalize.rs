//! Per-cluster performance normalisation and cross-cluster merging
//! (paper §3.5, Fig. 7).
//!
//! Inside one fixed-workload cluster, the fastest fragment defines
//! performance 1.0 and every other fragment scores
//! `min_duration / duration` ∈ (0, 1]. Different clusters — different
//! workloads — are normalised separately and then *merged* into one
//! per-category series ("weighted equalization" in Fig. 2): each fragment
//! becomes a time-spanning point weighted by its duration, so long
//! fragments dominate bins the way they dominate real time.

use crate::clustering::ClusterOutcome;
use crate::columnar::PoolView;
use crate::fragment::{Fragment, FragmentKind};
use serde::{Deserialize, Serialize};
use vapro_sim::VirtualTime;

/// One normalised observation: a fragment's span and its performance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Originating rank.
    pub rank: usize,
    /// Fragment start.
    pub start: VirtualTime,
    /// Fragment end.
    pub end: VirtualTime,
    /// Normalised performance in (0, 1].
    pub perf: f64,
    /// Excess time versus the cluster's fastest fragment, ns — the
    /// quantified performance loss this fragment represents.
    pub loss_ns: f64,
}

/// Normalised series per reporting category (the paper reports
/// computation, network and IO separately).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategorySeries {
    /// Computation points (STG edges).
    pub computation: Vec<PerfPoint>,
    /// Communication points (comm vertices).
    pub communication: Vec<PerfPoint>,
    /// IO points (IO vertices).
    pub io: Vec<PerfPoint>,
}

impl CategorySeries {
    /// Append another series.
    pub fn extend(&mut self, other: CategorySeries) {
        self.computation.extend(other.computation);
        self.communication.extend(other.communication);
        self.io.extend(other.io);
    }

    /// The series for one category.
    pub fn of(&self, kind: FragmentKind) -> &[PerfPoint] {
        match kind {
            FragmentKind::Computation => &self.computation,
            FragmentKind::Communication | FragmentKind::Other => &self.communication,
            FragmentKind::Io => &self.io,
        }
    }

    /// Total points across categories.
    pub fn len(&self) -> usize {
        self.computation.len() + self.communication.len() + self.io.len()
    }

    /// No points at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Normalise the borrowed fragments of one STG edge/vertex given its
/// clustering. Only usable clusters contribute (rare ones go to the
/// rare-path report). Appends into `out` according to each fragment's
/// kind. `rank_override` replaces every point's rank (the intra-process
/// path folds a single rank's STG onto heat-map row 0 without rebuilding
/// the graph).
pub fn normalize_cluster_outcome_refs(
    fragments: &[&Fragment],
    outcome: &ClusterOutcome,
    out: &mut CategorySeries,
    rank_override: Option<usize>,
) {
    normalize_cluster_outcome_view(fragments, outcome, out, rank_override)
}

/// Representation-generic form of [`normalize_cluster_outcome_refs`]:
/// the same pass over any [`PoolView`] — AoS fragment slices and
/// columnar lane views normalise through identical arithmetic, in
/// identical order, so their outputs are bit-identical.
pub fn normalize_cluster_outcome_view<P: PoolView + ?Sized>(
    pool: &P,
    outcome: &ClusterOutcome,
    out: &mut CategorySeries,
    rank_override: Option<usize>,
) {
    for cluster in &outcome.usable {
        // The fastest fragment in the cluster is the benchmark.
        let min_dur = cluster
            .members
            .iter()
            .map(|&m| pool.duration_ns(m))
            .fold(f64::INFINITY, f64::min);
        if !min_dur.is_finite() {
            continue;
        }
        for &m in &cluster.members {
            let dur = pool.duration_ns(m);
            // Zero-duration fragments carry no performance signal.
            if dur <= 0.0 {
                continue;
            }
            let perf = if min_dur <= 0.0 { 1.0 } else { (min_dur / dur).min(1.0) };
            let point = PerfPoint {
                rank: rank_override.unwrap_or(pool.rank(m)),
                start: pool.start(m),
                end: pool.end(m),
                perf,
                loss_ns: (dur - min_dur).max(0.0),
            };
            match pool.kind(m) {
                FragmentKind::Computation => out.computation.push(point),
                FragmentKind::Communication | FragmentKind::Other => {
                    out.communication.push(point)
                }
                FragmentKind::Io => out.io.push(point),
            }
        }
    }
}

/// Normalise owned fragments — see [`normalize_cluster_outcome_refs`].
pub fn normalize_cluster_outcome(
    fragments: &[Fragment],
    outcome: &ClusterOutcome,
    out: &mut CategorySeries,
) {
    let refs: Vec<&Fragment> = fragments.iter().collect();
    normalize_cluster_outcome_refs(&refs, outcome, out, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_fragments;
    use crate::fragment::DEFAULT_PROXY;
    use vapro_pmu::{CounterDelta, CounterId};

    fn frag(kind: FragmentKind, rank: usize, start: u64, dur: u64, ins: f64) -> Fragment {
        let mut counters = CounterDelta::default();
        counters.put(CounterId::TotIns, ins);
        Fragment {
            rank,
            kind,
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + dur),
            counters,
            args: vec![ins],
        }
    }

    #[test]
    fn fastest_fragment_scores_one() {
        let frags: Vec<Fragment> = (0..6)
            .map(|i| frag(FragmentKind::Computation, 0, i * 100, 50 + i * 10, 1000.0))
            .collect();
        let outcome = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let mut out = CategorySeries::default();
        normalize_cluster_outcome(&frags, &outcome, &mut out);
        assert_eq!(out.computation.len(), 6);
        let best = out
            .computation
            .iter()
            .map(|p| p.perf)
            .fold(0.0, f64::max);
        assert!((best - 1.0).abs() < 1e-12);
        // The slowest: 50/100.
        let worst = out
            .computation
            .iter()
            .map(|p| p.perf)
            .fold(f64::INFINITY, f64::min);
        assert!((worst - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loss_is_excess_over_fastest() {
        let frags = vec![
            frag(FragmentKind::Computation, 0, 0, 100, 1000.0),
            frag(FragmentKind::Computation, 0, 200, 100, 1000.0),
            frag(FragmentKind::Computation, 0, 400, 100, 1000.0),
            frag(FragmentKind::Computation, 0, 600, 100, 1000.0),
            frag(FragmentKind::Computation, 0, 800, 250, 1000.0),
        ];
        let outcome = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let mut out = CategorySeries::default();
        normalize_cluster_outcome(&frags, &outcome, &mut out);
        let total_loss: f64 = out.computation.iter().map(|p| p.loss_ns).sum();
        assert!((total_loss - 150.0).abs() < 1e-9);
    }

    #[test]
    fn clusters_normalize_independently() {
        // Two workloads with very different base durations; each cluster's
        // fastest is 1.0 even though absolute times differ 10×.
        let mut frags = vec![];
        for i in 0..5 {
            frags.push(frag(FragmentKind::Computation, 0, i * 1000, 100, 1000.0));
        }
        for i in 0..5 {
            frags.push(frag(FragmentKind::Computation, 0, 5000 + i * 1000, 1000, 9000.0));
        }
        let outcome = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        assert_eq!(outcome.usable.len(), 2);
        let mut out = CategorySeries::default();
        normalize_cluster_outcome(&frags, &outcome, &mut out);
        let perfect = out.computation.iter().filter(|p| p.perf > 0.999).count();
        assert_eq!(perfect, 10);
    }

    #[test]
    fn categories_route_by_kind() {
        let frags = vec![
            frag(FragmentKind::Communication, 0, 0, 10, 64.0),
            frag(FragmentKind::Communication, 0, 20, 10, 64.0),
            frag(FragmentKind::Communication, 0, 40, 10, 64.0),
            frag(FragmentKind::Communication, 0, 60, 10, 64.0),
            frag(FragmentKind::Communication, 0, 80, 10, 64.0),
            frag(FragmentKind::Io, 1, 0, 10, 512.0),
            frag(FragmentKind::Io, 1, 20, 10, 512.0),
            frag(FragmentKind::Io, 1, 40, 10, 512.0),
            frag(FragmentKind::Io, 1, 60, 10, 512.0),
            frag(FragmentKind::Io, 1, 80, 10, 512.0),
        ];
        let outcome = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let mut out = CategorySeries::default();
        normalize_cluster_outcome(&frags, &outcome, &mut out);
        assert_eq!(out.communication.len(), 5);
        assert_eq!(out.io.len(), 5);
        assert!(out.computation.is_empty());
    }

    #[test]
    fn rare_clusters_do_not_contribute_points() {
        let mut frags: Vec<Fragment> = (0..8)
            .map(|i| frag(FragmentKind::Computation, 0, i * 100, 50, 1000.0))
            .collect();
        frags.push(frag(FragmentKind::Computation, 0, 900, 400, 50_000.0));
        let outcome = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let mut out = CategorySeries::default();
        normalize_cluster_outcome(&frags, &outcome, &mut out);
        assert_eq!(out.computation.len(), 8);
    }
}
