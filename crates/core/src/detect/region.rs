//! Variance locating by region growing (paper §3.5): contiguous
//! heat-map regions whose normalised performance falls below a threshold
//! (0.85) are possible variance, reported ranked by their impact on
//! performance.

use crate::detect::heatmap::HeatMap;
use serde::{Deserialize, Serialize};
use vapro_sim::VirtualTime;

/// One detected variance region on the heat map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceRegion {
    /// Cells in the region as `(rank, bin)` pairs.
    pub cells: Vec<(usize, usize)>,
    /// Inclusive rank range covered.
    pub rank_range: (usize, usize),
    /// Inclusive bin range covered.
    pub bin_range: (usize, usize),
    /// Start time of the region.
    pub t_start: VirtualTime,
    /// End time of the region.
    pub t_end: VirtualTime,
    /// Total quantified performance loss attributed to the region, ns.
    pub loss_ns: f64,
    /// Weighted mean normalised performance inside the region.
    pub mean_perf: f64,
}

impl VarianceRegion {
    /// Number of cells.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Does the region include this rank? O(1): a 4-connected region's
    /// rank projection is a contiguous interval (any two cells are
    /// linked by unit rank/bin steps through the region), so covering a
    /// rank is exactly containment in `rank_range`.
    pub fn covers_rank(&self, rank: usize) -> bool {
        self.rank_range.0 <= rank && rank <= self.rank_range.1
    }
}

/// Grow regions of cells with `perf < threshold` using 4-connectivity
/// (adjacent ranks, adjacent bins). Returns regions sorted by descending
/// loss — the order the paper reports them to users.
pub fn grow_regions(hm: &HeatMap, threshold: f64) -> Vec<VarianceRegion> {
    let mut visited = vec![false; hm.ranks * hm.bins];
    let below = |r: usize, b: usize| hm.perf(r, b).is_some_and(|p| p < threshold);
    let mut regions = Vec::new();

    for rank in 0..hm.ranks {
        for bin in 0..hm.bins {
            let start_idx = rank * hm.bins + bin;
            if visited[start_idx] || !below(rank, bin) {
                continue;
            }
            // DFS flood fill (`queue` is a stack — `Vec::pop` takes the
            // most recently pushed cell). Kept depth-first on purpose:
            // the visit order fixes `cells` order, and with it the f64
            // summation order of `loss_ns` below, which downstream
            // region ranking depends on bit-for-bit.
            let mut cells = Vec::new();
            let mut queue = vec![(rank, bin)];
            visited[start_idx] = true;
            while let Some((r, b)) = queue.pop() {
                cells.push((r, b));
                let mut try_push = |nr: usize, nb: usize, visited: &mut Vec<bool>| {
                    let i = nr * hm.bins + nb;
                    if !visited[i] && below(nr, nb) {
                        visited[i] = true;
                        queue.push((nr, nb));
                    }
                };
                if r > 0 {
                    try_push(r - 1, b, &mut visited);
                }
                if r + 1 < hm.ranks {
                    try_push(r + 1, b, &mut visited);
                }
                if b > 0 {
                    try_push(r, b - 1, &mut visited);
                }
                if b + 1 < hm.bins {
                    try_push(r, b + 1, &mut visited);
                }
            }

            let rank_lo = cells.iter().map(|c| c.0).min().expect("nonempty");
            let rank_hi = cells.iter().map(|c| c.0).max().expect("nonempty");
            let bin_lo = cells.iter().map(|c| c.1).min().expect("nonempty");
            let bin_hi = cells.iter().map(|c| c.1).max().expect("nonempty");
            let loss_ns: f64 = cells.iter().map(|&(r, b)| hm.loss_ns(r, b)).sum();
            let weight: f64 = cells.iter().map(|&(r, b)| hm.weight_of(r, b)).sum();
            let wp: f64 = cells
                .iter()
                .map(|&(r, b)| hm.weight_of(r, b) * hm.perf(r, b).unwrap_or(1.0))
                .sum();
            regions.push(VarianceRegion {
                rank_range: (rank_lo, rank_hi),
                bin_range: (bin_lo, bin_hi),
                t_start: hm.t0 + VirtualTime::from_ns(bin_lo as u64 * hm.bin_ns),
                t_end: hm.t0 + VirtualTime::from_ns((bin_hi as u64 + 1) * hm.bin_ns),
                loss_ns,
                mean_perf: if weight > 0.0 { wp / weight } else { 1.0 },
                cells,
            });
        }
    }

    regions.sort_by(|a, b| b.loss_ns.total_cmp(&a.loss_ns));
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::normalize::PerfPoint;

    fn map_with(points: &[(usize, u64, u64, f64)]) -> HeatMap {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 10, 4);
        for &(rank, start, end, perf) in points {
            hm.add_point(&PerfPoint {
                rank,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(end),
                perf,
                loss_ns: (end - start) as f64 * (1.0 / perf - 1.0),
            });
        }
        hm
    }

    #[test]
    fn quiet_map_has_no_regions() {
        let pts: Vec<_> = (0..4).map(|r| (r, 0, 1000, 1.0)).collect();
        let hm = map_with(&pts);
        assert!(grow_regions(&hm, 0.85).is_empty());
    }

    #[test]
    fn one_slow_cell_is_one_region() {
        let mut pts: Vec<_> = (0..4).map(|r| (r, 0, 1000, 1.0)).collect();
        pts.push((2, 300, 400, 0.4)); // rank 2, bin 3
        let hm = map_with(&pts);
        let regions = grow_regions(&hm, 0.85);
        assert_eq!(regions.len(), 1);
        assert!(regions[0].covers_rank(2));
        assert_eq!(regions[0].bin_range, (3, 3));
        assert!(regions[0].mean_perf < 0.85);
    }

    #[test]
    fn adjacent_slow_cells_merge() {
        // Ranks 1-2, bins 2-5 all slow: one rectangular region.
        let mut pts = vec![];
        for r in 0..4 {
            pts.push((r, 0, 1000, 1.0));
        }
        for r in 1..3usize {
            pts.push((r, 200, 600, 0.3));
        }
        let hm = map_with(&pts);
        let regions = grow_regions(&hm, 0.85);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].rank_range, (1, 2));
        assert_eq!(regions[0].bin_range, (2, 5));
        assert_eq!(regions[0].size(), 8);
    }

    #[test]
    fn disconnected_regions_stay_separate_and_rank_by_loss() {
        let mut pts = vec![];
        for r in 0..4 {
            pts.push((r, 0, 1000, 1.0));
        }
        pts.push((0, 100, 200, 0.5)); // small loss
        pts.push((3, 600, 900, 0.2)); // big loss
        let hm = map_with(&pts);
        let regions = grow_regions(&hm, 0.85);
        assert_eq!(regions.len(), 2);
        assert!(regions[0].loss_ns > regions[1].loss_ns);
        assert!(regions[0].covers_rank(3));
    }

    #[test]
    fn uncovered_cells_break_connectivity() {
        // Two slow spans on the same rank separated by an uncovered gap.
        let pts = vec![(0usize, 0u64, 200u64, 0.5f64), (0, 800, 1000, 0.5)];
        let hm = map_with(&pts);
        let regions = grow_regions(&hm, 0.85);
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn covers_rank_agrees_with_the_cell_scan() {
        // The O(1) rank_range containment must equal the old O(cells)
        // scan on every grown region — incl. an L-shaped one.
        let mut pts = vec![];
        for r in 0..4 {
            pts.push((r, 0, 1000, 1.0));
        }
        pts.push((1, 200, 500, 0.3));
        pts.push((2, 200, 300, 0.3)); // L: rank 2 only shares bin 2
        pts.push((3, 700, 800, 0.4)); // separate region on rank 3
        let hm = map_with(&pts);
        for region in grow_regions(&hm, 0.85) {
            for rank in 0..4 {
                assert_eq!(
                    region.covers_rank(rank),
                    region.cells.iter().any(|&(r, _)| r == rank),
                    "rank {rank} in {region:?}"
                );
            }
        }
    }

    #[test]
    fn threshold_is_strict() {
        let pts = vec![(0usize, 0u64, 100u64, 0.85f64)];
        let hm = map_with(&pts);
        assert!(grow_regions(&hm, 0.85).is_empty());
        assert_eq!(grow_regions(&hm, 0.86).len(), 1);
    }
}
