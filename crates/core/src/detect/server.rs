//! The analysis servers (paper §3.5 Fig. 8 and §5): dedicated server
//! processes periodically collect performance data from application
//! processes and analyse the last window; multiple servers split the
//! client population evenly for load balance (one server per 256 clients
//! in the paper's deployment, 0.4 % resource overhead).
//!
//! Here a server consumes per-rank fragment batches in virtual-time
//! order — emulating the periodic shipping — and produces one incremental
//! detection result per overlapped window. Window analyses are
//! independent, so the pool runs them on rayon.

use crate::config::VaproConfig;
use crate::detect::pipeline::{detect, DetectionResult};
use crate::detect::window::{windows_covering, Window};
use crate::fragment::Fragment;
use crate::stg::Stg;
use rayon::prelude::*;
use vapro_sim::VirtualTime;

/// One analysis server owning a subset of client ranks.
#[derive(Debug)]
pub struct AnalysisServer {
    /// Server index in the pool.
    pub id: usize,
    /// The ranks this server serves.
    pub clients: Vec<usize>,
}

impl AnalysisServer {
    /// Bytes/sec of client data this server ingests given per-client
    /// rates — used for the storage/throughput accounting of §6.2.
    pub fn ingest_rate(&self, bytes_per_client_per_sec: f64) -> f64 {
        self.clients.len() as f64 * bytes_per_client_per_sec
    }
}

/// A pool of servers with clients assigned round-robin (the paper's
/// "equally assigning parallel processes to different servers").
#[derive(Debug)]
pub struct ServerPool {
    /// The servers.
    pub servers: Vec<AnalysisServer>,
}

/// The detection output of one analysis window.
pub struct WindowReport {
    /// The analysed window.
    pub window: Window,
    /// Detection over the fragments inside the window.
    pub result: DetectionResult,
}

impl ServerPool {
    /// Distribute `nranks` clients over `nservers` servers.
    pub fn new(nservers: usize, nranks: usize) -> Self {
        assert!(nservers > 0, "need at least one server");
        let mut servers: Vec<AnalysisServer> = (0..nservers)
            .map(|id| AnalysisServer { id, clients: Vec::new() })
            .collect();
        for rank in 0..nranks {
            servers[rank % nservers].clients.push(rank);
        }
        ServerPool { servers }
    }

    /// Server resource overhead relative to the application: one server
    /// process per `clients` application processes.
    pub fn resource_overhead(&self) -> f64 {
        let clients: usize = self.servers.iter().map(|s| s.clients.len()).sum();
        if clients == 0 {
            0.0
        } else {
            self.servers.len() as f64 / clients as f64
        }
    }

    /// Largest client-count imbalance between servers (0 or 1 for
    /// round-robin).
    pub fn imbalance(&self) -> usize {
        let max = self.servers.iter().map(|s| s.clients.len()).max().unwrap_or(0);
        let min = self.servers.iter().map(|s| s.clients.len()).min().unwrap_or(0);
        max - min
    }

    /// Analyse one window's shipped [`FragmentBatch`]es — the wire-format
    /// entry point a networked deployment would use: clients serialise
    /// batches ([`crate::wire::FragmentBatch::to_bytes`]), the server
    /// reassembles the per-state pools and runs detection on them.
    pub fn analyze_batches(
        &self,
        batches: &[crate::wire::FragmentBatch],
        nranks: usize,
        bins: usize,
        cfg: &VaproConfig,
    ) -> crate::detect::pipeline::DetectionResult {
        use crate::stg::StateKey;
        let pools = crate::wire::ReassembledPools::from_batches(batches);
        // Rebuild a single label-keyed STG holding the pooled fragments.
        // Labels are opaque to detection (only identity matters), so a
        // leaked interned string per distinct label is the honest cost of
        // crossing the serialisation boundary back into `CallSite` keys.
        let mut stg = Stg::new();
        for (label, frags) in pools.vertices {
            let site: &'static str = Box::leak(label.into_boxed_str());
            let id = stg.state(StateKey::Site(vapro_sim::CallSite(site)));
            for f in frags {
                stg.attach_vertex_fragment(id, f);
            }
        }
        for (label, frags) in pools.edges {
            // Edge labels are "from -> to": reconstruct the two states.
            let (from_l, to_l) =
                label.split_once(" -> ").unwrap_or((label.as_str(), label.as_str()));
            let from_site: &'static str = Box::leak(from_l.to_string().into_boxed_str());
            let to_site: &'static str = Box::leak(to_l.to_string().into_boxed_str());
            let from = stg.state(StateKey::Site(vapro_sim::CallSite(from_site)));
            let to = stg.state(StateKey::Site(vapro_sim::CallSite(to_site)));
            let e = stg.transition(from, to);
            for f in frags {
                stg.attach_edge_fragment(e, f);
            }
        }
        detect(std::slice::from_ref(&stg), nranks, bins, cfg)
    }

    /// Analyse the run in overlapped windows of `cfg.report_period`:
    /// each window's fragments (from every rank's STG) are detected
    /// independently; windows run in parallel.
    pub fn analyze_windows(
        &self,
        stgs: &[Stg],
        nranks: usize,
        bins_per_window: usize,
        cfg: &VaproConfig,
    ) -> Vec<WindowReport> {
        let t_end = stgs
            .iter()
            .flat_map(|s| {
                s.vertices()
                    .iter()
                    .flat_map(|v| v.fragments.iter())
                    .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
            })
            .map(|f| f.end)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let windows = windows_covering(VirtualTime::ZERO, t_end, cfg.report_period);

        windows
            .into_par_iter()
            .map(|window| {
                let sliced: Vec<Stg> =
                    stgs.iter().map(|s| slice_stg(s, window)).collect();
                WindowReport {
                    window,
                    result: detect(&sliced, nranks, bins_per_window, cfg),
                }
            })
            .collect()
    }
}

/// A tree of aggregation nodes (paper §5: "further optimizations are
/// feasible with data collection frameworks such as MRNet, which
/// organizes servers into a tree-like structure"): leaf servers merge
/// their clients' heat-map slabs; interior nodes merge pairwise up to a
/// single root map, in O(log n) merge depth.
pub fn tree_aggregate(mut maps: Vec<crate::detect::heatmap::HeatMap>) -> Option<crate::detect::heatmap::HeatMap> {
    if maps.is_empty() {
        return None;
    }
    // Pairwise reduction; each level halves the population. Levels run
    // in parallel since pair merges are independent.
    while maps.len() > 1 {
        maps = maps
            .par_chunks(2)
            .map(|pair| {
                let mut acc = pair[0].clone();
                if let Some(second) = pair.get(1) {
                    acc.merge(second);
                }
                acc
            })
            .collect();
    }
    maps.pop()
}

/// Restrict an STG to the fragments overlapping `window` (what one
/// reporting period's shipped batch contains).
fn slice_stg(stg: &Stg, window: Window) -> Stg {
    let keep = |f: &Fragment| window.overlaps(f.start, f.end);
    let mut out = Stg::new();
    let mut ids = Vec::with_capacity(stg.num_states());
    for v in stg.vertices() {
        let id = out.state(v.key.clone());
        ids.push(id);
        for f in v.fragments.iter().filter(|f| keep(f)) {
            out.attach_vertex_fragment(id, f.clone());
        }
    }
    for e in stg.edges() {
        let eid = out.transition(ids[e.from], ids[e.to]);
        for f in e.fragments.iter().filter(|f| keep(f)) {
            out.attach_edge_fragment(eid, f.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use crate::stg::StateKey;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::CallSite;

    #[test]
    fn round_robin_is_balanced() {
        let pool = ServerPool::new(4, 1024);
        assert_eq!(pool.servers.len(), 4);
        assert_eq!(pool.imbalance(), 0);
        assert_eq!(pool.servers[0].clients.len(), 256);
        // The paper's deployment: 1 server per 256 clients → 1/256 ≈ 0.4 %.
        assert!((pool.resource_overhead() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_population_is_off_by_at_most_one() {
        let pool = ServerPool::new(3, 100);
        assert!(pool.imbalance() <= 1);
        let total: usize = pool.servers.iter().map(|s| s.clients.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn ingest_rate_scales_with_clients() {
        let pool = ServerPool::new(2, 512);
        // 47.4 KB/s per process (the paper's multi-process rate).
        let rate = pool.servers[0].ingest_rate(47_400.0);
        assert!((rate - 256.0 * 47_400.0).abs() < 1e-6);
    }

    fn looped_stg(rank: usize, n: usize, period_ns: u64, slow_range: std::ops::Range<usize>) -> Stg {
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
        stg.transition(start, site);
        let e = stg.transition(site, site);
        let mut t = 0u64;
        for i in 0..n {
            let d = if slow_range.contains(&i) { period_ns * 3 } else { period_ns };
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, 1000.0);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + d),
                    counters: c,
                    args: vec![],
                },
            );
            t += d + 10;
        }
        stg
    }

    #[test]
    fn windowed_analysis_localises_variance_in_time() {
        // 40 iterations of ~1s each; iterations 20..25 are slow.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(15),
            ..VaproConfig::default()
        };
        let stgs = vec![looped_stg(0, 40, 1_000_000_000, 20..25)];
        let pool = ServerPool::new(1, 1);
        let reports = pool.analyze_windows(&stgs, 1, 8, &cfg);
        assert!(reports.len() > 2, "windows: {}", reports.len());
        // Windows overlapping the slow span see variance; early ones don't.
        let early = &reports[0];
        assert!(early.result.comp_regions.is_empty());
        let hit = reports
            .iter()
            .any(|r| !r.result.comp_regions.is_empty());
        assert!(hit, "no window detected the slow span");
    }

    #[test]
    fn wire_batches_detect_like_direct_stgs() {
        // The networked path (serialise → ship → reassemble → detect)
        // finds the same variance as the in-process path.
        use crate::wire::FragmentBatch;
        let mut stgs = vec![];
        for rank in 0..4usize {
            let slow = if rank == 2 { 5..15 } else { 0..0 };
            stgs.push(looped_stg(rank, 20, 1_000_000, slow));
        }
        let cfg = VaproConfig::default();
        let direct = crate::detect::pipeline::detect(&stgs, 4, 16, &cfg);

        let window = Window {
            start: VirtualTime::ZERO,
            end: VirtualTime::from_secs(3600),
        };
        let batches: Vec<FragmentBatch> = stgs
            .iter()
            .enumerate()
            .map(|(rank, stg)| {
                // Through the wire and back, as a real client would ship it.
                let bytes = FragmentBatch::from_stg(stg, rank, window).to_bytes();
                FragmentBatch::from_bytes(&bytes).expect("parse")
            })
            .collect();
        let pool = ServerPool::new(1, 4);
        let via_wire = pool.analyze_batches(&batches, 4, 16, &cfg);

        assert_eq!(direct.comp_regions.len(), via_wire.comp_regions.len());
        let (a, b) = (&direct.comp_regions[0], &via_wire.comp_regions[0]);
        assert_eq!(a.rank_range, b.rank_range);
        assert!((a.mean_perf - b.mean_perf).abs() < 1e-9);
        assert!((direct.coverage - via_wire.coverage).abs() < 1e-9);
    }

    #[test]
    fn tree_aggregation_equals_flat_merge() {
        use crate::detect::heatmap::HeatMap;
        use crate::detect::normalize::PerfPoint;
        // Five servers each hold a slab; the tree root must equal the
        // flat accumulation.
        let geometry = || HeatMap::new(VirtualTime::ZERO, 100, 8, 4);
        let mut slabs = vec![];
        let mut flat = geometry();
        for s in 0..5usize {
            let mut hm = geometry();
            let p = PerfPoint {
                rank: s % 4,
                start: VirtualTime::from_ns(s as u64 * 100),
                end: VirtualTime::from_ns(s as u64 * 100 + 100),
                perf: 0.2 * (s + 1) as f64,
                loss_ns: 10.0,
            };
            hm.add_point(&p);
            flat.add_point(&p);
            slabs.push(hm);
        }
        let root = tree_aggregate(slabs).unwrap();
        for r in 0..4 {
            for b in 0..8 {
                assert_eq!(root.perf(r, b), flat.perf(r, b), "cell ({r},{b})");
                assert_eq!(root.loss_ns(r, b), flat.loss_ns(r, b));
            }
        }
        assert!(tree_aggregate(vec![]).is_none());
    }

    #[test]
    fn sliced_stg_preserves_structure() {
        let stg = looped_stg(0, 10, 100, 10..10);
        let w = Window {
            start: VirtualTime::from_ns(0),
            end: VirtualTime::from_ns(500),
        };
        let sliced = slice_stg(&stg, w);
        assert_eq!(sliced.num_states(), stg.num_states());
        assert_eq!(sliced.num_edges(), stg.num_edges());
        assert!(sliced.total_fragments() < stg.total_fragments());
        assert!(sliced.total_fragments() > 0);
    }
}
