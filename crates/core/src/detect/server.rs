//! The analysis servers (paper §3.5 Fig. 8 and §5): dedicated server
//! processes periodically collect performance data from application
//! processes and analyse the last window; multiple servers split the
//! client population evenly for load balance (one server per 256 clients
//! in the paper's deployment, 0.4 % resource overhead).
//!
//! Ingestion is incremental and zero-copy past the decode step:
//!
//! * [`IngestArena`] decodes each shipped [`FragmentBatch`] **once** into
//!   per-location fragment pools (fragments are *moved* out of the batch,
//!   never cloned);
//! * a per-window *view* ([`IngestArena::window_view`]) borrows the
//!   overlapping fragments as a [`MergedStg`] of `&Fragment` pools — no
//!   `Fragment` is cloned per window, unlike the old per-window STG
//!   slicing;
//! * [`WindowedIngestor`] tracks the observed time watermark and analyses
//!   windows on rayon as they close, instead of re-pooling everything at
//!   every report.

use crate::columnar::{ColumnarPool, PoolView};
use crate::config::{LateDataPolicy, VaproConfig};
use crate::detect::pipeline::{
    detect_columnar, detect_merged, merge_stgs_window, DetectionResult, MergedStg,
};
use crate::detect::window::{windows_covering, Window};
use crate::diagnose::batch::{DiagnosisBatch, EdgePools};
use crate::diagnose::driver::RegionOfInterest;
use crate::diagnose::progressive::DiagnosisReport;
use crate::fragment::Fragment;
use crate::intern::{Sym, SymbolTable};
use crate::report::WindowCoverage;
use crate::stg::{StateKey, Stg};
use crate::vopr::canary;
use crate::vopr::fault_points::{hit, FaultPoint};
use crate::wire::{
    fragment_wire_bytes, leak_label, FragmentBatch, WireError, SEQ_UNSEQUENCED,
};
use crate::detect::stage::AnalysisStage;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vapro_sim::{CallSite, VirtualTime};

/// One analysis server owning a subset of client ranks.
#[derive(Debug)]
pub struct AnalysisServer {
    /// Server index in the pool.
    pub id: usize,
    /// The ranks this server serves.
    pub clients: Vec<usize>,
}

impl AnalysisServer {
    /// Bytes/sec of client data this server ingests given per-client
    /// rates — used for the storage/throughput accounting of §6.2.
    pub fn ingest_rate(&self, bytes_per_client_per_sec: f64) -> f64 {
        self.clients.len() as f64 * bytes_per_client_per_sec
    }
}

/// A pool of servers with clients assigned round-robin (the paper's
/// "equally assigning parallel processes to different servers").
#[derive(Debug)]
pub struct ServerPool {
    /// The servers.
    pub servers: Vec<AnalysisServer>,
}

/// One region's diagnosis attached to a window report.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDiagnosis {
    /// The diagnosed region of interest (from a detected variance
    /// region of the window).
    pub roi: RegionOfInterest,
    /// The progressive drill-down's outcome.
    pub report: DiagnosisReport,
}

/// The analysis output of one window: detection plus the diagnoses of
/// its top-K (by quantified loss) computation variance regions, and the
/// data provenance the analysis ran on.
#[derive(Debug)]
pub struct WindowReport {
    /// The analysed window.
    pub window: Window,
    /// Detection over the fragments inside the window.
    pub result: DetectionResult,
    /// Diagnoses of the window's top computation regions (at most
    /// `cfg.diagnose_top_k`; regions whose drill-down found no usable
    /// cluster or contrast are skipped).
    pub diagnoses: Vec<RegionDiagnosis>,
    /// Which ranks contributed, what the transport lost, and how
    /// complete this window's data is. One-shot analyses report
    /// [`WindowCoverage::full`]; the streaming ingestor fills in the
    /// straggler/fault picture it observed.
    pub coverage: WindowCoverage,
}

/// Transport-fault accounting of one ingestor: every frame the decode or
/// admission path rejected, counted instead of dropped on the floor. The
/// `Display` impl renders the one-line summary a server would log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames decoded and admitted into the arena.
    pub frames_admitted: u64,
    /// Frames rejected for a CRC mismatch ([`WireError::BadChecksum`]).
    pub corrupt_frames: u64,
    /// Frames with an unknown version byte ([`WireError::BadVersion`]).
    pub bad_version_frames: u64,
    /// Frames rejected for any other structural decode error.
    pub malformed_frames: u64,
    /// Frames claiming a rank outside the configured deployment
    /// ([`WireError::UnknownRank`]).
    pub unknown_rank_frames: u64,
    /// Retransmitted frames deduplicated by their sequence number.
    pub duplicate_frames: u64,
    /// Frames from dead ranks discarded under [`LateDataPolicy::Drop`].
    pub dropped_late_frames: u64,
    /// Frames dropped by the ahead-of-watermark buffer cap.
    pub dropped_backpressure_frames: u64,
    /// Bytes those backpressure drops covered.
    pub dropped_backpressure_bytes: u64,
    /// Frames claiming a tenant the fleet has no registration for
    /// ([`WireError::UnknownTenant`]).
    pub unknown_tenant_frames: u64,
    /// Frames rejected by fleet admission because the tenant's in-flight
    /// bytes would exceed its budget ([`WireError::TenantOverBudget`]).
    pub over_budget_frames: u64,
    /// Bytes those budget rejections covered.
    pub over_budget_bytes: u64,
}

impl IngestStats {
    /// Total frames rejected for any reason.
    pub fn frames_rejected(&self) -> u64 {
        self.corrupt_frames
            + self.bad_version_frames
            + self.malformed_frames
            + self.unknown_rank_frames
            + self.duplicate_frames
            + self.dropped_late_frames
            + self.dropped_backpressure_frames
            + self.unknown_tenant_frames
            + self.over_budget_frames
    }

    pub(crate) fn count_decode_error(&mut self, e: &WireError) {
        match e {
            WireError::BadChecksum { .. } => self.corrupt_frames += 1,
            WireError::BadVersion { .. } => self.bad_version_frames += 1,
            WireError::UnknownTenant { .. } => self.unknown_tenant_frames += 1,
            WireError::TenantOverBudget { .. } => self.over_budget_frames += 1,
            _ => self.malformed_frames += 1,
        }
    }
}

impl fmt::Display for IngestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest: {} admitted, {} corrupt, {} bad-version, {} malformed, \
             {} unknown-rank, {} duplicate, {} late-dropped, \
             {} backpressure-dropped ({} B), {} unknown-tenant, \
             {} over-budget ({} B)",
            self.frames_admitted,
            self.corrupt_frames,
            self.bad_version_frames,
            self.malformed_frames,
            self.unknown_rank_frames,
            self.duplicate_frames,
            self.dropped_late_frames,
            self.dropped_backpressure_frames,
            self.dropped_backpressure_bytes,
            self.unknown_tenant_frames,
            self.over_budget_frames,
            self.over_budget_bytes,
        )
    }
}

/// Liveness of one client rank, as seen by the straggler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankHealth {
    /// Shipping within the straggler horizon of the fastest rank.
    Live,
    /// Trailing the fastest rank by more than `straggler_horizon`:
    /// reported, but still awaited by the watermark.
    Degraded,
    /// Trailing by more than `dead_horizon`: excluded from the
    /// watermark so windows keep closing. Latched — a dead rank stays
    /// dead; its late frames follow [`LateDataPolicy`].
    Dead,
}

/// Per-rank ingest bookkeeping: the shipping mark, and sequence-number
/// state for deduplication, reorder tolerance and gap detection.
#[derive(Debug, Default)]
struct RankTracker {
    /// Largest `window_end_ns` this rank has *contiguously* shipped.
    mark_ns: u64,
    /// Highest sequence number with every predecessor admitted.
    contig: u64,
    /// Out-of-order admissions ahead of the contiguous prefix:
    /// seq → shipped `window_end_ns`, released into `mark_ns` once the
    /// gap below them fills.
    pending: BTreeMap<u64, u64>,
    /// Latched death flag.
    dead: bool,
}

impl RankTracker {
    fn is_duplicate(&self, seq: u64) -> bool {
        // The `DedupDisabled` canary (vopr-canary builds only) waves
        // every retransmit through; the VOPR delivery-accounting
        // invariant must flag the double admissions.
        if crate::vopr::canary::armed(crate::vopr::canary::Canary::DedupDisabled) {
            return false;
        }
        seq != SEQ_UNSEQUENCED && (seq <= self.contig || self.pending.contains_key(&seq))
    }

    /// Record an admitted frame. Unsequenced frames advance the mark
    /// immediately (the legacy contract); sequenced frames advance it
    /// only along the contiguous prefix, so a reordered early frame can
    /// never be overtaken by the watermark while still in flight.
    fn admit(&mut self, seq: u64, window_end_ns: u64) {
        if seq == SEQ_UNSEQUENCED {
            self.mark_ns = self.mark_ns.max(window_end_ns);
            return;
        }
        self.pending.insert(seq, window_end_ns);
        while let Some(end) = self.pending.remove(&(self.contig + 1)) {
            self.contig += 1;
            self.mark_ns = self.mark_ns.max(end);
        }
    }

    /// Sequence numbers known sent (something later arrived) but never
    /// received — the frames currently missing below the highest seen.
    fn gaps(&self) -> u64 {
        // Saturating: with dedup suppressed (canary builds) `pending`
        // can hold stale seqs at or below `contig`, and a gap count
        // must degrade to zero rather than underflow.
        match self.pending.keys().next_back() {
            Some(&max) => {
                max.saturating_sub(self.contig).saturating_sub(self.pending.len() as u64)
            }
            None => 0,
        }
    }
}

/// Diagnose the top-K computation regions of a detection result over
/// the same merged view it was detected on. The [`DiagnosisBatch`]
/// seeds its cluster cache from the detection's own per-edge outcomes,
/// so no pool is clustered twice — diagnosis costs one interval-index
/// build plus the drill-downs themselves.
fn diagnose_top_regions<S: EdgePools + Sync>(
    pools: &S,
    result: &DetectionResult,
    cfg: &VaproConfig,
) -> Vec<RegionDiagnosis> {
    if cfg.diagnose_top_k == 0 || result.comp_regions.is_empty() {
        return Vec::new();
    }
    let batch = DiagnosisBatch::with_clusters(pools, cfg, &result.edge_clusters);
    result
        .comp_regions
        .iter()
        .take(cfg.diagnose_top_k)
        .filter_map(|region| {
            let roi = RegionOfInterest::from(region);
            batch.diagnose(&roi).map(|report| RegionDiagnosis { roi, report })
        })
        .collect()
}

/// Shared per-window analysis: detection over the view, then top-K
/// region diagnosis reusing detection's clusters. Both the one-shot
/// ([`ServerPool::analyze_windows`]) and streaming
/// ([`WindowedIngestor`]) paths go through here, which keeps their
/// reports bit-identical. The caller supplies the transport-side
/// coverage; the per-window `ranks_absent` census comes from the view
/// itself, identically on both paths.
fn analyze_view(
    view: &MergedStg<'_>,
    window: Window,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    mut coverage: WindowCoverage,
) -> WindowReport {
    let mut present = vec![false; nranks];
    let pools = view
        .vertices
        .iter()
        .map(|(_, p)| p)
        .chain(view.edges.iter().map(|(_, p)| p));
    for pool in pools {
        for f in pool {
            if f.rank < nranks {
                present[f.rank] = true;
            }
        }
    }
    coverage.ranks_absent = (0..nranks).filter(|&r| !present[r]).collect();
    let result = detect_merged(view, nranks, bins, cfg);
    let diagnoses = diagnose_top_regions(view, &result, cfg);
    WindowReport { window, result, diagnoses, coverage }
}

/// Columnar twin of [`analyze_view`]: detection and diagnosis read the
/// pool's contiguous lanes instead of `&Fragment` slices. The streaming
/// ingestor routes every closed window through here; the one-shot path
/// keeps the AoS route, so the streaming-equals-one-shot tests prove the
/// two representations bit-identical end to end.
pub(crate) fn analyze_view_columnar(
    pool: &ColumnarPool,
    window: Window,
    nranks: usize,
    bins: usize,
    cfg: &VaproConfig,
    mut coverage: WindowCoverage,
) -> WindowReport {
    let mut present = vec![false; nranks];
    let all = pool.all();
    for i in 0..all.len() {
        let r = all.rank(i);
        if r < nranks {
            present[r] = true;
        }
    }
    coverage.ranks_absent = (0..nranks).filter(|&r| !present[r]).collect();
    let result = detect_columnar(pool, nranks, bins, cfg);
    let diagnoses = diagnose_top_regions(pool, &result, cfg);
    WindowReport { window, result, diagnoses, coverage }
}

impl ServerPool {
    /// Distribute `nranks` clients over `nservers` servers.
    pub fn new(nservers: usize, nranks: usize) -> Self {
        assert!(nservers > 0, "need at least one server");
        let mut servers: Vec<AnalysisServer> = (0..nservers)
            .map(|id| AnalysisServer { id, clients: Vec::new() })
            .collect();
        for rank in 0..nranks {
            servers[rank % nservers].clients.push(rank);
        }
        ServerPool { servers }
    }

    /// Server resource overhead relative to the application: one server
    /// process per `clients` application processes.
    pub fn resource_overhead(&self) -> f64 {
        let clients: usize = self.servers.iter().map(|s| s.clients.len()).sum();
        if clients == 0 {
            0.0
        } else {
            self.servers.len() as f64 / clients as f64
        }
    }

    /// Largest client-count imbalance between servers (0 or 1 for
    /// round-robin).
    pub fn imbalance(&self) -> usize {
        let max = self.servers.iter().map(|s| s.clients.len()).max().unwrap_or(0);
        let min = self.servers.iter().map(|s| s.clients.len()).min().unwrap_or(0);
        max - min
    }

    /// Analyse one window's shipped [`FragmentBatch`]es — the wire-format
    /// entry point a networked deployment would use: clients serialise
    /// batches ([`FragmentBatch::encode`]), the server decodes them into
    /// an [`IngestArena`] and runs detection on the borrowed pools.
    pub fn analyze_batches(
        &self,
        batches: Vec<FragmentBatch>,
        nranks: usize,
        bins: usize,
        cfg: &VaproConfig,
    ) -> DetectionResult {
        let mut arena = IngestArena::new();
        for b in batches {
            arena.push_batch(b);
        }
        detect_merged(&arena.full_view(), nranks, bins, cfg)
    }

    /// Analyse the run in overlapped windows of `cfg.report_period`:
    /// each window's fragments (from every rank's STG) are detected
    /// independently; windows run in parallel. Per-window populations are
    /// borrowed views ([`merge_stgs_window`]) — zero `Fragment` clones.
    pub fn analyze_windows(
        &self,
        stgs: &[Stg],
        nranks: usize,
        bins_per_window: usize,
        cfg: &VaproConfig,
    ) -> Vec<WindowReport> {
        let t_end = stgs
            .iter()
            .flat_map(|s| {
                s.vertices()
                    .iter()
                    .flat_map(|v| v.fragments.iter())
                    .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
            })
            .map(|f| f.end)
            .max()
            .unwrap_or(VirtualTime::ZERO);
        let windows = windows_covering(VirtualTime::ZERO, t_end, cfg.report_period);

        windows
            .into_par_iter()
            .map(|window| {
                let view = merge_stgs_window(stgs, window);
                analyze_view(
                    &view,
                    window,
                    nranks,
                    bins_per_window,
                    cfg,
                    WindowCoverage::full(nranks),
                )
            })
            .collect()
    }
}

/// Canonical in-pool fragment order: (rank, time) first, then fragment
/// content (kind, counters, args) to break ties among identical-
/// timestamp fragments — so pool order never depends on batch arrival
/// order, even when timestamps collide. Where (rank, time) is unique —
/// every rank-indexed STG the one-shot path consumes — the order equals
/// what `merge_stgs` produces, which is what makes the incremental
/// reports bit-identical to the one-shot windowed analysis.
fn fragment_order(a: &Fragment, b: &Fragment) -> std::cmp::Ordering {
    (a.rank, a.start.ns(), a.end.ns(), a.kind as u8)
        .cmp(&(b.rank, b.start.ns(), b.end.ns(), b.kind as u8))
        .then_with(|| {
            // Ties are rare, so the content comparison stays lazy: no
            // per-fragment key allocation.
            a.counters
                .entries()
                .map(|(id, v)| (id.index(), v.to_bits()))
                .cmp(b.counters.entries().map(|(id, v)| (id.index(), v.to_bits())))
        })
        .then_with(|| {
            a.args
                .iter()
                .map(|x| x.to_bits())
                .cmp(b.args.iter().map(|x| x.to_bits()))
        })
}

/// One arena pool plus its incremental-sort watermark: the prefix
/// `frags[..sorted_len]` is known to be in [`fragment_order`]. Batches
/// append to the tail; [`IngestArena::ensure_sorted`] sorts the tail run
/// and merges it into the prefix, so a window close never re-sorts
/// fragments that were already in place.
#[derive(Debug, Default)]
struct ArenaPool {
    frags: Vec<Fragment>,
    sorted_len: usize,
    /// Largest fragment duration this pool has ever held, ns. Monotone
    /// (eviction never lowers it — a stale bound only widens the ranged
    /// scan, never narrows it), which is what makes the O(window) view
    /// below safe: a fragment overlapping `[ws, we)` must start after
    /// `ws - max_dur_ns`, so the scan can skip everything earlier.
    max_dur_ns: u64,
}

impl ArenaPool {
    /// Append the fragments overlapping `w` to `out` via `partition_point`
    /// range lookups, touching O(ranks·log n + rows-in-window) elements
    /// instead of filtering the whole pool. Requires the pool to be fully
    /// sorted ([`fragment_order`]: rank first, then start time), which is
    /// what bounds each rank's candidates to one contiguous run:
    ///
    /// * the upper cut keeps `start < w.end` (any later start cannot
    ///   overlap);
    /// * the lower cut keeps `start > w.start − max_dur_ns` (any earlier
    ///   start has `end ≤ start + max_dur_ns ≤ w.start`, so it cannot
    ///   overlap either);
    /// * the remaining candidates are filtered by the exact overlap
    ///   predicate `end > w.start`, yielding precisely the set — and,
    ///   because the scan walks pool order, precisely the order — the
    ///   full `filter(keep)` pass produced.
    fn window_overlaps<'a>(&'a self, w: Window, out: &mut Vec<&'a Fragment>) {
        debug_assert_eq!(self.sorted_len, self.frags.len(), "ranged scan needs a sorted pool");
        let ws = w.start.ns();
        let we = w.end.ns();
        let earliest_start = ws.saturating_sub(self.max_dur_ns);
        let frags = self.frags.as_slice();
        let mut run_start = 0;
        while run_start < frags.len() {
            let rank = frags[run_start].rank;
            let run = &frags[run_start..];
            let run_len = run.partition_point(|f| f.rank == rank);
            let run = &run[..run_len];
            let lo = run.partition_point(|f| f.start.ns() < earliest_start);
            let hi = run.partition_point(|f| f.start.ns() < we);
            for f in &run[lo.min(hi)..hi] {
                if f.end.ns() > ws {
                    out.push(f);
                }
            }
            run_start += run_len;
        }
    }
}

/// Server-side fragment storage: shipped batches decoded **once** into
/// per-location pools. Locations are keyed by state (for invocation
/// pools) or state pair (for computation pools); state identity comes
/// from the batch label dictionary, so labels containing `" -> "` are
/// handled like any other.
#[derive(Debug, Default)]
pub struct IngestArena {
    /// Arena state keys; pool entries index into this.
    keys: Vec<StateKey>,
    key_ids: HashMap<&'static str, usize>,
    vertex_pools: HashMap<usize, ArenaPool>,
    edge_pools: HashMap<(usize, usize), ArenaPool>,
    fragments: usize,
    max_end_ns: u64,
    /// Persistent merge scratch for [`IngestArena::ensure_sorted`]: the
    /// unsorted tail run and the merge output. Both keep their
    /// capacity across calls, so steady-state maintenance sorting does
    /// no transient allocation.
    sort_tail: Vec<Fragment>,
    sort_out: Vec<Fragment>,
    /// Fragment `Vec`s reclaimed from pools the watermark fully drained;
    /// the next pool for a fresh location reuses their capacity instead
    /// of allocating — the arena-level twin of the ingestor's columnar
    /// scratch recycling.
    free_pools: Vec<Vec<Fragment>>,
    /// Approximate bytes of fragment data currently resident (struct +
    /// arg payloads), maintained by absorption and eviction.
    resident_bytes: u64,
    /// The highest `resident_bytes` ever observed — the stat the
    /// long-stream bench gates on to prove eviction caps memory at
    /// O(watermark lag + open windows) instead of O(stream).
    high_water_bytes: u64,
}

/// Approximate resident footprint of one fragment: the inline struct
/// plus its argument payload. An accounting measure (allocator slack and
/// counter storage are not chased), but evict/absorb use the same
/// formula, so the resident gauge is exact relative to itself.
fn fragment_resident_bytes(f: &Fragment) -> u64 {
    (std::mem::size_of::<Fragment>() + f.args.len() * std::mem::size_of::<f64>()) as u64
}

impl IngestArena {
    /// An empty arena.
    pub fn new() -> IngestArena {
        IngestArena::default()
    }

    fn key_id(&mut self, label: &str) -> usize {
        let leaked = leak_label(label);
        *self.key_ids.entry(leaked).or_insert_with(|| {
            self.keys.push(StateKey::Site(CallSite(leaked)));
            self.keys.len() - 1
        })
    }

    /// Absorb one decoded batch, *moving* its fragments into the pools.
    ///
    /// Group label ids are re-checked against the batch's own label
    /// table: the binary decoder validates them (`check_label`), but the
    /// JSON fallback deserialises `FragmentBatch` structurally, so an
    /// out-of-range id can arrive here. Such groups are dropped — a
    /// malformed monitoring batch must never panic the ingest plane.
    pub fn push_batch(&mut self, batch: FragmentBatch) {
        let FragmentBatch { labels, vertex_groups, edge_groups, .. } = batch;
        let ids: Vec<usize> = labels.iter().map(|l| self.key_id(l)).collect();
        for g in vertex_groups {
            let Some(&id) = ids.get(g.label as usize) else { continue };
            if !self.vertex_pools.contains_key(&id) {
                let recycled = self.recycled_pool();
                self.vertex_pools.insert(id, recycled);
            }
            if let Some(pool) = self.vertex_pools.get_mut(&id) {
                Self::absorb(
                    pool,
                    g.fragments,
                    &mut self.fragments,
                    &mut self.max_end_ns,
                    &mut self.resident_bytes,
                );
            }
        }
        for g in edge_groups {
            let (Some(&from), Some(&to)) =
                (ids.get(g.from as usize), ids.get(g.to as usize))
            else {
                continue;
            };
            let key = (from, to);
            if !self.edge_pools.contains_key(&key) {
                let recycled = self.recycled_pool();
                self.edge_pools.insert(key, recycled);
            }
            if let Some(pool) = self.edge_pools.get_mut(&key) {
                Self::absorb(
                    pool,
                    g.fragments,
                    &mut self.fragments,
                    &mut self.max_end_ns,
                    &mut self.resident_bytes,
                );
            }
        }
        self.high_water_bytes = self.high_water_bytes.max(self.resident_bytes);
    }

    /// A fresh pool reusing reclaimed `Vec` capacity when available.
    fn recycled_pool(&mut self) -> ArenaPool {
        let frags = self.free_pools.pop().unwrap_or_default();
        ArenaPool { frags, sorted_len: 0, max_dur_ns: 0 }
    }

    fn absorb(
        pool: &mut ArenaPool,
        frags: Vec<Fragment>,
        fragments: &mut usize,
        max_end_ns: &mut u64,
        resident_bytes: &mut u64,
    ) {
        *fragments += frags.len();
        for f in &frags {
            *max_end_ns = (*max_end_ns).max(f.end.ns());
            *resident_bytes += fragment_resident_bytes(f);
            pool.max_dur_ns = pool.max_dur_ns.max(f.end.ns().saturating_sub(f.start.ns()));
        }
        pool.frags.extend(frags);
    }

    /// Decode one binary frame and absorb it.
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.push_batch(FragmentBatch::decode(bytes)?);
        Ok(())
    }

    /// Total fragments held.
    pub fn len(&self) -> usize {
        self.fragments
    }

    /// Nothing ingested yet?
    pub fn is_empty(&self) -> bool {
        self.fragments == 0
    }

    /// Latest fragment end observed, ns — the arena's time watermark.
    pub fn max_end_ns(&self) -> u64 {
        self.max_end_ns
    }

    /// Approximate bytes of fragment data currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// The highest [`IngestArena::resident_bytes`] ever observed. With
    /// watermark eviction running, this plateaus at O(watermark lag +
    /// open windows) instead of growing with the stream.
    pub fn high_water_bytes(&self) -> u64 {
        self.high_water_bytes
    }

    /// Watermark-driven reclamation: drop every fragment whose end is at
    /// or before `horizon_ns`, the start of the earliest window that can
    /// still close.
    ///
    /// **Safety argument.** Windows are emitted in index order and
    /// window `k` starts at `k·step`, so once windows `0..closed` have
    /// been sealed, every window that can still be analysed has
    /// `start ≥ window(closed).start = horizon`. A fragment feeds a
    /// window only when it overlaps it — `f.start < w.end` and
    /// `f.end > w.start ≥ horizon` — so a fragment with
    /// `f.end ≤ horizon` is unreachable by *any* future window,
    /// half-overlap included (the half-overlap only means a fragment
    /// can feed two windows; both of them have closed by the time the
    /// horizon passes its end). Closed windows can never reopen: the
    /// `closed` counter is monotone and `close_ready`/`finish` only
    /// ever analyse window indices ≥ `closed`. Late frames readmitted
    /// under [`LateDataPolicy::Readmit`] are unaffected — data for
    /// still-open windows ends after the horizon and is retained;
    /// data only closed windows could have used is exactly what this
    /// reclaims.
    ///
    /// `max_end_ns` is deliberately untouched (the window cover is
    /// defined by the data watermark, not by what is resident), as are
    /// the key tables (bounded by distinct code locations, not stream
    /// length). Pools drained empty donate their `Vec` capacity to the
    /// free list for the next fresh location.
    pub fn evict_before(&mut self, horizon_ns: u64) {
        let IngestArena {
            vertex_pools, edge_pools, free_pools, fragments, resident_bytes, ..
        } = self;
        let mut evict_pool = |pool: &mut ArenaPool| {
            let mut kept = 0;
            let mut kept_sorted = 0;
            for i in 0..pool.frags.len() {
                // vapro-lint: allow(R5, i ranges over 0..len and swap targets kept <= i)
                if pool.frags[i].end.ns() > horizon_ns {
                    pool.frags.swap(kept, i);
                    if i < pool.sorted_len {
                        kept_sorted += 1;
                    }
                    kept += 1;
                } else {
                    *fragments = fragments.saturating_sub(1);
                    *resident_bytes =
                        // vapro-lint: allow(R5, i ranges over 0..len; kept branch above keeps it valid)
                        resident_bytes.saturating_sub(fragment_resident_bytes(&pool.frags[i]));
                }
            }
            // Kept fragments keep their relative order (each moves only
            // left), so the kept part of the sorted prefix stays sorted
            // and the watermark shrinks to exactly that count.
            pool.frags.truncate(kept);
            pool.sorted_len = kept_sorted;
        };
        for pool in vertex_pools.values_mut().chain(edge_pools.values_mut()) {
            evict_pool(pool);
        }
        let mut reclaim = |pool: &mut ArenaPool| {
            let mut empty = std::mem::take(&mut pool.frags);
            empty.clear();
            free_pools.push(empty);
        };
        vertex_pools.retain(|_, pool| {
            if pool.frags.is_empty() {
                reclaim(pool);
                false
            } else {
                true
            }
        });
        edge_pools.retain(|_, pool| {
            if pool.frags.is_empty() {
                reclaim(pool);
                false
            } else {
                true
            }
        });
    }

    /// Bring every pool up to its [`fragment_order`] invariant: sort the
    /// unsorted tail run and move-merge it with the sorted prefix through
    /// the persistent scratch buffers. After this, views are pure filters
    /// (filtering preserves order), so closing a window sorts nothing.
    ///
    /// Equal elements under [`fragment_order`] are identical in every
    /// compared field — rank, times, kind, counter bits, arg bits — so
    /// the unstable tail sort and the merge's tie direction cannot change
    /// any observable pool order.
    pub fn ensure_sorted(&mut self) {
        let IngestArena { vertex_pools, edge_pools, sort_tail, sort_out, .. } = self;
        let pools =
            vertex_pools.values_mut().chain(edge_pools.values_mut());
        for pool in pools {
            let n = pool.frags.len();
            if pool.sorted_len == n {
                continue;
            }
            // vapro-lint: allow(R5, sorted_len <= frags.len() is the pool invariant)
            pool.frags[pool.sorted_len..].sort_unstable_by(fragment_order);
            // The tail often starts past the prefix outright (in-order
            // shipping); then the concatenation is already sorted.
            let boundary_ok = pool.sorted_len == 0
                || fragment_order(
                    // vapro-lint: allow(R5, guarded by sorted_len > 0 and sorted_len < len on this branch)
                    &pool.frags[pool.sorted_len - 1],
                    // vapro-lint: allow(R5, sorted_len < len whenever the prefix check ran)
                    &pool.frags[pool.sorted_len],
                ) != std::cmp::Ordering::Greater;
            if !boundary_ok {
                sort_tail.extend(pool.frags.drain(pool.sorted_len..));
                sort_out.reserve(n);
                let mut a = pool.frags.drain(..).peekable();
                let mut b = sort_tail.drain(..).peekable();
                loop {
                    let take_a = match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => {
                            fragment_order(x, y) != std::cmp::Ordering::Greater
                        }
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let next = if take_a { a.next() } else { b.next() };
                    if let Some(f) = next {
                        sort_out.push(f);
                    }
                }
                drop(a);
                drop(b);
                std::mem::swap(&mut pool.frags, sort_out);
            }
            pool.sorted_len = pool.frags.len();
        }
    }

    fn view(&self, window: Option<Window>) -> MergedStg<'_> {
        // Per-pool collection: a window view over a fully-sorted pool
        // goes through the `partition_point` ranged scan — O(ranks·log n
        // + rows-in-window) instead of filtering the whole pool. Pools
        // with an unsorted tail (direct arena use without
        // `ensure_sorted`) and full views keep the linear filter; the
        // ranged scan is proven to produce the identical set *and*
        // order ([`ArenaPool::window_overlaps`]), so which path ran is
        // unobservable.
        fn collect<'a>(
            pool: &'a ArenaPool,
            window: Option<Window>,
            dirty: &mut bool,
        ) -> Vec<&'a Fragment> {
            match window {
                Some(w) if pool.sorted_len == pool.frags.len() => {
                    let mut kept = Vec::new();
                    pool.window_overlaps(w, &mut kept);
                    kept
                }
                Some(w) => {
                    *dirty = true;
                    pool.frags.iter().filter(|f| w.overlaps(f.start, f.end)).collect()
                }
                None => {
                    *dirty |= pool.sorted_len != pool.frags.len();
                    pool.frags.iter().collect()
                }
            }
        }
        let mut dirty = false;
        let mut symbols: SymbolTable<&StateKey> = SymbolTable::new();
        let mut vertices: Vec<(Sym, Vec<&Fragment>)> = Vec::new();
        for (&id, pool) in &self.vertex_pools {
            let kept = collect(pool, window, &mut dirty);
            if !kept.is_empty() {
                // vapro-lint: allow(R5, pool ids are issued by key_id and index keys by construction)
                vertices.push((symbols.intern(&self.keys[id]), kept));
            }
        }
        let mut edges: Vec<((Sym, Sym), Vec<&Fragment>)> = Vec::new();
        for (&(from, to), pool) in &self.edge_pools {
            let kept = collect(pool, window, &mut dirty);
            if !kept.is_empty() {
                edges.push((
                    // vapro-lint: allow(R5, edge-pool keys are issued by key_id and index keys by construction)
                    (symbols.intern(&self.keys[from]), symbols.intern(&self.keys[to])),
                    kept,
                ));
            }
        }
        // Views are in [`fragment_order`]: (rank, time) first, with a
        // content tiebreaker, so results never depend on batch arrival
        // order even when timestamps collide. When the arena was brought
        // up to date by [`IngestArena::ensure_sorted`] — the streaming
        // ingestor does so before every window close — filtering already
        // preserved that order and this pass is skipped entirely.
        if dirty {
            for pool in vertices
                .iter_mut()
                .map(|(_, p)| p)
                .chain(edges.iter_mut().map(|(_, p)| p))
            {
                pool.sort_by(|a, b| fragment_order(a, b));
            }
        }
        // Key-sorted pool order, matching `merge_stgs` exactly.
        vertices.sort_by(|a, b| symbols.key(a.0).cmp(symbols.key(b.0)));
        edges.sort_by(|a, b| {
            (symbols.key(a.0 .0), symbols.key(a.0 .1))
                .cmp(&(symbols.key(b.0 .0), symbols.key(b.0 .1)))
        });
        MergedStg { symbols, vertices, edges }
    }

    /// Borrow the fragments overlapping `window` as pooled populations.
    /// Building a view clones no `Fragment` — it is index slices over the
    /// arena — and feeds [`detect_merged`] directly.
    pub fn window_view(&self, window: Window) -> MergedStg<'_> {
        self.view(Some(window))
    }

    /// Borrow everything ingested so far, regardless of time.
    pub fn full_view(&self) -> MergedStg<'_> {
        self.view(None)
    }
}

/// Incremental windowed ingestion: push batches as clients ship them;
/// half-overlapped analysis windows are detected on rayon **as they
/// close**, rather than re-pooling the whole run at every report.
///
/// A window closes when *every* rank has shipped past its end. Each
/// batch's `window_end_ns` declares "this rank has reported every
/// fragment starting before here" (start-partitioned shipping,
/// [`FragmentBatch::from_stg_starting_in`]); the minimum of those
/// per-rank marks is the shipping low-watermark, and a window whose end
/// it passes can no longer gain fragments — one fast client racing ahead
/// never closes a window that slower clients still owe data to.
///
/// When clients ship exactly their data span, the union of all reports
/// (stream + [`WindowedIngestor::finish`]) is bit-identical to the
/// one-shot [`ServerPool::analyze_windows`] over the same STGs.
///
/// **Fault tolerance** (`cfg.fault`, off by default): with a
/// `dead_horizon` set, a rank whose shipping mark trails the fastest
/// rank's by more than the horizon is declared [`RankHealth::Dead`] and
/// excluded from the low-watermark, so one crashed client can no longer
/// stall window closing forever; its subsequent frames are re-admitted
/// or dropped per [`LateDataPolicy`]. Sequenced frames (wire v2) are
/// deduplicated and advance the shipping mark only along the contiguous
/// sequence prefix, so reordered delivery can never close a window whose
/// data is still in flight. Every rejected frame is counted in
/// [`IngestStats`] and every closed window carries a [`WindowCoverage`].
pub struct WindowedIngestor {
    arena: IngestArena,
    nranks: usize,
    bins_per_window: usize,
    cfg: VaproConfig,
    /// Windows emitted so far; window `k` spans
    /// `[k·step, k·step + period)` with `step = period/2`.
    closed: usize,
    /// Per-rank shipping marks and sequence state.
    trackers: Vec<RankTracker>,
    /// Fault accounting across the whole stream.
    stats: IngestStats,
    /// Bytes admitted ahead of the watermark, keyed by the shipped
    /// `window_end_ns` that releases them; bounded by
    /// `cfg.fault.max_buffered_bytes` when set.
    buffered_ahead: BTreeMap<u64, u64>,
    buffered_ahead_bytes: u64,
    /// Recycled per-window columnar scratch: each closing window pops a
    /// pool, refills it from its view, and pushes it back with capacity
    /// intact — steady-state window close allocates no new lanes. Shared
    /// with the analysis stage's workers (they return finished pools),
    /// and guarded by the vendored non-poisoning `parking_lot::Mutex`:
    /// recycling can never be silently disabled by a poisoned lock.
    scratch_pools: Arc<Mutex<Vec<ColumnarPool>>>,
    /// How many scratch pools have ever been allocated (pop found the
    /// stack empty). Bounded by the pipeline depth + worker count in
    /// steady state — the recycling proof the tests assert.
    scratch_pools_allocated: AtomicU64,
    /// The bounded in-order analysis pipeline (tentpole layer 3),
    /// spawned lazily on the first sealed window when
    /// `cfg.pipeline_depth > 0`. `None` until then, and always `None`
    /// at depth 0 (inline analysis).
    stage: Option<AnalysisStage>,
}

impl WindowedIngestor {
    /// A fresh ingestor analysing windows of `cfg.report_period` for a
    /// population of `nranks` clients.
    pub fn new(nranks: usize, bins_per_window: usize, cfg: VaproConfig) -> WindowedIngestor {
        // vapro-lint: allow(R5, fail-fast constructor contract on operator config, before any ingest)
        assert!(cfg.report_period.ns() > 0, "zero analysis period");
        // vapro-lint: allow(R5, fail-fast constructor contract on operator config, before any ingest)
        assert!(nranks > 0, "need at least one client");
        // vapro-lint: allow(R5, fail-fast constructor contract on operator config, before any ingest)
        assert!(cfg.is_valid(), "invalid config (check fault horizons)");
        WindowedIngestor {
            arena: IngestArena::new(),
            nranks,
            bins_per_window,
            cfg,
            closed: 0,
            trackers: (0..nranks).map(|_| RankTracker::default()).collect(),
            stats: IngestStats::default(),
            buffered_ahead: BTreeMap::new(),
            buffered_ahead_bytes: 0,
            scratch_pools: Arc::new(Mutex::new(Vec::new())),
            scratch_pools_allocated: AtomicU64::new(0),
            stage: None,
        }
    }

    fn window(&self, k: usize) -> Window {
        let step = (self.cfg.report_period.ns() / 2).max(1);
        let start = k as u64 * step;
        Window {
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + self.cfg.report_period.ns()),
        }
    }

    /// The arena accumulated so far.
    pub fn arena(&self) -> &IngestArena {
        &self.arena
    }

    /// Fault accounting so far.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Bytes currently buffered ahead of the watermark.
    pub fn buffered_ahead_bytes(&self) -> u64 {
        self.buffered_ahead_bytes
    }

    /// Per-rank liveness under the configured straggler policy. Without
    /// horizons every rank is [`RankHealth::Live`].
    pub fn rank_health(&self) -> Vec<RankHealth> {
        let fastest = self.trackers.iter().map(|t| t.mark_ns).max().unwrap_or(0);
        self.trackers
            .iter()
            .map(|t| {
                if t.dead {
                    RankHealth::Dead
                } else {
                    match self.cfg.fault.straggler_horizon {
                        Some(h) if fastest.saturating_sub(t.mark_ns) > h.ns() => {
                            RankHealth::Degraded
                        }
                        _ => RankHealth::Live,
                    }
                }
            })
            .collect()
    }

    /// Grow the deployment by one rank mid-stream (elastic membership):
    /// returns the new rank id, which the joining client must stamp on
    /// its frames. The newcomer's shipping mark starts at the current
    /// watermark, so it owes nothing behind what has already closed —
    /// windows at or below the watermark stay closed, later windows
    /// wait for it like any other rank. Its sequence numbering starts
    /// fresh at 1. Windows sealed before the birth keep their original
    /// rank count; windows closing after it analyse with the widened
    /// deployment.
    pub fn add_rank(&mut self) -> usize {
        let rank = self.nranks;
        self.nranks += 1;
        self.trackers.push(RankTracker {
            mark_ns: self.watermark_ns(),
            ..RankTracker::default()
        });
        hit(FaultPoint::RankBirth);
        rank
    }

    /// Absorb one batch and analyse every window it closed. Batches past
    /// a rank's last fragment (even empty ones) still advance its
    /// shipping mark. Rejections (duplicates, late data under `Drop`,
    /// backpressure) are counted in [`IngestStats`], never panics.
    pub fn push(&mut self, batch: FragmentBatch) -> Vec<WindowReport> {
        let approx = 64
            + batch.labels.iter().map(|l| l.len() as u64 + 4).sum::<u64>()
            + batch.fragments().map(fragment_wire_bytes).sum::<u64>();
        let _ = self.admit(batch, approx); // rejection already counted
        self.close_ready()
    }

    /// Decode one binary frame, absorb it, analyse closed windows. The
    /// decoded batch goes through the same admission as
    /// [`WindowedIngestor::push`], so the rank check and shipping-mark
    /// advance apply identically on both entry points. Decode and
    /// admission failures are returned *and* counted in
    /// [`IngestStats`] — a server loop can log them without bespoke
    /// bookkeeping.
    pub fn push_encoded(&mut self, bytes: &[u8]) -> Result<Vec<WindowReport>, WireError> {
        let batch = match FragmentBatch::decode(bytes) {
            Ok(b) => b,
            Err(e) => {
                self.stats.count_decode_error(&e);
                return Err(e);
            }
        };
        self.admit(batch, bytes.len() as u64)?;
        Ok(self.close_ready())
    }

    /// Admission control: rank validation, dedup, dead-rank late policy,
    /// backpressure, then arena absorption. `Err` for unknown ranks
    /// (hostile or misrouted frames) and duplicates (the one rejection a
    /// sender can act on — stop retransmitting); policy drops return
    /// `Ok` because they are the server's own choice. Total: hostile
    /// input is counted and rejected, never a panic.
    fn admit(&mut self, batch: FragmentBatch, frame_bytes: u64) -> Result<(), WireError> {
        let (rank, seq) = (batch.rank, batch.seq);
        let Some(tracker) = self.trackers.get(rank) else {
            self.stats.unknown_rank_frames += 1;
            hit(FaultPoint::UnknownRankReject);
            return Err(WireError::UnknownRank {
                rank: rank as u32,
                nranks: self.nranks as u32,
            });
        };
        if tracker.is_duplicate(seq) {
            self.stats.duplicate_frames += 1;
            hit(FaultPoint::SeqDuplicateReject);
            return Err(WireError::DuplicateSequence { rank: rank as u32, seq });
        }
        if tracker.dead && self.cfg.fault.late_data == LateDataPolicy::Drop {
            // The frame is acknowledged (its sequence number is recorded,
            // so retransmits stay duplicates and no gap is reported) but
            // its data is discarded: the windows it belonged to closed
            // without this rank.
            if let Some(t) = self.trackers.get_mut(rank) {
                t.admit(seq, batch.window_end_ns);
            }
            self.stats.dropped_late_frames += 1;
            hit(FaultPoint::LateDataDrop);
            return Ok(());
        }
        let ahead = batch.window_start_ns > self.watermark_ns();
        if ahead {
            if let Some(cap) = self.cfg.fault.max_buffered_bytes {
                if self.buffered_ahead_bytes.saturating_add(frame_bytes) > cap {
                    // Accounted drop: the mark still advances (the rank
                    // *did* ship this span — stalling the watermark would
                    // turn one overload into permanent blockage), but the
                    // fragments are not admitted and the loss is visible
                    // in every subsequent window's coverage.
                    if let Some(t) = self.trackers.get_mut(rank) {
                        t.admit(seq, batch.window_end_ns);
                    }
                    self.stats.dropped_backpressure_frames += 1;
                    self.stats.dropped_backpressure_bytes += frame_bytes;
                    hit(FaultPoint::BackpressureDrop);
                    return Ok(());
                }
            }
        }
        if let Some(t) = self.trackers.get_mut(rank) {
            t.admit(seq, batch.window_end_ns);
        }
        if ahead && self.cfg.fault.max_buffered_bytes.is_some() {
            *self.buffered_ahead.entry(batch.window_end_ns).or_insert(0) += frame_bytes;
            self.buffered_ahead_bytes += frame_bytes;
        }
        self.stats.frames_admitted += 1;
        self.arena.push_batch(batch);
        Ok(())
    }

    /// The shipping low-watermark: the minimum mark over live ranks —
    /// or, when every rank is dead, the maximum mark, so the stream can
    /// still drain.
    pub fn watermark_ns(&self) -> u64 {
        let low = match self.trackers.iter().filter(|t| !t.dead).map(|t| t.mark_ns).min() {
            Some(low) => low,
            None => self.trackers.iter().map(|t| t.mark_ns).max().unwrap_or(0),
        };
        // The `WatermarkOffByOne` canary (vopr-canary builds only) skews
        // the watermark half a report period ahead of what ranks
        // actually shipped, closing windows before their data arrives.
        // The VOPR stream ≡ one-shot and watermark-agreement invariants
        // must flag it.
        if canary::armed(canary::Canary::WatermarkOffByOne) {
            return low.saturating_add((self.cfg.report_period.ns() / 2).max(1));
        }
        low
    }

    /// Latch `Dead` onto every rank trailing the fastest mark by more
    /// than the configured horizon.
    fn update_liveness(&mut self) {
        let Some(dead_h) = self.cfg.fault.dead_horizon else { return };
        let fastest = self.trackers.iter().map(|t| t.mark_ns).max().unwrap_or(0);
        for t in &mut self.trackers {
            if !t.dead && fastest.saturating_sub(t.mark_ns) > dead_h.ns() {
                t.dead = true;
                hit(FaultPoint::DeadRankLatch);
            }
        }
    }

    /// Transport-side coverage of `w` at close time. `ranks_absent` is
    /// filled later from the window view itself. At `finish` the stream
    /// is over, so every rank not declared dead has shipped everything
    /// it ever will — its data is complete even if its final mark
    /// rounds below the window end.
    fn coverage_at_close(&self, w: Window, at_finish: bool) -> WindowCoverage {
        let ranks_dead: Vec<usize> = self
            .trackers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.dead)
            .map(|(r, _)| r)
            .collect();
        let ranks_complete = self
            .trackers
            .iter()
            .filter(|t| t.mark_ns >= w.end.ns() || (at_finish && !t.dead))
            .count();
        WindowCoverage {
            nranks: self.nranks,
            ranks_complete,
            ranks_absent: Vec::new(),
            ranks_dead,
            corrupt_frames: self.stats.corrupt_frames,
            duplicate_frames: self.stats.duplicate_frames,
            dropped_late_frames: self.stats.dropped_late_frames,
            dropped_backpressure_frames: self.stats.dropped_backpressure_frames,
            dropped_backpressure_bytes: self.stats.dropped_backpressure_bytes,
            seq_gaps: self.trackers.iter().map(|t| t.gaps()).sum(),
            completeness: ranks_complete as f64 / self.nranks as f64,
        }
    }

    /// Pop a recycled columnar pool, or allocate (and count) a fresh one.
    fn scratch_pool(&self) -> ColumnarPool {
        match self.scratch_pools.lock().pop() {
            Some(pool) => pool,
            None => {
                self.scratch_pools_allocated.fetch_add(1, Ordering::Relaxed);
                ColumnarPool::new()
            }
        }
    }

    /// How many columnar scratch pools were ever allocated. Recycling
    /// keeps this bounded by the stage's concurrency, not the window
    /// count — the test-visible proof that a steady-state window close
    /// reuses lanes instead of allocating.
    pub fn scratch_pools_allocated(&self) -> u64 {
        self.scratch_pools_allocated.load(Ordering::Relaxed)
    }

    /// Inline (depth-0) analysis: seal and analyse on the calling
    /// thread, windows fanning out on rayon. The pipelined path routes
    /// the identical seal + [`analyze_view_columnar`] sequence through
    /// stage workers instead.
    fn analyze(&self, windows: Vec<(Window, WindowCoverage)>) -> Vec<WindowReport> {
        windows
            .into_par_iter()
            .map(|(window, coverage)| {
                let view = self.arena.window_view(window);
                let mut pool = self.scratch_pool();
                pool.refill_from_merged(&view);
                let report = analyze_view_columnar(
                    &pool,
                    window,
                    self.nranks,
                    self.bins_per_window,
                    &self.cfg,
                    coverage,
                );
                self.scratch_pools.lock().push(pool);
                report
            })
            .collect()
    }

    /// Seal `windows` into owned columnar pools on this thread and hand
    /// them to the analysis stage, spawning it on first use. Sealing
    /// must precede both eviction (a ready window may still need
    /// fragments at the reclamation horizon) and the next admission
    /// (the snapshot defines bit-identity), which is why it stays
    /// synchronous while only the analysis itself is pipelined.
    fn seal_into_stage(&mut self, windows: Vec<(Window, WindowCoverage)>) {
        if windows.is_empty() {
            return;
        }
        if self.stage.is_none() {
            self.stage = Some(AnalysisStage::new(
                self.cfg.pipeline_depth,
                // vapro-lint: allow(R1, one config snapshot at stage spawn; not a fragment population)
                self.cfg.clone(),
                self.bins_per_window,
                Arc::clone(&self.scratch_pools),
            ));
        }
        for (window, coverage) in windows {
            let mut pool = self.scratch_pool();
            pool.refill_from_merged(&self.arena.window_view(window));
            if let Some(stage) = self.stage.as_mut() {
                // nranks travels per sealed window: a rank born between
                // two closes must widen later windows' heatmaps but not
                // retroactively widen ones already sealed.
                stage.submit(window, coverage, self.nranks, pool);
            }
        }
    }

    /// Harvest reports whose analysis completed since the last call,
    /// without blocking — always the contiguous next run of windows, so
    /// concatenating everything `push`/`poll_reports`/`finish` return
    /// yields reports in exact window order. Fleet drains call this to
    /// pick up windows that finished between frames.
    pub fn poll_reports(&mut self) -> Vec<WindowReport> {
        match self.stage.as_mut() {
            Some(stage) => stage.take_completed(),
            None => Vec::new(),
        }
    }

    /// Windows sealed into the pipeline but not yet emitted (in flight
    /// on a worker, or parked awaiting an earlier window). Bounded by
    /// `cfg.pipeline_depth`; always 0 on the inline path.
    pub fn pending_windows(&self) -> u64 {
        self.stage.as_ref().map_or(0, AnalysisStage::pending)
    }

    fn close_ready(&mut self) -> Vec<WindowReport> {
        // A window is closeable once no awaited rank owes it fragments
        // (its end is behind the live low-watermark) and it provably
        // belongs to the final cover. `windows_covering(0, t_end)` keeps
        // window k only when it is the first window or window k-1 ends
        // before the data watermark; `seen` only grows, so `prev_end <
        // seen` proves membership now — anything else waits for
        // `finish`, which knows the final watermark. Without this rule a
        // shipping mark rounded up past the data end (a client's last,
        // possibly empty, period) would emit windows the one-shot cover
        // lacks.
        self.update_liveness();
        let low = self.watermark_ns();
        let seen = self.arena.max_end_ns();
        // Maintenance sort before any view is built: window views then
        // filter already-ordered pools instead of sorting per window.
        self.arena.ensure_sorted();
        let mut ready = Vec::new();
        loop {
            let w = self.window(self.closed);
            let in_cover = if self.closed == 0 {
                seen > 0
            } else {
                self.window(self.closed - 1).end.ns() < seen
            };
            if w.end.ns() > low || !in_cover {
                break;
            }
            ready.push((w, self.coverage_at_close(w, false)));
            self.closed += 1;
        }
        // Frames the watermark has passed are no longer "ahead": release
        // their bytes from the backpressure budget.
        while let Some((&end, _)) = self.buffered_ahead.first_key_value() {
            if end > low {
                break;
            }
            if let Some(bytes) = self.buffered_ahead.remove(&end) {
                self.buffered_ahead_bytes = self.buffered_ahead_bytes.saturating_sub(bytes);
            }
        }
        let closed_any = !ready.is_empty();
        let reports = if self.cfg.pipeline_depth == 0 {
            self.analyze(ready)
        } else {
            self.seal_into_stage(ready);
            self.poll_reports()
        };
        // Reclaim fragments no future window can reach. Only after the
        // ready windows were sealed (inline analysis or stage hand-off
        // both copy the window's fragments out first), and only when
        // `closed` advanced — the horizon is monotone, so an unchanged
        // watermark has nothing new to release.
        if closed_any {
            // The `EvictLive` canary (vopr-canary builds only) pushes
            // the reclamation horizon a full window ahead, evicting
            // fragments that open windows still need; the VOPR
            // stream ≡ one-shot identity must flag the data loss.
            let horizon = if canary::armed(canary::Canary::EvictLive) {
                self.window(self.closed).end.ns()
            } else {
                self.window(self.closed).start.ns()
            };
            let resident_before = self.arena.resident_bytes();
            self.arena.evict_before(horizon);
            if self.arena.resident_bytes() < resident_before {
                hit(FaultPoint::ArenaEviction);
            }
        }
        reports
    }

    /// End of stream: analyse the remaining windows. The union of all
    /// reports equals exactly what [`ServerPool::analyze_windows`] —
    /// i.e. [`windows_covering`] up to the data watermark — produces,
    /// **regardless of shipping marks**: a rank that went silent without
    /// ever shipping its final mark cannot strand the tail windows. An
    /// ingestor that saw no fragments reports nothing.
    pub fn finish(mut self) -> Vec<WindowReport> {
        self.update_liveness();
        let t_end = self.arena.max_end_ns();
        self.arena.ensure_sorted();
        let mut remaining = Vec::new();
        // Emit up to and including the first window whose end reaches
        // `t_end`, mirroring `windows_covering(0, t_end, period)`.
        while t_end > 0
            && (self.closed == 0 || self.window(self.closed - 1).end.ns() < t_end)
        {
            let w = self.window(self.closed);
            remaining.push((w, self.coverage_at_close(w, true)));
            self.closed += 1;
        }
        if self.cfg.pipeline_depth == 0 {
            return self.analyze(remaining);
        }
        // Seal the tail, then join the stage: every submitted window —
        // including ones still in flight from earlier pushes — is
        // analysed and emitted in window order before this returns.
        self.seal_into_stage(remaining);
        match self.stage.take() {
            Some(mut stage) => stage.drain(),
            None => Vec::new(),
        }
    }
}

/// A tree of aggregation nodes (paper §5: "further optimizations are
/// feasible with data collection frameworks such as MRNet, which
/// organizes servers into a tree-like structure"): leaf servers merge
/// their clients' heat-map slabs; interior nodes merge pairwise up to a
/// single root map, in O(log n) merge depth.
pub fn tree_aggregate(mut maps: Vec<crate::detect::heatmap::HeatMap>) -> Option<crate::detect::heatmap::HeatMap> {
    if maps.is_empty() {
        return None;
    }
    // Pairwise reduction; each level halves the population. Levels run
    // in parallel since pair merges are independent.
    while maps.len() > 1 {
        maps = maps
            .par_chunks(2)
            .map(|pair| {
                // vapro-lint: allow(R1, heat-map slab accumulator seeds each pairwise merge; not a fragment population)
                let mut acc = pair[0].clone();
                if let Some(second) = pair.get(1) {
                    acc.merge(second);
                }
                acc
            })
            .collect();
    }
    maps.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::pipeline::{detect, detect_merged_impl};
    use crate::fragment::FragmentKind;
    use crate::stg::StateKey;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::CallSite;

    #[test]
    fn round_robin_is_balanced() {
        let pool = ServerPool::new(4, 1024);
        assert_eq!(pool.servers.len(), 4);
        assert_eq!(pool.imbalance(), 0);
        assert_eq!(pool.servers[0].clients.len(), 256);
        // The paper's deployment: 1 server per 256 clients → 1/256 ≈ 0.4 %.
        assert!((pool.resource_overhead() - 1.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_population_is_off_by_at_most_one() {
        let pool = ServerPool::new(3, 100);
        assert!(pool.imbalance() <= 1);
        let total: usize = pool.servers.iter().map(|s| s.clients.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn ingest_rate_scales_with_clients() {
        let pool = ServerPool::new(2, 512);
        // 47.4 KB/s per process (the paper's multi-process rate).
        let rate = pool.servers[0].ingest_rate(47_400.0);
        assert!((rate - 256.0 * 47_400.0).abs() < 1e-6);
    }

    fn looped_stg(rank: usize, n: usize, period_ns: u64, slow_range: std::ops::Range<usize>) -> Stg {
        let mut stg = Stg::new();
        let start = stg.state(StateKey::Start);
        let site = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
        stg.transition(start, site);
        let e = stg.transition(site, site);
        let mut t = 0u64;
        for i in 0..n {
            let d = if slow_range.contains(&i) { period_ns * 3 } else { period_ns };
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, 1000.0);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(t),
                    end: VirtualTime::from_ns(t + d),
                    counters: c,
                    args: vec![],
                },
            );
            t += d + 10;
        }
        stg
    }

    #[test]
    fn windowed_analysis_localises_variance_in_time() {
        // 40 iterations of ~1s each; iterations 20..25 are slow.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(15),
            ..VaproConfig::default()
        };
        let stgs = vec![looped_stg(0, 40, 1_000_000_000, 20..25)];
        let pool = ServerPool::new(1, 1);
        let reports = pool.analyze_windows(&stgs, 1, 8, &cfg);
        assert!(reports.len() > 2, "windows: {}", reports.len());
        // Windows overlapping the slow span see variance; early ones don't.
        let early = &reports[0];
        assert!(early.result.comp_regions.is_empty());
        let hit = reports
            .iter()
            .any(|r| !r.result.comp_regions.is_empty());
        assert!(hit, "no window detected the slow span");
    }

    /// The pre-refactor reference: restrict an STG to the fragments
    /// overlapping `window` by *cloning* them into a fresh graph.
    fn slice_stg(stg: &Stg, window: Window) -> Stg {
        let keep = |f: &Fragment| window.overlaps(f.start, f.end);
        let mut out = Stg::new();
        let mut ids = Vec::with_capacity(stg.num_states());
        for v in stg.vertices() {
            let id = out.state(v.key.clone());
            ids.push(id);
            for f in v.fragments.iter().filter(|f| keep(f)) {
                out.attach_vertex_fragment(id, f.clone());
            }
        }
        for e in stg.edges() {
            let eid = out.transition(ids[e.from], ids[e.to]);
            for f in e.fragments.iter().filter(|f| keep(f)) {
                out.attach_edge_fragment(eid, f.clone());
            }
        }
        out
    }

    fn assert_results_identical(a: &DetectionResult, b: &DetectionResult) {
        assert_eq!(a.series, b.series);
        assert_eq!(a.rare_paths, b.rare_paths);
        assert_eq!(a.comp_map, b.comp_map);
        assert_eq!(a.comm_map, b.comm_map);
        assert_eq!(a.io_map, b.io_map);
        assert_eq!(a.comp_regions, b.comp_regions);
        assert_eq!(a.comm_regions, b.comm_regions);
        assert_eq!(a.io_regions, b.io_regions);
        assert_eq!(a.coverage.to_bits(), b.coverage.to_bits());
        assert_eq!(a.edge_clusters, b.edge_clusters);
    }

    #[test]
    fn window_views_are_bit_identical_to_cloned_slices() {
        // The zero-copy window path must reproduce the old
        // slice-and-clone pooling exactly, window by window.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let mut stgs: Vec<Stg> = (0..3)
            .map(|r| looped_stg(r, 30, 1_000_000_000, 0..0))
            .collect();
        stgs[1] = looped_stg(1, 30, 1_000_000_000, 10..16);
        let pool = ServerPool::new(1, 3);
        let reports = pool.analyze_windows(&stgs, 3, 8, &cfg);
        let t_end = VirtualTime::from_ns(stgs.iter().flat_map(|s| s.edges()).flat_map(|e| e.fragments.iter()).map(|f| f.end.ns()).max().unwrap());
        let windows = windows_covering(VirtualTime::ZERO, t_end, cfg.report_period);
        assert_eq!(reports.len(), windows.len());
        for (report, window) in reports.iter().zip(windows) {
            assert_eq!(report.window, window);
            let sliced: Vec<Stg> = stgs.iter().map(|s| slice_stg(s, window)).collect();
            let reference = detect(&sliced, 3, 8, &cfg);
            assert_results_identical(&report.result, &reference);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn window_views_clone_no_fragments() {
        use crate::fragment::clone_count;
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let stgs: Vec<Stg> = (0..2)
            .map(|r| looped_stg(r, 20, 1_000_000_000, 5..9))
            .collect();
        let windows =
            windows_covering(VirtualTime::ZERO, VirtualTime::from_secs(25), cfg.report_period);
        // Run the whole per-window pipeline single-threaded on this
        // thread: the thread-local clone counter must not move.
        let before = clone_count::on_this_thread();
        for window in windows {
            let view = merge_stgs_window(&stgs, window);
            let _ = detect_merged_impl(&view, 2, 8, &cfg, false, None);
        }
        assert_eq!(clone_count::on_this_thread(), before, "fragment cloned on window path");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn arena_window_views_clone_no_fragments() {
        use crate::fragment::clone_count;
        let cfg = VaproConfig::default();
        let stg = looped_stg(0, 20, 1_000_000, 0..0);
        let window = Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(1) };
        let encoded = FragmentBatch::from_stg(&stg, 0, window).encode();
        let mut arena = IngestArena::new();
        // Decoding constructs fragments (it doesn't clone), pushing moves
        // them, and every window view after that is borrows only.
        let before = clone_count::on_this_thread();
        arena.push_encoded(&encoded).unwrap();
        for k in 0..4u64 {
            let w = Window {
                start: VirtualTime::from_ns(k * 5_000_000),
                end: VirtualTime::from_ns(k * 5_000_000 + 10_000_000),
            };
            let _ = detect_merged_impl(&arena.window_view(w), 1, 8, &cfg, false, None);
        }
        assert_eq!(clone_count::on_this_thread(), before, "fragment cloned on ingest path");
    }

    #[test]
    fn incremental_ingestor_matches_batch_windowing() {
        // Clients ship start-partitioned per-period batches through the
        // binary wire; the incremental ingestor's reports must equal the
        // one-shot windowed analysis of the same STGs.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let mut stgs: Vec<Stg> = (0..3)
            .map(|r| looped_stg(r, 30, 1_000_000_000, 0..0))
            .collect();
        stgs[2] = looped_stg(2, 30, 1_000_000_000, 12..18);
        let pool = ServerPool::new(1, 3);
        let reference = pool.analyze_windows(&stgs, 3, 8, &cfg);

        // Period-major shipping (every rank ships period k before any
        // rank ships k+1) — the paper's reporting pattern. Pool views
        // keep (rank, time) order, so arrival order doesn't matter for
        // the bit-exactness. Empty batches past the data end ship too:
        // they advance the shipping marks far beyond the watermark, and
        // the closing rule must still not emit windows the one-shot
        // cover lacks.
        let mut ingestor = WindowedIngestor::new(3, 8, cfg.clone());
        let mut reports = Vec::new();
        for k in 0..20u64 {
            let period = Window {
                start: VirtualTime::from_secs(5 * k),
                end: VirtualTime::from_secs(5 * (k + 1)),
            };
            for (rank, stg) in stgs.iter().enumerate() {
                let batch = FragmentBatch::from_stg_starting_in(stg, rank, period);
                reports.extend(
                    ingestor.push_encoded(&batch.encode()).expect("valid frame"),
                );
            }
        }
        reports.extend(ingestor.finish());

        assert_eq!(reports.len(), reference.len());
        for (got, want) in reports.iter().zip(&reference) {
            assert_eq!(got.window, want.window);
            assert_results_identical(&got.result, &want.result);
            assert_eq!(got.diagnoses, want.diagnoses);
        }
        // And the variance was actually found in some window.
        assert!(reports.iter().any(|r| !r.result.comp_regions.is_empty()));
    }

    #[test]
    fn windows_ship_top_k_diagnoses() {
        // Diagnosable data (full S3 memory counter set, memory contention
        // on rank 2 mid-run): windows overlapping the noise must ship
        // region diagnoses, capped at `diagnose_top_k`, and the streaming
        // ingestor must ship exactly the one-shot reports — detection
        // output unchanged, diagnoses included.
        use crate::diagnose::driver::tests::stgs_with_noise;
        let cfg = VaproConfig {
            report_period: VirtualTime::from_ms(40),
            ..VaproConfig::default()
        };
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let pool = ServerPool::new(1, 4);
        let reports = pool.analyze_windows(&stgs, 4, 8, &cfg);
        assert!(reports.iter().all(|r| r.diagnoses.len() <= cfg.diagnose_top_k));
        let diagnosed: Vec<&RegionDiagnosis> =
            reports.iter().flat_map(|r| &r.diagnoses).collect();
        assert!(!diagnosed.is_empty(), "no window shipped a diagnosis");
        for d in &diagnosed {
            assert!(!d.report.culprits.is_empty());
            assert!(d.roi.ranks.0 <= d.roi.ranks.1);
        }

        // Stream the same run through the wire-format ingestor.
        let mut ingestor = WindowedIngestor::new(4, 8, cfg.clone());
        let mut streamed = Vec::new();
        for k in 0..5u64 {
            let period = Window {
                start: VirtualTime::from_ms(20 * k),
                end: VirtualTime::from_ms(20 * (k + 1)),
            };
            for (rank, stg) in stgs.iter().enumerate() {
                let batch = FragmentBatch::from_stg_starting_in(stg, rank, period);
                streamed.extend(ingestor.push_encoded(&batch.encode()).expect("valid frame"));
            }
        }
        streamed.extend(ingestor.finish());
        assert_eq!(streamed.len(), reports.len());
        for (got, want) in streamed.iter().zip(&reports) {
            assert_eq!(got.window, want.window);
            assert_results_identical(&got.result, &want.result);
            assert_eq!(got.diagnoses, want.diagnoses);
        }
        assert!(streamed.iter().any(|r| !r.diagnoses.is_empty()));
    }

    #[test]
    fn diagnosis_can_be_disabled() {
        use crate::diagnose::driver::tests::stgs_with_noise;
        let cfg = VaproConfig {
            report_period: VirtualTime::from_ms(40),
            diagnose_top_k: 0,
            ..VaproConfig::default()
        };
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let pool = ServerPool::new(1, 4);
        let reports = pool.analyze_windows(&stgs, 4, 8, &cfg);
        assert!(reports.iter().any(|r| !r.result.comp_regions.is_empty()));
        assert!(reports.iter().all(|r| r.diagnoses.is_empty()));
    }

    #[test]
    fn ingestor_closes_windows_incrementally() {
        // Inline analysis (depth 0): per-push emission is deterministic,
        // so the close-as-they-stream property can be asserted exactly.
        // The pipelined default emits the same reports with bounded
        // deferral — `pipelined_reports_match_inline_reports` covers it.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            pipeline_depth: 0,
            ..VaproConfig::default()
        };
        let stg = looped_stg(0, 30, 1_000_000_000, 0..0);
        let mut ingestor = WindowedIngestor::new(1, 8, cfg);
        let mut closed_during_stream = 0;
        for k in 0..6u64 {
            let period = Window {
                start: VirtualTime::from_secs(5 * k),
                end: VirtualTime::from_secs(5 * (k + 1)),
            };
            let batch = FragmentBatch::from_stg_starting_in(&stg, 0, period);
            let reports = ingestor.push(batch);
            closed_during_stream += reports.len();
        }
        // Most windows close while the stream is still flowing — that is
        // the "analyse as they close" property.
        assert!(closed_during_stream >= 4, "only {closed_during_stream} closed early");
        let tail = ingestor.finish();
        assert!(tail.len() <= 2, "{} windows left to finish", tail.len());
    }

    #[test]
    fn encoded_frames_close_windows_incrementally() {
        // The binary entry point must advance the shipping marks like
        // `push` does: most windows close while frames are still
        // streaming in, not deferred wholesale to `finish`. Inline
        // analysis keeps per-push emission deterministic (see
        // `ingestor_closes_windows_incrementally`).
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            pipeline_depth: 0,
            ..VaproConfig::default()
        };
        let stg = looped_stg(0, 30, 1_000_000_000, 0..0);
        let mut ingestor = WindowedIngestor::new(1, 8, cfg);
        let mut closed_during_stream = 0;
        for k in 0..6u64 {
            let period = Window {
                start: VirtualTime::from_secs(5 * k),
                end: VirtualTime::from_secs(5 * (k + 1)),
            };
            let batch = FragmentBatch::from_stg_starting_in(&stg, 0, period);
            let reports = ingestor.push_encoded(&batch.encode()).expect("valid frame");
            closed_during_stream += reports.len();
        }
        assert!(closed_during_stream >= 4, "only {closed_during_stream} closed early");
        assert!(ingestor.finish().len() <= 2);
    }

    fn assert_report_sequences_identical(got: &[WindowReport], want: &[WindowReport]) {
        assert_eq!(got.len(), want.len(), "window count diverged");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.window, w.window);
            assert_eq!(g.result.series, w.result.series);
            assert_eq!(g.result.rare_paths, w.result.rare_paths);
            assert_eq!(g.result.comp_map, w.result.comp_map);
            assert_eq!(g.result.comm_map, w.result.comm_map);
            assert_eq!(g.result.io_map, w.result.io_map);
            assert_eq!(g.result.comp_regions, w.result.comp_regions);
            assert_eq!(g.result.comm_regions, w.result.comm_regions);
            assert_eq!(g.result.io_regions, w.result.io_regions);
            assert_eq!(g.result.edge_clusters, w.result.edge_clusters);
            assert_eq!(g.diagnoses, w.diagnoses);
            assert_eq!(g.coverage, w.coverage);
        }
    }

    #[test]
    fn pipelined_reports_match_inline_reports() {
        // The tentpole invariant for layer 3: the pipelined default and
        // the inline depth-0 path emit bit-identical report sequences
        // over the same stream — workers may finish out of order, the
        // reorder buffer may defer emission across pushes, but the
        // concatenation of everything push + finish return is the same
        // window-ordered sequence. The stage also never holds more than
        // `pipeline_depth` windows.
        let period_ns = 5_000_000_000u64;
        let mut stgs: Vec<Stg> =
            (0..3).map(|r| looped_stg(r, 30, 1_000_000_000, 0..0)).collect();
        stgs[2] = looped_stg(2, 30, 1_000_000_000, 10..20);
        let frames = period_frames(&stgs, 6, period_ns);
        let run = |depth: usize| -> Vec<WindowReport> {
            let cfg = VaproConfig {
                report_period: VirtualTime::from_ns(period_ns),
                pipeline_depth: depth,
                ..VaproConfig::default()
            };
            let mut ingestor = WindowedIngestor::new(3, 8, cfg);
            let mut reports = Vec::new();
            for period in &frames {
                for frame in period {
                    reports.extend(ingestor.push_encoded(frame).expect("valid frame"));
                    assert!(
                        ingestor.pending_windows() <= depth as u64,
                        "stage exceeded its depth bound"
                    );
                }
            }
            reports.extend(ingestor.finish());
            reports
        };
        let inline = run(0);
        let piped = run(8);
        let narrow = run(1);
        assert!(!inline.is_empty());
        assert_report_sequences_identical(&piped, &inline);
        assert_report_sequences_identical(&narrow, &inline);
    }

    #[test]
    fn eviction_keeps_resident_bytes_bounded() {
        // Layer 1: a long single-config stream must not retain the whole
        // run. After many closed windows the arena holds only fragments
        // still reachable from open windows, and the high-water mark
        // sits far below the no-eviction total.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let nperiods = 40u64;
        let stgs: Vec<Stg> =
            (0..2).map(|r| looped_stg(r, 40 * 5, 1_000_000_000, 0..0)).collect();
        let frames = period_frames(&stgs, nperiods, 5_000_000_000);
        let naive_total: u64 = stgs
            .iter()
            .flat_map(|s| s.edges())
            .flat_map(|e| e.fragments.iter())
            .map(fragment_resident_bytes)
            .sum();
        let mut ingestor = WindowedIngestor::new(2, 8, cfg);
        let mut reports = Vec::new();
        for period in &frames {
            for frame in period {
                reports.extend(ingestor.push_encoded(frame).expect("valid frame"));
            }
        }
        let arena = ingestor.arena();
        assert!(arena.max_end_ns() > 0);
        // Steady state: resident ≈ the half-overlap neighbourhood of the
        // next closeable window, nowhere near the whole stream.
        assert!(
            arena.resident_bytes() <= naive_total / 4,
            "resident {} vs naive total {naive_total}",
            arena.resident_bytes()
        );
        assert!(
            arena.high_water_bytes() <= naive_total / 4,
            "high water {} vs naive total {naive_total}",
            arena.high_water_bytes()
        );
        assert!(arena.high_water_bytes() >= arena.resident_bytes());
        reports.extend(ingestor.finish());
        assert!(reports.len() as u64 >= 2 * nperiods - 2, "full cover emitted");
    }

    #[test]
    fn ranged_window_views_match_linear_filter_views() {
        // Layer 2: the partition_point ranged scan (sorted pools) and
        // the linear filter (unsorted pools) must produce identical
        // views — same fragments, same order — including zero-duration
        // fragments, duration outliers and window-boundary ties.
        let mut stgs: Vec<Stg> =
            (0..3).map(|r| looped_stg(r, 25, 1_000_000_000, 0..0)).collect();
        stgs[1] = looped_stg(1, 25, 1_000_000_000, 5..9);
        let mut sorted_arena = IngestArena::new();
        let mut lazy_arena = IngestArena::new();
        for (rank, stg) in stgs.iter().enumerate() {
            let span = Window {
                start: VirtualTime::ZERO,
                end: VirtualTime::from_ns(u64::MAX),
            };
            let batch = FragmentBatch::from_stg(stg, rank, span);
            sorted_arena.push_batch(FragmentBatch::decode(&batch.encode()).unwrap());
            lazy_arena.push_batch(batch);
        }
        sorted_arena.ensure_sorted();
        // lazy_arena is left unsorted: its views take the filter path.
        let period = 5_000_000_000u64;
        for k in 0..10u64 {
            let w = Window {
                start: VirtualTime::from_ns(k * period / 2),
                end: VirtualTime::from_ns(k * period / 2 + period),
            };
            let fast = sorted_arena.window_view(w);
            let slow = lazy_arena.window_view(w);
            assert_eq!(fast.vertices.len(), slow.vertices.len());
            assert_eq!(fast.edges.len(), slow.edges.len());
            for (f, s) in fast.edges.iter().zip(slow.edges.iter()) {
                assert_eq!(f.1.len(), s.1.len(), "window {k} pool size diverged");
                for (a, b) in f.1.iter().zip(s.1.iter()) {
                    assert_eq!(a, b, "window {k} fragment order diverged");
                }
            }
        }
    }

    #[test]
    fn scratch_pools_recycle_across_pipelined_closes() {
        // The poisoning-proof recycling satellite: across many closed
        // windows, pool allocations stay bounded by the stage's
        // concurrency (depth + the one being sealed), not the window
        // count — a lost pool would show up as one extra allocation per
        // window.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let depth = cfg.pipeline_depth as u64;
        let stg = looped_stg(0, 100, 1_000_000_000, 0..0);
        let frames = period_frames(std::slice::from_ref(&stg), 20, 5_000_000_000);
        let mut ingestor = WindowedIngestor::new(1, 8, cfg);
        let mut reports = Vec::new();
        for period in &frames {
            reports.extend(ingestor.push_encoded(&period[0]).expect("valid frame"));
        }
        let allocated = ingestor.scratch_pools_allocated();
        assert!(allocated >= 1, "no pool was ever allocated?");
        assert!(
            allocated <= depth + 1,
            "recycling failed: {allocated} pools allocated for {} closes",
            reports.len()
        );
        reports.extend(ingestor.finish());
        assert!(reports.len() >= 30, "expected a long stream of closes");
    }

    #[test]
    fn encoded_frames_from_unknown_ranks_are_rejected() {
        // A frame claiming a rank outside the deployment is a structured
        // rejection — counted, never a panic (hostile input must not be
        // able to kill the server).
        let stg = looped_stg(7, 5, 1_000_000, 0..0);
        let window = Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(1) };
        let encoded = FragmentBatch::from_stg(&stg, 7, window).encode();
        let mut ingestor = WindowedIngestor::new(2, 8, VaproConfig::default());
        let err = ingestor.push_encoded(&encoded).unwrap_err();
        assert_eq!(err, WireError::UnknownRank { rank: 7, nranks: 2 });
        assert!(err.to_string().contains("unknown rank 7"));
        assert_eq!(ingestor.stats().unknown_rank_frames, 1);
        assert_eq!(ingestor.stats().frames_rejected(), 1);
        assert_eq!(ingestor.stats().frames_admitted, 0);
        // The stream stays healthy afterwards: a valid rank still admits.
        let ok = FragmentBatch::from_stg(&looped_stg(1, 5, 1_000_000, 0..0), 1, window);
        let _ = ingestor.push_encoded(&ok.encode()).expect("valid rank admits");
        assert_eq!(ingestor.stats().frames_admitted, 1);
    }

    #[test]
    fn arena_views_are_arrival_order_independent_on_timestamp_ties() {
        // Two fragments from the same rank with identical timestamps but
        // different content: whichever batch arrives first, the view
        // must order them identically (content-derived tiebreaker).
        let mk = |ins: f64| {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::from_ns(100),
                end: VirtualTime::from_ns(200),
                counters: c,
                args: vec![],
            }
        };
        let batch_with = |ins: f64| {
            let mut stg = Stg::new();
            let s = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
            let e = stg.transition(s, s);
            stg.attach_edge_fragment(e, mk(ins));
            let window = Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(1) };
            FragmentBatch::from_stg(&stg, 0, window)
        };
        let order_of = |batches: Vec<FragmentBatch>| -> Vec<u64> {
            let mut arena = IngestArena::new();
            for b in batches {
                arena.push_batch(b);
            }
            let view = arena.full_view();
            assert_eq!(view.edges.len(), 1);
            view.edges[0]
                .1
                .iter()
                .map(|f| f.counters.get(CounterId::TotIns).unwrap().to_bits())
                .collect()
        };
        let forward = order_of(vec![batch_with(1.0), batch_with(2.0)]);
        let reverse = order_of(vec![batch_with(2.0), batch_with(1.0)]);
        assert_eq!(forward.len(), 2);
        assert_eq!(forward, reverse, "tie order depends on arrival order");
    }

    #[test]
    fn wire_batches_detect_like_direct_stgs() {
        // The networked path (serialise → ship → reassemble → detect)
        // finds the same variance as the in-process path.
        let mut stgs = vec![];
        for rank in 0..4usize {
            let slow = if rank == 2 { 5..15 } else { 0..0 };
            stgs.push(looped_stg(rank, 20, 1_000_000, slow));
        }
        let cfg = VaproConfig::default();
        let direct = detect(&stgs, 4, 16, &cfg);

        let window = Window {
            start: VirtualTime::ZERO,
            end: VirtualTime::from_secs(3600),
        };
        let batches: Vec<FragmentBatch> = stgs
            .iter()
            .enumerate()
            .map(|(rank, stg)| {
                // Through the binary wire and back, as a real client
                // would ship it.
                let bytes = FragmentBatch::from_stg(stg, rank, window).encode();
                FragmentBatch::decode(&bytes).expect("parse")
            })
            .collect();
        let pool = ServerPool::new(1, 4);
        let via_wire = pool.analyze_batches(batches, 4, 16, &cfg);

        assert_eq!(direct.comp_regions.len(), via_wire.comp_regions.len());
        let (a, b) = (&direct.comp_regions[0], &via_wire.comp_regions[0]);
        assert_eq!(a.rank_range, b.rank_range);
        assert!((a.mean_perf - b.mean_perf).abs() < 1e-9);
        assert!((direct.coverage - via_wire.coverage).abs() < 1e-9);
    }

    /// Ship `stg`'s data period-major as sequenced v2 frames; returns
    /// the per-rank frames of each period.
    fn period_frames(stgs: &[Stg], nperiods: u64, period_ns: u64) -> Vec<Vec<Vec<u8>>> {
        (0..nperiods)
            .map(|k| {
                let period = Window {
                    start: VirtualTime::from_ns(k * period_ns),
                    end: VirtualTime::from_ns((k + 1) * period_ns),
                };
                stgs.iter()
                    .enumerate()
                    .map(|(rank, stg)| {
                        FragmentBatch::from_stg_starting_in(stg, rank, period)
                            .with_seq(k + 1)
                            .encode()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn finish_flushes_tail_windows_despite_silent_straggler() {
        // Rank 1 never ships a single mark (a silent straggler, no fault
        // policy configured): the stream closes nothing, but `finish`
        // must still emit the full one-shot cover — with the straggler
        // visible in every window's coverage.
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let stg = looped_stg(0, 30, 1_000_000_000, 0..0);
        let t_end = stg
            .edges()
            .iter()
            .flat_map(|e| e.fragments.iter())
            .map(|f| f.end)
            .max()
            .unwrap();
        let expected = windows_covering(VirtualTime::ZERO, t_end, cfg.report_period);

        let mut ingestor = WindowedIngestor::new(2, 8, cfg);
        let mut reports = Vec::new();
        for k in 0..6u64 {
            let period = Window {
                start: VirtualTime::from_secs(5 * k),
                end: VirtualTime::from_secs(5 * (k + 1)),
            };
            let batch = FragmentBatch::from_stg_starting_in(&stg, 0, period);
            reports.extend(ingestor.push(batch));
        }
        // With rank 1's mark stuck at zero nothing closes mid-stream…
        assert!(reports.is_empty(), "watermark ignored the straggler");
        // …but finish flushes every cover window anyway.
        reports.extend(ingestor.finish());
        assert_eq!(reports.len(), expected.len(), "tail windows stranded");
        for (report, window) in reports.iter().zip(expected) {
            assert_eq!(report.window, window);
            assert!(report.coverage.ranks_absent.contains(&1), "straggler not flagged");
            assert!(report.coverage.is_degraded());
        }
    }

    #[test]
    fn dead_rank_is_excluded_and_windows_keep_closing() {
        // Acceptance scenario: rank 3 dies after period 3 of 12. With a
        // dead horizon configured, windows past its death keep closing
        // mid-stream, report the rank dead/absent, and completeness
        // drops below 1.0. A late frame from the revived rank is dropped
        // and counted under LateDataPolicy::Drop.
        let period_ns = 5_000_000_000u64;
        let mut cfg = VaproConfig {
            report_period: VirtualTime::from_ns(period_ns),
            ..VaproConfig::default()
        };
        cfg.fault.straggler_horizon = Some(VirtualTime::from_ns(2 * period_ns));
        cfg.fault.dead_horizon = Some(VirtualTime::from_ns(3 * period_ns));
        cfg.fault.late_data = LateDataPolicy::Drop;
        let stgs: Vec<Stg> =
            (0..4).map(|r| looped_stg(r, 60, 1_000_000_000, 0..0)).collect();

        let mut ingestor = WindowedIngestor::new(4, 8, cfg.clone());
        let mut reports = Vec::new();
        let frames = period_frames(&stgs, 12, period_ns);
        let mut late_frame = None;
        for (k, period) in frames.into_iter().enumerate() {
            for (rank, frame) in period.into_iter().enumerate() {
                if rank == 3 && k >= 3 {
                    if late_frame.is_none() {
                        late_frame = Some(frame);
                    }
                    continue; // rank 3 died
                }
                reports.extend(ingestor.push_encoded(&frame).expect("valid frame"));
            }
        }
        // Windows past rank 3's data kept closing mid-stream.
        assert_eq!(ingestor.rank_health()[3], RankHealth::Dead);
        assert!(
            reports.iter().any(|r| r.window.start.ns() >= 3 * period_ns),
            "no window past the death closed mid-stream"
        );
        // The revived rank's late frame is dropped and accounted.
        ingestor
            .push_encoded(&late_frame.unwrap())
            .expect("late frames are a policy drop, not an error");
        assert_eq!(ingestor.stats().dropped_late_frames, 1);

        reports.extend(ingestor.finish());
        // Full cover emitted; windows past the death report the dead
        // rank absent with completeness < 1.0.
        let t_end = stgs
            .iter()
            .flat_map(|s| s.edges())
            .flat_map(|e| e.fragments.iter())
            .map(|f| f.end)
            .max()
            .unwrap();
        let expected = windows_covering(VirtualTime::ZERO, t_end, cfg.report_period);
        assert_eq!(reports.len(), expected.len());
        // Windows strictly past rank 3's last straddling fragment: dead,
        // absent, incomplete.
        let past_death: Vec<_> = reports
            .iter()
            .filter(|r| r.window.start.ns() > 3 * period_ns)
            .collect();
        assert!(!past_death.is_empty());
        for r in past_death {
            assert!(r.coverage.ranks_dead.contains(&3), "dead rank missing: {:?}", r.coverage);
            assert!(r.coverage.ranks_absent.contains(&3));
            assert!(r.coverage.completeness < 1.0);
            assert!(r.coverage.is_degraded());
        }
        // The late-frame drop reaches the coverage of windows closed
        // after it happened (the tail windows emitted by finish).
        assert_eq!(reports.last().unwrap().coverage.dropped_late_frames, 1);
        // Early windows (closed before the death horizon tripped) were
        // complete.
        assert!(reports[0].coverage.completeness >= 1.0 - 1e-12);
    }

    #[test]
    fn adversarial_delivery_matches_in_order_reports() {
        // Sequenced frames delivered out of order and with duplicates:
        // the closed-window reports (stream + finish union) must equal
        // in-order delivery bit for bit. The contiguous-prefix mark rule
        // is what makes this safe: a reordered early frame holds the
        // watermark back until it lands.
        let period_ns = 5_000_000_000u64;
        let cfg = VaproConfig {
            report_period: VirtualTime::from_ns(period_ns),
            ..VaproConfig::default()
        };
        let mut stgs: Vec<Stg> =
            (0..3).map(|r| looped_stg(r, 30, 1_000_000_000, 0..0)).collect();
        stgs[2] = looped_stg(2, 30, 1_000_000_000, 12..18);
        let frames = period_frames(&stgs, 6, period_ns);

        let run = |deliveries: Vec<&Vec<u8>>| -> (Vec<WindowReport>, IngestStats) {
            let mut ingestor = WindowedIngestor::new(3, 8, cfg.clone());
            let mut reports = Vec::new();
            for frame in deliveries {
                match ingestor.push_encoded(frame) {
                    Ok(r) => reports.extend(r),
                    Err(WireError::DuplicateSequence { .. }) => {}
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            }
            let stats = ingestor.stats().clone();
            reports.extend(ingestor.finish());
            (reports, stats)
        };

        let in_order: Vec<&Vec<u8>> = frames.iter().flatten().collect();
        let (reference, ref_stats) = run(in_order);
        assert_eq!(ref_stats.duplicate_frames, 0);

        // Adversarial: reverse periods pairwise per rank, interleave
        // ranks back-to-front, duplicate every third frame.
        let mut adversarial: Vec<&Vec<u8>> = Vec::new();
        for pair in frames.chunks(2) {
            for rank in (0..3).rev() {
                for period in pair.iter().rev() {
                    adversarial.push(&period[rank]);
                }
            }
        }
        let dups: Vec<&Vec<u8>> =
            adversarial.iter().step_by(3).copied().collect();
        for (i, d) in dups.into_iter().enumerate() {
            adversarial.insert(i * 4 + 1, d);
        }
        let (got, got_stats) = run(adversarial);
        assert!(got_stats.duplicate_frames > 0, "duplicates not detected");

        assert_eq!(got.len(), reference.len());
        for (g, w) in got.iter().zip(&reference) {
            assert_eq!(g.window, w.window);
            assert_results_identical(&g.result, &w.result);
            assert_eq!(g.diagnoses, w.diagnoses);
            // Everything in coverage except the duplicate counter (which
            // records the retransmissions themselves) matches.
            assert_eq!(g.coverage.ranks_complete, w.coverage.ranks_complete);
            assert_eq!(g.coverage.ranks_absent, w.coverage.ranks_absent);
            assert_eq!(g.coverage.ranks_dead, w.coverage.ranks_dead);
            assert_eq!(g.coverage.seq_gaps, w.coverage.seq_gaps);
            assert_eq!(g.coverage.completeness.to_bits(), w.coverage.completeness.to_bits());
        }
        assert!(got.iter().any(|r| !r.result.comp_regions.is_empty()));
    }

    #[test]
    fn backpressure_cap_drops_and_accounts_ahead_frames() {
        // Rank 0 races 8 periods ahead of rank 1 under a tiny buffer
        // cap: ahead frames beyond the cap are dropped and accounted,
        // marks keep advancing, and once rank 1 catches up all windows
        // still close (with the loss visible in coverage).
        let period_ns = 5_000_000_000u64;
        let mut cfg = VaproConfig {
            report_period: VirtualTime::from_ns(period_ns),
            ..VaproConfig::default()
        };
        cfg.fault.max_buffered_bytes = Some(600);
        let stgs: Vec<Stg> =
            (0..2).map(|r| looped_stg(r, 40, 1_000_000_000, 0..0)).collect();
        let frames = period_frames(&stgs, 8, period_ns);

        let mut ingestor = WindowedIngestor::new(2, 8, cfg);
        // All of rank 0 first (everything past the first frames is ahead
        // of the zero watermark), then all of rank 1.
        for period in &frames {
            ingestor.push_encoded(&period[0]).expect("rank 0 frame");
        }
        let stats_mid = ingestor.stats().clone();
        assert!(stats_mid.dropped_backpressure_frames > 0, "cap never tripped");
        assert!(stats_mid.dropped_backpressure_bytes > 0);
        assert!(ingestor.buffered_ahead_bytes() <= 600);
        let mut reports = Vec::new();
        for period in &frames {
            reports.extend(ingestor.push_encoded(&period[1]).expect("rank 1 frame"));
        }
        assert!(!reports.is_empty(), "watermark stalled after drops");
        reports.extend(ingestor.finish());
        let last = reports.last().unwrap();
        assert!(last.coverage.dropped_backpressure_frames >= 1);
        assert!(last.coverage.is_degraded());
    }

    #[test]
    fn decode_rejections_are_counted_not_swallowed() {
        let cfg = VaproConfig {
            report_period: VirtualTime::from_secs(5),
            ..VaproConfig::default()
        };
        let stg = looped_stg(0, 10, 1_000_000_000, 0..0);
        let window = Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(5) };
        let frame = FragmentBatch::from_stg_starting_in(&stg, 0, window)
            .with_seq(1)
            .encode();

        let mut ingestor = WindowedIngestor::new(1, 8, cfg);
        // Corrupt frame: counted as corrupt, error names the claimed
        // rank and sequence.
        let mut corrupt = frame.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        match ingestor.push_encoded(&corrupt) {
            Err(WireError::BadChecksum { rank, seq }) => {
                assert_eq!((rank, seq), (0, 1));
            }
            other => panic!("expected BadChecksum, got {other:?}"),
        }
        // Clean frame admits; its retransmit is a counted duplicate.
        ingestor.push_encoded(&frame).expect("clean frame");
        assert_eq!(
            ingestor.push_encoded(&frame).unwrap_err(),
            WireError::DuplicateSequence { rank: 0, seq: 1 }
        );
        let stats = ingestor.stats();
        assert_eq!(stats.corrupt_frames, 1);
        assert_eq!(stats.duplicate_frames, 1);
        assert_eq!(stats.frames_admitted, 1);
        assert_eq!(stats.frames_rejected(), 2);
        let line = stats.to_string();
        assert!(line.contains("1 corrupt") && line.contains("1 duplicate"), "{line}");
        // The counters reach the next closed window's coverage. The
        // pipeline may defer the first window's report (sealed before
        // the duplicate arrived) to `finish`, so the window that closed
        // *after* the rejections is the last one.
        let reports = ingestor.finish();
        assert!(!reports.is_empty());
        let last = reports.last().unwrap();
        assert_eq!(last.coverage.corrupt_frames, 1);
        assert_eq!(last.coverage.duplicate_frames, 1);
        assert!(last.coverage.is_degraded());
    }

    #[test]
    fn tree_aggregation_equals_flat_merge() {
        use crate::detect::heatmap::HeatMap;
        use crate::detect::normalize::PerfPoint;
        // Five servers each hold a slab; the tree root must equal the
        // flat accumulation.
        let geometry = || HeatMap::new(VirtualTime::ZERO, 100, 8, 4);
        let mut slabs = vec![];
        let mut flat = geometry();
        for s in 0..5usize {
            let mut hm = geometry();
            let p = PerfPoint {
                rank: s % 4,
                start: VirtualTime::from_ns(s as u64 * 100),
                end: VirtualTime::from_ns(s as u64 * 100 + 100),
                perf: 0.2 * (s + 1) as f64,
                loss_ns: 10.0,
            };
            hm.add_point(&p);
            flat.add_point(&p);
            slabs.push(hm);
        }
        let root = tree_aggregate(slabs).unwrap();
        for r in 0..4 {
            for b in 0..8 {
                assert_eq!(root.perf(r, b), flat.perf(r, b), "cell ({r},{b})");
                assert_eq!(root.loss_ns(r, b), flat.loss_ns(r, b));
            }
        }
        assert!(tree_aggregate(vec![]).is_none());
    }
}
