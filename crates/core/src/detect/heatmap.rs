//! The rank × time heat map of normalised performance — the paper's
//! primary visualisation (Figs. 9, 12, 13, 15, 17, 18).
//!
//! Each cell aggregates the duration-weighted normalised performance of
//! the fragments overlapping that (rank, time-bin). Cells with no
//! observations are `None` (rendered blank) — the difference between "no
//! coverage" and "performance 1.0" matters for interpreting coverage.

use crate::detect::normalize::PerfPoint;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vapro_sim::VirtualTime;

/// Below this many points the parallel fill paths fall back to the
/// sequential loop — the per-point work is tiny, so small batches lose
/// more to the fan-out than they gain.
const PAR_POINTS_MIN: usize = 2048;

/// Deposit one point into its rank's row slices, distributing its weight
/// across the bins its span overlaps. Row-local so the sequential path
/// and the per-rank parallel path run *the same* code on the same
/// slices — that, plus rank-partitioning keeping each cell's f64
/// accumulation order equal to input order, is what makes
/// [`HeatMap::add_points_par`] bit-identical to [`HeatMap::add_points`].
#[allow(clippy::too_many_arguments)]
fn deposit(
    p: &PerfPoint,
    t0: VirtualTime,
    bin_ns: u64,
    bins: usize,
    weight: &mut [f64],
    weighted_perf: &mut [f64],
    loss: &mut [f64],
) {
    let start = p.start.max(t0);
    let end_ns = p.end.ns();
    if end_ns <= start.ns() {
        return;
    }
    let rel_start = start.ns() - t0.ns();
    let rel_end = (end_ns - t0.ns()).min(bin_ns * bins as u64);
    if rel_end <= rel_start {
        return;
    }
    let total = (p.end.ns() - p.start.ns()) as f64;
    let first_bin = (rel_start / bin_ns) as usize;
    let last_bin = (((rel_end - 1) / bin_ns) as usize).min(bins - 1);
    for bin in first_bin..=last_bin {
        let bin_lo = t0.ns() + bin as u64 * bin_ns;
        let bin_hi = bin_lo + bin_ns;
        let overlap = (end_ns.min(bin_hi) - p.start.ns().max(bin_lo)) as f64;
        if overlap <= 0.0 {
            continue;
        }
        weight[bin] += overlap;
        weighted_perf[bin] += overlap * p.perf;
        loss[bin] += p.loss_ns * overlap / total;
    }
}

/// A dense rank × time grid of aggregated performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatMap {
    /// Start of the covered interval.
    pub t0: VirtualTime,
    /// Width of one time bin, ns.
    pub bin_ns: u64,
    /// Number of time bins (columns).
    pub bins: usize,
    /// Number of ranks (rows).
    pub ranks: usize,
    /// Per-cell accumulated weight (ns of fragment time).
    weight: Vec<f64>,
    /// Per-cell accumulated weight × performance.
    weighted_perf: Vec<f64>,
    /// Per-cell accumulated loss (ns).
    loss: Vec<f64>,
}

impl HeatMap {
    /// An empty map over `[t0, t0 + bins·bin_ns)` for `ranks` rows.
    pub fn new(t0: VirtualTime, bin_ns: u64, bins: usize, ranks: usize) -> Self {
        assert!(bin_ns > 0 && bins > 0 && ranks > 0, "degenerate heat map");
        HeatMap {
            t0,
            bin_ns,
            bins,
            ranks,
            weight: vec![0.0; bins * ranks],
            weighted_perf: vec![0.0; bins * ranks],
            loss: vec![0.0; bins * ranks],
        }
    }

    /// Build a map spanning all the given points, with `bins` columns.
    pub fn spanning(points: &[PerfPoint], bins: usize, ranks: usize) -> Self {
        Self::spanning_impl(points, bins, ranks, false)
    }

    /// [`HeatMap::spanning`] with the parallel fill path — bit-identical
    /// output (see [`HeatMap::add_points_par`]).
    pub fn spanning_par(points: &[PerfPoint], bins: usize, ranks: usize) -> Self {
        Self::spanning_impl(points, bins, ranks, true)
    }

    fn spanning_impl(points: &[PerfPoint], bins: usize, ranks: usize, parallel: bool) -> Self {
        let t0 = points.iter().map(|p| p.start).min().unwrap_or(VirtualTime::ZERO);
        let t1 = points
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(t0 + VirtualTime::from_ns(1));
        let span = (t1.saturating_since(t0)).ns().max(1);
        let bin_ns = span.div_ceil(bins as u64).max(1);
        let mut hm = HeatMap::new(t0, bin_ns, bins, ranks);
        if parallel {
            hm.add_points_par(points);
        } else {
            hm.add_points(points);
        }
        hm
    }

    #[inline]
    fn idx(&self, rank: usize, bin: usize) -> usize {
        rank * self.bins + bin
    }

    /// Add one observation, distributing its weight across the bins its
    /// span overlaps.
    pub fn add_point(&mut self, p: &PerfPoint) {
        if p.rank >= self.ranks {
            return;
        }
        let (lo, hi) = (p.rank * self.bins, (p.rank + 1) * self.bins);
        deposit(
            p,
            self.t0,
            self.bin_ns,
            self.bins,
            &mut self.weight[lo..hi],
            &mut self.weighted_perf[lo..hi],
            &mut self.loss[lo..hi],
        );
    }

    /// Add many observations.
    pub fn add_points(&mut self, points: &[PerfPoint]) {
        for p in points {
            self.add_point(p);
        }
    }

    /// Parallel twin of [`HeatMap::add_points`] for large point sets,
    /// bit-identical to the sequential loop: points are grouped by rank
    /// (preserving input order) and each rank's row is filled by one
    /// task. A cell is only ever touched by its own rank's points, so
    /// every cell sees the exact accumulation sequence the sequential
    /// pass produces — unlike a fold+[`HeatMap::merge`] scheme, which
    /// would reassociate the f64 additions. Small sets (or single-row
    /// maps) take the sequential loop directly.
    pub fn add_points_par(&mut self, points: &[PerfPoint]) {
        if points.len() < PAR_POINTS_MIN || self.ranks < 2 {
            return self.add_points(points);
        }
        let mut by_rank: Vec<(usize, Vec<&PerfPoint>)> =
            (0..self.ranks).map(|r| (r, Vec::new())).collect();
        for p in points {
            if p.rank < self.ranks {
                by_rank[p.rank].1.push(p);
            }
        }
        let (t0, bin_ns, bins) = (self.t0, self.bin_ns, self.bins);
        // Each task copies its rank's current row, deposits its points
        // into the copy, and the rows are written back afterwards — so a
        // cell's f64 additions happen in exactly the sequential order,
        // starting from the cell's existing value.
        let (weight, weighted_perf, loss) = (&self.weight, &self.weighted_perf, &self.loss);
        let rows: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = by_rank
            .into_par_iter()
            .map(|(rank, pts)| {
                let (lo, hi) = (rank * bins, (rank + 1) * bins);
                let mut w = weight[lo..hi].to_vec(); // vapro-lint: allow(R1, owned O(bins) row copy is the parallel-determinism design)
                let mut wp = weighted_perf[lo..hi].to_vec(); // vapro-lint: allow(R1, owned O(bins) row copy is the parallel-determinism design)
                let mut l = loss[lo..hi].to_vec(); // vapro-lint: allow(R1, owned O(bins) row copy is the parallel-determinism design)
                for p in pts {
                    deposit(p, t0, bin_ns, bins, &mut w, &mut wp, &mut l);
                }
                (w, wp, l)
            })
            .collect();
        for (rank, (w, wp, l)) in rows.into_iter().enumerate() {
            let (lo, hi) = (rank * bins, (rank + 1) * bins);
            self.weight[lo..hi].copy_from_slice(&w);
            self.weighted_perf[lo..hi].copy_from_slice(&wp);
            self.loss[lo..hi].copy_from_slice(&l);
        }
    }

    /// Merge another compatible map into this one (same geometry).
    pub fn merge(&mut self, other: &HeatMap) {
        assert_eq!(
            (self.t0, self.bin_ns, self.bins, self.ranks),
            (other.t0, other.bin_ns, other.bins, other.ranks),
            "merging incompatible heat maps"
        );
        for i in 0..self.weight.len() {
            self.weight[i] += other.weight[i];
            self.weighted_perf[i] += other.weighted_perf[i];
            self.loss[i] += other.loss[i];
        }
    }

    /// Mean normalised performance of a cell; `None` when uncovered.
    pub fn perf(&self, rank: usize, bin: usize) -> Option<f64> {
        let i = self.idx(rank, bin);
        if self.weight[i] > 0.0 {
            Some(self.weighted_perf[i] / self.weight[i])
        } else {
            None
        }
    }

    /// Accumulated loss (ns) attributed to a cell.
    pub fn loss_ns(&self, rank: usize, bin: usize) -> f64 {
        self.loss[self.idx(rank, bin)]
    }

    /// Observation weight (fragment-nanoseconds) in a cell.
    pub fn weight_of(&self, rank: usize, bin: usize) -> f64 {
        self.weight[self.idx(rank, bin)]
    }

    /// Fraction of cells with any coverage.
    pub fn coverage(&self) -> f64 {
        let covered = self.weight.iter().filter(|w| **w > 0.0).count();
        covered as f64 / self.weight.len() as f64
    }

    /// Mean performance over all covered cells (weighted).
    pub fn overall_perf(&self) -> f64 {
        let w: f64 = self.weight.iter().sum();
        if w <= 0.0 {
            return 1.0;
        }
        self.weighted_perf.iter().sum::<f64>() / w
    }

    /// The midpoint time of a bin.
    pub fn bin_time(&self, bin: usize) -> VirtualTime {
        self.t0 + VirtualTime::from_ns(bin as u64 * self.bin_ns + self.bin_ns / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(rank: usize, start: u64, end: u64, perf: f64) -> PerfPoint {
        PerfPoint {
            rank,
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(end),
            perf,
            loss_ns: (end - start) as f64 * (1.0 - perf),
        }
    }

    #[test]
    fn empty_cells_are_none() {
        let hm = HeatMap::new(VirtualTime::ZERO, 100, 4, 2);
        assert_eq!(hm.perf(0, 0), None);
        assert_eq!(hm.coverage(), 0.0);
    }

    #[test]
    fn single_point_lands_in_its_bin() {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 4, 2);
        hm.add_point(&pt(1, 210, 260, 0.8));
        assert_eq!(hm.perf(1, 2), Some(0.8));
        assert_eq!(hm.perf(1, 1), None);
        assert_eq!(hm.perf(0, 2), None);
        assert!((hm.weight_of(1, 2) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn spanning_point_distributes_weight() {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 4, 1);
        // 150..350 covers half of bin 1, all of bin 2, half of bin 3.
        hm.add_point(&pt(0, 150, 350, 0.5));
        assert!((hm.weight_of(0, 1) - 50.0).abs() < 1e-9);
        assert!((hm.weight_of(0, 2) - 100.0).abs() < 1e-9);
        assert!((hm.weight_of(0, 3) - 50.0).abs() < 1e-9);
        assert_eq!(hm.perf(0, 2), Some(0.5));
        // Loss distributes proportionally: total 100 ns of loss.
        let total_loss: f64 = (0..4).map(|b| hm.loss_ns(0, b)).sum();
        assert!((total_loss - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cell_mean_is_duration_weighted() {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 1, 1);
        hm.add_point(&pt(0, 0, 80, 1.0)); // 80 ns at 1.0
        hm.add_point(&pt(0, 80, 100, 0.5)); // 20 ns at 0.5
        let expect = (80.0 * 1.0 + 20.0 * 0.5) / 100.0;
        assert!((hm.perf(0, 0).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn spanning_builder_covers_all_points() {
        let pts = vec![pt(0, 0, 100, 1.0), pt(1, 900, 1000, 0.3)];
        let hm = HeatMap::spanning(&pts, 10, 2);
        assert!(hm.coverage() > 0.0);
        assert_eq!(hm.perf(1, 9), Some(0.3));
        assert!(hm.overall_perf() < 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HeatMap::new(VirtualTime::ZERO, 100, 2, 1);
        let mut b = a.clone();
        a.add_point(&pt(0, 0, 100, 1.0));
        b.add_point(&pt(0, 0, 100, 0.5));
        a.merge(&b);
        assert!((a.perf(0, 0).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn parallel_fill_is_bit_identical() {
        // Enough points to clear the parallel threshold, awkward spans
        // (bin-crossing, clipped, out-of-range ranks), interleaved ranks.
        let mut pts = Vec::new();
        for i in 0..3000u64 {
            let rank = (i % 5) as usize; // rank 4 is out of range below
            let start = i * 37 % 9_000;
            let end = start + 23 + i % 311;
            let perf = 0.3 + ((i % 7) as f64) * 0.1;
            pts.push(pt(rank, start, end, perf));
        }
        let mut seq = HeatMap::new(VirtualTime::from_ns(50), 100, 64, 4);
        let mut par = seq.clone();
        seq.add_points(&pts);
        par.add_points_par(&pts);
        assert_eq!(seq, par);
        for rank in 0..4 {
            for bin in 0..64 {
                assert_eq!(
                    seq.weight_of(rank, bin).to_bits(),
                    par.weight_of(rank, bin).to_bits()
                );
                assert_eq!(seq.loss_ns(rank, bin).to_bits(), par.loss_ns(rank, bin).to_bits());
            }
        }
        let s = HeatMap::spanning(&pts, 48, 4);
        let p = HeatMap::spanning_par(&pts, 48, 4);
        assert_eq!(s, p);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let mut hm = HeatMap::new(VirtualTime::ZERO, 100, 2, 1);
        hm.add_point(&pt(5, 0, 100, 0.5));
        assert_eq!(hm.coverage(), 0.0);
    }

    #[test]
    fn points_beyond_the_window_clip() {
        let mut hm = HeatMap::new(VirtualTime::from_ns(100), 100, 2, 1);
        hm.add_point(&pt(0, 0, 150, 0.5)); // starts before the window
        hm.add_point(&pt(0, 250, 400, 0.5)); // extends past the window
        assert!((hm.weight_of(0, 0) - 50.0).abs() < 1e-9);
        assert!((hm.weight_of(0, 1) - 50.0).abs() < 1e-9);
    }
}
