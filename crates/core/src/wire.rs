//! The client → server wire format (paper Fig. 8 / §5: clients ship
//! performance data to dedicated analysis servers each reporting period).
//!
//! A [`FragmentBatch`] is what one rank sends for one reporting period:
//! its rank id, the window bounds, a **label dictionary** (each distinct
//! state label appears once, referenced by dense `u32` id — reusing the
//! [`SymbolTable`] interner), and the fragments grouped per STG location.
//! Edges are `(from, to)` id pairs, so a state label containing `" -> "`
//! can never collide with a transition label.
//!
//! Two serialisations exist:
//!
//! * [`FragmentBatch::encode`] — the production path: a compact
//!   **columnar (SoA) binary layout** with length-prefixed framing
//!   (see the module constants and `DESIGN.md` §“Wire format”). Fragments
//!   are written as contiguous columns (ranks, kinds, starts, ends,
//!   counter sets, counter values, argument vectors), which is both
//!   several times smaller and several times faster to decode than JSON.
//! * [`FragmentBatch::to_json_bytes`] — a JSON fallback kept for
//!   debugging; it serialises the same structure via serde.
//!
//! ```text
//! frame   := payload_len:u32 payload
//! payload := magic "VPRW" | version:u8 (=2)
//!          | crc32:u32             -- IEEE CRC-32 of every payload byte
//!          | seq:u64                  after the crc field (0 = unsequenced)
//!          | rank:u32 | window_start_ns:u64 | window_end_ns:u64
//!          | nlabels:u32 | nlabels × (len:u32, utf-8 bytes)
//!          | nvgroups:u32 | nvgroups × (label:u32, count:u32)
//!          | negroups:u32 | negroups × (from:u32, to:u32, count:u32)
//!          | nfrags:u32            -- Σ counts, vertex groups then edge
//!          | ranks:   nfrags × u32    groups, fragments in group order
//!          | kinds:   nfrags × u8
//!          | starts:  nfrags × u64
//!          | ends:    nfrags × u64
//!          | csets:   nfrags × u32    -- CounterSet bitmask over ALL
//!          | ncvals:u32 | cvals: ncvals × f64   -- active counters only
//!          | nargcs:  nfrags × u16
//!          | nargs:u32  | args:  nargs × f64
//! ```
//!
//! All integers and floats are little-endian.
//!
//! **Integrity (format v2).** Each frame carries an IEEE CRC-32 over the
//! payload (computed over everything after the checksum field) so a
//! bit-flipped frame is rejected as [`WireError::BadChecksum`] instead of
//! being misparsed, plus a per-rank monotonic sequence number so the
//! server can deduplicate retransmitted batches and detect gaps left by
//! dropped frames. Sequence `0` means "unsequenced": the frame opts out
//! of duplicate/gap tracking (and every decoded v1 frame reports it).
//! Version-1 frames (no checksum, no sequence number) still decode; the
//! legacy layout can be produced with [`FragmentBatch::encode_v1`] for
//! compatibility tests and overhead baselines.

use crate::detect::window::Window;
use crate::fragment::{Fragment, FragmentKind};
use crate::intern::{Sym, SymbolTable};
use crate::stg::Stg;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::{Mutex, OnceLock};
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::VirtualTime;

/// Frame magic: identifies a Vapro wire payload.
pub const WIRE_MAGIC: [u8; 4] = *b"VPRW";
/// Current wire-format version byte (CRC-32 + sequence numbers).
pub const WIRE_VERSION: u8 = 2;
/// The legacy pre-integrity version byte; still decodable.
pub const WIRE_VERSION_V1: u8 = 1;
/// The fleet version byte: the v2 layout plus a `(tenant_id, job_id)`
/// routing header between the sequence number and the body, so one
/// ingest plane can serve many jobs across tenants. v1/v2 frames still
/// decode, mapping to [`DEFAULT_TENANT`]/[`DEFAULT_JOB`].
pub const WIRE_VERSION_V3: u8 = 3;
/// The sequence number meaning "unsequenced": the sender opted out of
/// duplicate and gap tracking. Decoded v1 frames always carry it.
pub const SEQ_UNSEQUENCED: u64 = 0;
/// The tenant every pre-v3 frame decodes to: single-tenant deployments
/// never mention tenancy and keep working unchanged.
pub const DEFAULT_TENANT: u32 = 0;
/// The job every pre-v3 frame decodes to.
pub const DEFAULT_JOB: u32 = 0;

/// IEEE CRC-32 (the Ethernet/zlib polynomial), slice-by-8 so checksum
/// cost stays a small fraction of the columnar decode itself. Tables are
/// built at compile time; no external crate needed.
pub mod crc32 {
    const POLY: u32 = 0xEDB8_8320;

    const fn build_tables() -> [[u32; 256]; 8] {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                bit += 1;
            }
            tables[0][i] = crc;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    }

    static TABLES: [[u32; 256]; 8] = build_tables();

    /// One slicing-table lookup with both indices masked into range.
    #[inline]
    fn tab(t: usize, b: u64) -> u32 {
        // vapro-lint: allow(R5, mask-bounded lookup: t & 7 < 8 and b & 0xFF < 256)
        TABLES[t & 7][(b & 0xFF) as usize]
    }

    /// Checksum of `bytes`.
    pub fn checksum(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // vapro-lint: allow(R5, chunks_exact(8) yields exactly 8 bytes)
            let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes")) ^ crc as u64;
            crc = tab(7, v)
                ^ tab(6, v >> 8)
                ^ tab(5, v >> 16)
                ^ tab(4, v >> 24)
                ^ tab(3, v >> 32)
                ^ tab(2, v >> 40)
                ^ tab(1, v >> 48)
                ^ tab(0, v >> 56);
        }
        for &b in chunks.remainder() {
            crc = tab(0, (crc ^ b as u32) as u64) ^ (crc >> 8);
        }
        !crc
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn matches_the_reference_vector() {
            // The canonical IEEE CRC-32 check value.
            assert_eq!(super::checksum(b"123456789"), 0xCBF4_3926);
            assert_eq!(super::checksum(b""), 0);
        }

        #[test]
        fn slice_by_8_equals_bytewise() {
            // Cross-check the widened kernel against the plain table walk
            // on lengths straddling the 8-byte boundary.
            let data: Vec<u8> = (0u32..97).map(|i| (i * 131 % 251) as u8).collect();
            for len in 0..data.len() {
                let bytes = &data[..len];
                let mut crc = !0u32;
                for &b in bytes {
                    crc = super::TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
                }
                assert_eq!(super::checksum(bytes), !crc, "len {len}");
            }
        }
    }
}

/// The invocation fragments of one state (STG vertex), by dictionary id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VertexGroup {
    /// Dictionary id of the state label.
    pub label: Sym,
    /// Invocation fragments observed in this state.
    pub fragments: Vec<Fragment>,
}

/// The computation fragments of one transition (STG edge), by endpoint
/// dictionary ids — never a formatted `"from -> to"` string, so labels
/// containing `" -> "` cannot collide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeGroup {
    /// Dictionary id of the source state label.
    pub from: Sym,
    /// Dictionary id of the destination state label.
    pub to: Sym,
    /// Computation fragments observed on this transition.
    pub fragments: Vec<Fragment>,
}

/// One rank's shipped data for one reporting window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentBatch {
    /// Originating rank.
    pub rank: usize,
    /// Per-rank monotonic sequence number; [`SEQ_UNSEQUENCED`] (0) opts
    /// out of duplicate/gap tracking. Sequenced senders start at 1.
    pub seq: u64,
    /// Owning tenant, for fleet routing and admission. Only carried on
    /// the wire by v3 frames; v1/v2 decode to [`DEFAULT_TENANT`].
    pub tenant_id: u32,
    /// Job within the tenant; v1/v2 frames decode to [`DEFAULT_JOB`].
    pub job_id: u32,
    /// Window start, ns.
    pub window_start_ns: u64,
    /// Window end, ns.
    pub window_end_ns: u64,
    /// Label dictionary: each distinct state label once; groups refer to
    /// labels by index.
    pub labels: Vec<String>,
    /// Invocation fragments per state.
    pub vertex_groups: Vec<VertexGroup>,
    /// Computation fragments per transition.
    pub edge_groups: Vec<EdgeGroup>,
}

/// Decoding or admission failure of a binary wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer cannot hold the frame its length prefix declares (or is
    /// too short for the prefix itself).
    ShortFrame {
        /// Bytes the length prefix declared (prefix included), if it could
        /// even be read.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload ended before a field did.
    Truncated,
    /// The payload does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The version byte is not one this decoder understands.
    BadVersion {
        /// The version byte found on the wire.
        got: u8,
        /// The newest version this decoder supports.
        supported: u8,
    },
    /// The payload checksum does not match its CRC-32 field: the frame
    /// was corrupted in flight. Rank and sequence are best-effort reads
    /// of the (untrusted) header, for log attribution.
    BadChecksum {
        /// Claimed originating rank.
        rank: u32,
        /// Claimed sequence number.
        seq: u64,
    },
    /// A frame claims a rank outside the deployment the ingestor was
    /// configured for. Hostile or misrouted input, rejected at admission.
    UnknownRank {
        /// The rank the frame claimed.
        rank: u32,
        /// The configured deployment size.
        nranks: u32,
    },
    /// A frame claims a tenant the fleet has no registration for.
    /// Hostile or misrouted input, rejected at fleet admission.
    UnknownTenant {
        /// The tenant the frame claimed.
        tenant: u32,
    },
    /// A frame would push its tenant past the byte budget the fleet
    /// admitted it with. Structured fair-backpressure rejection: the
    /// sender must back off, other tenants are unaffected.
    TenantOverBudget {
        /// The over-budget tenant.
        tenant: u32,
        /// The tenant's configured budget, bytes.
        budget_bytes: u64,
        /// Bytes the tenant would have had in flight had the frame
        /// been admitted.
        requested_bytes: u64,
    },
    /// A sequenced frame re-used a sequence number the server has already
    /// admitted for that rank — a retransmission, dropped on arrival.
    DuplicateSequence {
        /// Originating rank.
        rank: u32,
        /// The repeated sequence number.
        seq: u64,
    },
    /// A dictionary label is not valid UTF-8.
    BadUtf8,
    /// A fragment-kind byte outside the known range.
    BadKind(u8),
    /// A group references a label id outside the dictionary.
    BadLabelId(Sym),
    /// Column lengths disagree with the group counts.
    CountMismatch,
    /// Bytes left over after a single-frame decode.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::ShortFrame { declared, available } => write!(
                f,
                "frame declares {declared} bytes but only {available} are available"
            ),
            WireError::Truncated => write!(f, "truncated wire frame"),
            WireError::BadMagic => write!(f, "bad wire magic"),
            WireError::BadVersion { got, supported } => {
                write!(f, "unsupported wire version {got} (decoder supports <= {supported})")
            }
            WireError::BadChecksum { rank, seq } => write!(
                f,
                "checksum mismatch on frame claiming rank {rank} seq {seq}"
            ),
            WireError::UnknownRank { rank, nranks } => {
                write!(f, "frame from unknown rank {rank} (deployment has {nranks} ranks)")
            }
            WireError::UnknownTenant { tenant } => {
                write!(f, "frame from unregistered tenant {tenant}")
            }
            WireError::TenantOverBudget { tenant, budget_bytes, requested_bytes } => write!(
                f,
                "tenant {tenant} over budget: {requested_bytes} B in flight \
                 would exceed the {budget_bytes} B admission budget"
            ),
            WireError::DuplicateSequence { rank, seq } => {
                write!(f, "duplicate frame from rank {rank} seq {seq}")
            }
            WireError::BadUtf8 => write!(f, "dictionary label is not UTF-8"),
            WireError::BadKind(k) => write!(f, "unknown fragment kind byte {k}"),
            WireError::BadLabelId(id) => write!(f, "label id {id} outside dictionary"),
            WireError::CountMismatch => write!(f, "column length does not match group counts"),
            WireError::TrailingBytes => write!(f, "trailing bytes after frame"),
        }
    }
}

impl std::error::Error for WireError {}

fn kind_to_byte(kind: FragmentKind) -> u8 {
    match kind {
        FragmentKind::Computation => 0,
        FragmentKind::Communication => 1,
        FragmentKind::Io => 2,
        FragmentKind::Other => 3,
    }
}

fn kind_from_byte(b: u8) -> Result<FragmentKind, WireError> {
    Ok(match b {
        0 => FragmentKind::Computation,
        1 => FragmentKind::Communication,
        2 => FragmentKind::Io,
        3 => FragmentKind::Other,
        other => return Err(WireError::BadKind(other)),
    })
}

fn counter_set_bits(c: &CounterDelta) -> u32 {
    let mut bits = 0u32;
    for (id, _) in c.entries() {
        bits |= 1 << id.index();
    }
    bits
}

/// Exact wire cost of one fragment record in the columnar layout:
/// rank (4) + kind (1) + start (8) + end (8) + counter set (4) +
/// 8 bytes per active counter + arg count (2) + 8 bytes per argument.
/// This is what the collector's storage-overhead accounting charges per
/// recorded fragment (the framing, header and dictionary amortise to
/// noise over a reporting period).
pub fn fragment_wire_bytes(f: &Fragment) -> u64 {
    let counters = f.counters.entries().count() as u64;
    4 + 1 + 8 + 8 + 4 + 8 * counters + 2 + 8 * f.args.len() as u64
}

/// Every fragment record occupies at least rank (4) + kind (1) +
/// start (8) + end (8) + counter set (4) + arg count (2) bytes in the
/// column section; the decoder's anti-OOM guard sizes claimed counts
/// against this floor.
const MIN_BYTES_PER_FRAG: u64 = 4 + 1 + 8 + 8 + 4 + 2;

// --------------------------------------------------------------------
// Little-endian cursor helpers. Encoding writes into one growing Vec;
// decoding advances a borrowed slice. Both are branch-light and never
// allocate beyond the output collections themselves.

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let (head, tail) = self.buf.split_at_checked(n).ok_or(WireError::Truncated)?;
        self.buf = tail;
        Ok(head)
    }

    /// Fixed-size read. The `try_into` cannot fail after a successful
    /// `take`, but the decode path is total by construction: every
    /// conversion maps to an error instead of trusting a length.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
}

impl FragmentBatch {
    /// Extract a rank's batch for `window` from its STG: every fragment
    /// *overlapping* the window. Used for one-shot analyses; periodic
    /// shipping should use [`FragmentBatch::from_stg_starting_in`] so
    /// consecutive batches partition the fragments.
    pub fn from_stg(stg: &Stg, rank: usize, window: Window) -> FragmentBatch {
        Self::from_stg_filtered(stg, rank, window, |f| window.overlaps(f.start, f.end))
    }

    /// Extract the batch a client ships for one reporting period: the
    /// fragments whose *start* lies in `[window.start, window.end)`.
    /// Unlike [`FragmentBatch::from_stg`], consecutive periods partition
    /// the fragment population — nothing is shipped twice.
    pub fn from_stg_starting_in(stg: &Stg, rank: usize, window: Window) -> FragmentBatch {
        Self::from_stg_filtered(stg, rank, window, |f| {
            f.start >= window.start && f.start < window.end
        })
    }

    fn from_stg_filtered(
        stg: &Stg,
        rank: usize,
        window: Window,
        keep: impl Fn(&Fragment) -> bool,
    ) -> FragmentBatch {
        let mut dict: SymbolTable<String> = SymbolTable::new();
        // Lazily intern vertex labels: only states that actually appear
        // (as a non-empty vertex or an edge endpoint) enter the dictionary.
        let mut syms: Vec<Option<Sym>> = vec![None; stg.num_states()];
        let mut sym_of = |state: usize, dict: &mut SymbolTable<String>| -> Sym {
            if let Some(s) = syms[state] {
                return s;
            }
            let s = dict.intern(stg.vertices()[state].key.label());
            syms[state] = Some(s);
            s
        };
        let mut vertex_groups = Vec::new();
        for (id, v) in stg.vertices().iter().enumerate() {
            let fragments: Vec<Fragment> = v
                .fragments
                .iter()
                .filter(|f| keep(f))
                .cloned() // vapro-lint: allow(R1, client-side period extraction builds the one owned batch each report ships)
                .collect();
            if !fragments.is_empty() {
                let label = sym_of(id, &mut dict);
                vertex_groups.push(VertexGroup { label, fragments });
            }
        }
        let mut edge_groups = Vec::new();
        for e in stg.edges() {
            let fragments: Vec<Fragment> = e
                .fragments
                .iter()
                .filter(|f| keep(f))
                .cloned() // vapro-lint: allow(R1, client-side period extraction builds the one owned batch each report ships)
                .collect();
            if !fragments.is_empty() {
                let from = sym_of(e.from, &mut dict);
                let to = sym_of(e.to, &mut dict);
                edge_groups.push(EdgeGroup { from, to, fragments });
            }
        }
        FragmentBatch {
            rank,
            seq: SEQ_UNSEQUENCED,
            tenant_id: DEFAULT_TENANT,
            job_id: DEFAULT_JOB,
            window_start_ns: window.start.ns(),
            window_end_ns: window.end.ns(),
            labels: dict.into_keys(),
            vertex_groups,
            edge_groups,
        }
    }

    /// Stamp the batch with a sequence number (builder style). Sequenced
    /// senders number their frames 1, 2, 3, … per rank; `0` keeps the
    /// batch unsequenced.
    pub fn with_seq(mut self, seq: u64) -> FragmentBatch {
        self.seq = seq;
        self
    }

    /// Stamp the batch with its fleet routing identity (builder style).
    /// Only v3 frames carry the stamp on the wire; encoding a stamped
    /// batch as v1/v2 silently drops it (the decoder restores the
    /// defaults), so fleet senders must encode v3.
    pub fn with_job(mut self, tenant_id: u32, job_id: u32) -> FragmentBatch {
        self.tenant_id = tenant_id;
        self.job_id = job_id;
        self
    }

    /// Resolve a dictionary id to its label.
    pub fn label(&self, id: Sym) -> &str {
        &self.labels[id as usize]
    }

    /// Total fragments in the batch.
    pub fn len(&self) -> usize {
        self.vertex_groups.iter().map(|g| g.fragments.len()).sum::<usize>()
            + self.edge_groups.iter().map(|g| g.fragments.len()).sum::<usize>()
    }

    /// Empty batch?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn fragments(&self) -> impl Iterator<Item = &Fragment> {
        self.vertex_groups
            .iter()
            .flat_map(|g| g.fragments.iter())
            .chain(self.edge_groups.iter().flat_map(|g| g.fragments.iter()))
    }

    /// Append one length-prefixed binary frame to `out`. This is the
    /// allocation-lean streaming entry point: the caller reuses one
    /// buffer across batches.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        let payload_start = out.len();

        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        let crc_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // checksum, patched below
        let checked_start = out.len();
        out.extend_from_slice(&self.seq.to_le_bytes());
        self.encode_body(out);

        let crc = crc32::checksum(&out[checked_start..]);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        let payload_len = u32::try_from(out.len() - payload_start).expect("frame fits u32");
        out[len_pos..len_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Append one length-prefixed **v3** frame: the v2 layout plus the
    /// `(tenant_id, job_id)` routing header between the sequence number
    /// and the body, both covered by the checksum. The entry point fleet
    /// senders use; single-tenant senders can keep shipping v2.
    pub fn encode_into_v3(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        let payload_start = out.len();

        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION_V3);
        let crc_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // checksum, patched below
        let checked_start = out.len();
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tenant_id.to_le_bytes());
        out.extend_from_slice(&self.job_id.to_le_bytes());
        self.encode_body(out);

        let crc = crc32::checksum(&out[checked_start..]);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        let payload_len = u32::try_from(out.len() - payload_start).expect("frame fits u32");
        out[len_pos..len_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Serialise to one length-prefixed **v3** binary frame (see
    /// [`FragmentBatch::encode_into_v3`]).
    pub fn encode_v3(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * 40);
        self.encode_into_v3(&mut out);
        out
    }

    /// Append one frame in the **legacy v1 layout** (no checksum, no
    /// sequence number). Kept for cross-version compatibility tests and
    /// for measuring the integrity overhead against a v1 baseline.
    pub fn encode_into_v1(&self, out: &mut Vec<u8>) {
        let len_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // patched below
        let payload_start = out.len();

        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION_V1);
        self.encode_body(out);

        let payload_len = u32::try_from(out.len() - payload_start).expect("frame fits u32");
        out[len_pos..len_pos + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Serialise to one length-prefixed **v1** binary frame (see
    /// [`FragmentBatch::encode_into_v1`]).
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * 40);
        self.encode_into_v1(&mut out);
        out
    }

    /// The version-independent payload body: rank, window bounds, label
    /// dictionary, group heads and fragment columns.
    fn encode_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::try_from(self.rank).expect("rank fits u32").to_le_bytes());
        out.extend_from_slice(&self.window_start_ns.to_le_bytes());
        out.extend_from_slice(&self.window_end_ns.to_le_bytes());

        out.extend_from_slice(
            &u32::try_from(self.labels.len()).expect("dictionary fits u32").to_le_bytes(),
        );
        for label in &self.labels {
            let bytes = label.as_bytes();
            out.extend_from_slice(
                &u32::try_from(bytes.len()).expect("label fits u32").to_le_bytes(),
            );
            out.extend_from_slice(bytes);
        }

        out.extend_from_slice(
            &u32::try_from(self.vertex_groups.len()).expect("groups fit u32").to_le_bytes(),
        );
        for g in &self.vertex_groups {
            out.extend_from_slice(&g.label.to_le_bytes());
            out.extend_from_slice(
                &u32::try_from(g.fragments.len()).expect("pool fits u32").to_le_bytes(),
            );
        }
        out.extend_from_slice(
            &u32::try_from(self.edge_groups.len()).expect("groups fit u32").to_le_bytes(),
        );
        for g in &self.edge_groups {
            out.extend_from_slice(&g.from.to_le_bytes());
            out.extend_from_slice(&g.to.to_le_bytes());
            out.extend_from_slice(
                &u32::try_from(g.fragments.len()).expect("pool fits u32").to_le_bytes(),
            );
        }

        let nfrags = self.len();
        out.extend_from_slice(&u32::try_from(nfrags).expect("batch fits u32").to_le_bytes());
        // Columns. Each pass walks the fragments in group order, so the
        // column offsets line up on decode without any per-fragment index.
        for f in self.fragments() {
            out.extend_from_slice(
                &u32::try_from(f.rank).expect("rank fits u32").to_le_bytes(),
            );
        }
        for f in self.fragments() {
            out.push(kind_to_byte(f.kind));
        }
        for f in self.fragments() {
            out.extend_from_slice(&f.start.ns().to_le_bytes());
        }
        for f in self.fragments() {
            out.extend_from_slice(&f.end.ns().to_le_bytes());
        }
        for f in self.fragments() {
            out.extend_from_slice(&counter_set_bits(&f.counters).to_le_bytes());
        }
        let ncvals: usize = self.fragments().map(|f| f.counters.entries().count()).sum();
        out.extend_from_slice(&u32::try_from(ncvals).expect("values fit u32").to_le_bytes());
        for f in self.fragments() {
            for (_, v) in f.counters.entries() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        for f in self.fragments() {
            out.extend_from_slice(
                &u16::try_from(f.args.len()).expect("at most 65535 args").to_le_bytes(),
            );
        }
        let nargs: usize = self.fragments().map(|f| f.args.len()).sum();
        out.extend_from_slice(&u32::try_from(nargs).expect("args fit u32").to_le_bytes());
        for f in self.fragments() {
            for a in &f.args {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
    }

    /// Serialise to one length-prefixed binary frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * 40);
        self.encode_into(&mut out);
        out
    }

    /// Decode exactly one binary frame; trailing bytes are an error.
    /// For a buffer holding several frames use [`decode_stream`].
    ///
    /// This is the ingest-facing entry point (solo and fleet admission
    /// both come through here), so it is where wire rejections register
    /// as VOPR fault points: corrupt (checksum) and structural
    /// (everything else) rejects are counted separately.
    pub fn decode(bytes: &[u8]) -> Result<FragmentBatch, WireError> {
        use crate::vopr::fault_points::{hit, FaultPoint};
        let (batch, consumed) = match Self::decode_frame(bytes) {
            Ok(ok) => ok,
            Err(e) => {
                hit(match e {
                    WireError::BadChecksum { .. } => FaultPoint::WireCorruptReject,
                    _ => FaultPoint::WireStructuralReject,
                });
                return Err(e);
            }
        };
        if consumed != bytes.len() {
            hit(FaultPoint::WireStructuralReject);
            return Err(WireError::TrailingBytes);
        }
        Ok(batch)
    }

    /// Decode the first frame of `bytes`, returning the batch and the
    /// number of bytes consumed (frame prefix included).
    pub fn decode_frame(bytes: &[u8]) -> Result<(FragmentBatch, usize), WireError> {
        let prefix: [u8; 4] = bytes
            .get(..4)
            .and_then(|p| p.try_into().ok())
            .ok_or(WireError::ShortFrame { declared: 4, available: bytes.len() })?;
        let payload_len = u32::from_le_bytes(prefix) as usize;
        let declared = 4usize.saturating_add(payload_len);
        let payload = bytes
            .get(4..declared)
            .ok_or(WireError::ShortFrame { declared, available: bytes.len() })?;
        let batch = Self::decode_payload(payload)?;
        Ok((batch, declared))
    }

    fn decode_payload(payload: &[u8]) -> Result<FragmentBatch, WireError> {
        let mut r = Reader { buf: payload };
        if r.take(4)? != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        let (seq, tenant_id, job_id) = match version {
            WIRE_VERSION_V1 => (SEQ_UNSEQUENCED, DEFAULT_TENANT, DEFAULT_JOB),
            WIRE_VERSION | WIRE_VERSION_V3 => {
                let claimed_crc = r.u32()?;
                // Everything after the checksum field is covered: verify
                // before trusting a single body byte. The `SkipCrcCheck`
                // canary (vopr-canary builds only) suppresses exactly
                // this rejection; the VOPR harness must notice the
                // corrupt frames it then admits.
                if crc32::checksum(r.buf) != claimed_crc
                    && !crate::vopr::canary::armed(crate::vopr::canary::Canary::SkipCrcCheck)
                {
                    // Best-effort attribution from the (untrusted) header
                    // for log lines; zeros if the frame is too short.
                    let mut peek = Reader { buf: r.buf };
                    let seq = peek.u64().unwrap_or(0);
                    if version == WIRE_VERSION_V3 {
                        // Skip the routing header to reach the rank.
                        let _ = peek.u32();
                        let _ = peek.u32();
                    }
                    let rank = peek.u32().unwrap_or(0);
                    return Err(WireError::BadChecksum { rank, seq });
                }
                let seq = r.u64()?;
                if version == WIRE_VERSION_V3 {
                    (seq, r.u32()?, r.u32()?)
                } else {
                    (seq, DEFAULT_TENANT, DEFAULT_JOB)
                }
            }
            got => return Err(WireError::BadVersion { got, supported: WIRE_VERSION_V3 }),
        };
        let rank = r.u32()? as usize;
        let window_start_ns = r.u64()?;
        let window_end_ns = r.u64()?;

        let nlabels = r.u32()? as usize;
        let mut labels = Vec::with_capacity(nlabels.min(payload.len()));
        for _ in 0..nlabels {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            labels.push(
                std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?.to_string(),
            );
        }
        let check_label = |id: Sym| {
            if (id as usize) < labels.len() {
                Ok(id)
            } else {
                Err(WireError::BadLabelId(id))
            }
        };

        let nvgroups = r.u32()? as usize;
        let mut vheads = Vec::with_capacity(nvgroups.min(payload.len()));
        for _ in 0..nvgroups {
            let label = check_label(r.u32()?)?;
            let count = r.u32()? as usize;
            vheads.push((label, count));
        }
        let negroups = r.u32()? as usize;
        let mut eheads = Vec::with_capacity(negroups.min(payload.len()));
        for _ in 0..negroups {
            let from = check_label(r.u32()?)?;
            let to = check_label(r.u32()?)?;
            let count = r.u32()? as usize;
            eheads.push((from, to, count));
        }

        let nfrags = r.u32()? as usize;
        let vcount: usize = vheads.iter().map(|&(_, c)| c).sum();
        let ecount: usize = eheads.iter().map(|&(_, _, c)| c).sum();
        if nfrags != vcount.saturating_add(ecount) {
            return Err(WireError::CountMismatch);
        }
        // Reject a claimed count the buffer cannot possibly hold *before*
        // sizing any column Vec, so a tiny malformed frame claiming ~4
        // billion fragments errors out instead of forcing a multi-GB
        // allocation.
        if (nfrags as u64).saturating_mul(MIN_BYTES_PER_FRAG) > r.buf.len() as u64 {
            return Err(WireError::Truncated);
        }

        // Columns, in layout order.
        let mut ranks = Vec::with_capacity(nfrags);
        for _ in 0..nfrags {
            ranks.push(r.u32()? as usize);
        }
        let kind_bytes = r.take(nfrags)?;
        let mut kinds = Vec::with_capacity(nfrags);
        for &b in kind_bytes {
            kinds.push(kind_from_byte(b)?);
        }
        let mut starts = Vec::with_capacity(nfrags);
        for _ in 0..nfrags {
            starts.push(r.u64()?);
        }
        let mut ends = Vec::with_capacity(nfrags);
        for _ in 0..nfrags {
            ends.push(r.u64()?);
        }
        let mut csets = Vec::with_capacity(nfrags);
        for _ in 0..nfrags {
            csets.push(r.u32()?);
        }
        let ncvals = r.u32()? as usize;
        if ncvals != csets.iter().map(|b| b.count_ones() as usize).sum::<usize>() {
            return Err(WireError::CountMismatch);
        }
        let mut counters = Vec::with_capacity(nfrags);
        for &bits in &csets {
            let mut delta = CounterDelta::default();
            for id in CounterId::ALL {
                if bits & (1 << id.index()) != 0 {
                    delta.put(id, r.f64()?);
                }
            }
            counters.push(delta);
        }
        let mut argcs = Vec::with_capacity(nfrags);
        for _ in 0..nfrags {
            argcs.push(r.u16()? as usize);
        }
        let nargs = r.u32()? as usize;
        if nargs != argcs.iter().sum::<usize>() {
            return Err(WireError::CountMismatch);
        }
        let mut args = Vec::with_capacity(nfrags);
        for &n in &argcs {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            args.push(v);
        }
        if !r.buf.is_empty() {
            return Err(WireError::TrailingBytes);
        }

        // Reassemble fragments from the columns, in group order. The zip
        // ends with the shortest column; group counts were validated
        // against nfrags above, so running dry maps to CountMismatch
        // rather than any panic.
        let mut cols = ranks
            .into_iter()
            .zip(kinds)
            .zip(starts)
            .zip(ends)
            .zip(counters)
            .zip(args)
            .map(|(((((rank, kind), start), end), counters), args)| Fragment {
                rank,
                kind,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(end),
                counters,
                args,
            });
        let mut vertex_groups = Vec::with_capacity(vheads.len());
        for (label, count) in vheads {
            let mut fragments = Vec::with_capacity(count);
            for _ in 0..count {
                fragments.push(cols.next().ok_or(WireError::CountMismatch)?);
            }
            vertex_groups.push(VertexGroup { label, fragments });
        }
        let mut edge_groups = Vec::with_capacity(eheads.len());
        for (from, to, count) in eheads {
            let mut fragments = Vec::with_capacity(count);
            for _ in 0..count {
                fragments.push(cols.next().ok_or(WireError::CountMismatch)?);
            }
            edge_groups.push(EdgeGroup { from, to, fragments });
        }

        Ok(FragmentBatch {
            rank,
            seq,
            tenant_id,
            job_id,
            window_start_ns,
            window_end_ns,
            labels,
            vertex_groups,
            edge_groups,
        })
    }

    /// Serialise to JSON (the debugging fallback; the §6.2 storage-rate
    /// numbers account the binary encoding).
    pub fn to_json_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("serialisable batch")
    }

    /// Parse the JSON fallback.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<FragmentBatch, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// Iterate the length-prefixed frames of a byte stream. Yields batches
/// until the buffer is exhausted; a malformed frame yields its error and
/// ends the iteration.
pub fn decode_stream(bytes: &[u8]) -> impl Iterator<Item = Result<FragmentBatch, WireError>> + '_ {
    let mut rest = bytes;
    let mut dead = false;
    std::iter::from_fn(move || {
        if dead || rest.is_empty() {
            return None;
        }
        match FragmentBatch::decode_frame(rest) {
            Ok((batch, consumed)) => {
                rest = rest.get(consumed..).unwrap_or_default();
                Some(Ok(batch))
            }
            Err(e) => {
                dead = true;
                Some(Err(e))
            }
        }
    })
}

/// Intern a label into a process-lifetime string. Crossing the
/// serialisation boundary back into `CallSite` keys needs `&'static str`
/// sites; interning bounds the leak by the number of *distinct* labels
/// ever seen, however many batches, windows or arenas are processed.
pub fn leak_label(label: &str) -> &'static str {
    static LABELS: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    // A panicking holder can only have been between `get` and `insert`;
    // both leave the set coherent, so the poisoned state is usable.
    let mut set = LABELS
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match set.get(label) {
        Some(&leaked) => leaked,
        None => {
            let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// Server-side pools reassembled from many ranks' batches: label →
/// fragments, merged across ranks — the population the clustering and
/// detection stages consume. Edge pools are keyed by the `(from, to)`
/// label *pair*, so state labels containing `" -> "` stay unambiguous.
#[derive(Debug, Default, PartialEq)]
pub struct ReassembledPools {
    /// Invocation pools by state label.
    pub vertices: BTreeMap<String, Vec<Fragment>>,
    /// Computation pools by `(from, to)` transition label pair.
    pub edges: BTreeMap<(String, String), Vec<Fragment>>,
}

impl ReassembledPools {
    /// Merge a set of batches (any ranks, same window). Consumes the
    /// batches so every fragment *moves* into its pool — reassembly
    /// never copies a population.
    pub fn from_batches<I>(batches: I) -> ReassembledPools
    where
        I: IntoIterator<Item = FragmentBatch>,
    {
        let mut out = ReassembledPools::default();
        for b in batches {
            let FragmentBatch { labels, vertex_groups, edge_groups, .. } = b;
            let name = |id: Sym| -> String {
                labels.get(id as usize).map(String::as_str).unwrap_or_default().to_string()
            };
            for g in vertex_groups {
                out.vertices.entry(name(g.label)).or_default().extend(g.fragments);
            }
            for g in edge_groups {
                out.edges
                    .entry((name(g.from), name(g.to)))
                    .or_default()
                    .extend(g.fragments);
            }
        }
        out
    }

    /// Total fragments across pools.
    pub fn len(&self) -> usize {
        self.vertices.values().map(Vec::len).sum::<usize>()
            + self.edges.values().map(Vec::len).sum::<usize>()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use crate::stg::StateKey;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::{CallSite, VirtualTime};

    fn sample_stg(rank: usize) -> Stg {
        let mut stg = Stg::new();
        let s0 = stg.state(StateKey::Start);
        let s1 = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
        stg.transition(s0, s1);
        let e = stg.transition(s1, s1);
        for i in 0..10u64 {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, 1000.0);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(i * 200),
                    end: VirtualTime::from_ns(i * 200 + 150),
                    counters: c,
                    args: vec![],
                },
            );
            stg.attach_vertex_fragment(
                s1,
                Fragment {
                    rank,
                    kind: FragmentKind::Communication,
                    start: VirtualTime::from_ns(i * 200 + 150),
                    end: VirtualTime::from_ns(i * 200 + 200),
                    counters: CounterDelta::default(),
                    args: vec![8.0],
                },
            );
        }
        stg
    }

    fn full_window() -> Window {
        Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(1) }
    }

    #[test]
    fn batch_extraction_respects_the_window() {
        let stg = sample_stg(3);
        let all = FragmentBatch::from_stg(&stg, 3, full_window());
        assert_eq!(all.len(), 20);
        let half = FragmentBatch::from_stg(
            &stg,
            3,
            Window { start: VirtualTime::ZERO, end: VirtualTime::from_ns(1000) },
        );
        assert!(half.len() < all.len());
        assert!(!half.is_empty());
    }

    #[test]
    fn start_partitioned_batches_cover_each_fragment_once() {
        let stg = sample_stg(0);
        // 900 ns falls inside the 800..950 fragment, so the boundary is
        // genuinely straddled.
        let w1 = Window { start: VirtualTime::ZERO, end: VirtualTime::from_ns(900) };
        let w2 = Window { start: VirtualTime::from_ns(900), end: VirtualTime::from_secs(1) };
        let b1 = FragmentBatch::from_stg_starting_in(&stg, 0, w1);
        let b2 = FragmentBatch::from_stg_starting_in(&stg, 0, w2);
        assert_eq!(b1.len() + b2.len(), stg.total_fragments());
        // The overlap extraction, by contrast, double-ships the fragment
        // straddling the boundary.
        let o1 = FragmentBatch::from_stg(&stg, 0, w1);
        let o2 = FragmentBatch::from_stg(&stg, 0, w2);
        assert!(o1.len() + o2.len() > stg.total_fragments());
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window());
        let bytes = batch.encode();
        let back = FragmentBatch::decode(&bytes).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn json_fallback_roundtrip_is_lossless() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window());
        let back = FragmentBatch::from_json_bytes(&batch.to_json_bytes()).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn binary_is_several_times_smaller_than_json() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window());
        let binary = batch.encode().len();
        let json = batch.to_json_bytes().len();
        assert!(
            json as f64 / binary as f64 >= 4.0,
            "binary {binary} B vs json {json} B"
        );
        // And in the ballpark of the §6.2 per-record accounting.
        let accounted: u64 = batch
            .vertex_groups
            .iter()
            .flat_map(|g| g.fragments.iter())
            .chain(batch.edge_groups.iter().flat_map(|g| g.fragments.iter()))
            .map(fragment_wire_bytes)
            .sum();
        let overhead = binary as u64 - accounted;
        assert!(overhead < 200, "fixed overhead {overhead} B");
    }

    #[test]
    fn framed_stream_decodes_batch_by_batch() {
        let mut buf = Vec::new();
        let batches: Vec<FragmentBatch> = (0..3)
            .map(|r| FragmentBatch::from_stg(&sample_stg(r), r, full_window()))
            .collect();
        for b in &batches {
            b.encode_into(&mut buf);
        }
        let decoded: Vec<FragmentBatch> =
            decode_stream(&buf).collect::<Result<_, _>>().unwrap();
        assert_eq!(decoded, batches);
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        assert_eq!(
            FragmentBatch::decode(&[]).unwrap_err(),
            WireError::ShortFrame { declared: 4, available: 0 }
        );
        let mut bytes = FragmentBatch::from_stg(&sample_stg(0), 0, full_window()).encode();
        // Flip the magic.
        bytes[4] = b'X';
        assert_eq!(FragmentBatch::decode(&bytes).unwrap_err(), WireError::BadMagic);
        let mut bytes = FragmentBatch::from_stg(&sample_stg(0), 0, full_window()).encode();
        bytes[8] = 99; // version byte
        assert_eq!(
            FragmentBatch::decode(&bytes).unwrap_err(),
            WireError::BadVersion { got: 99, supported: WIRE_VERSION_V3 }
        );
        let bytes = FragmentBatch::from_stg(&sample_stg(0), 0, full_window()).encode();
        assert_eq!(
            FragmentBatch::decode(&bytes[..bytes.len() - 3]).unwrap_err(),
            WireError::ShortFrame { declared: bytes.len(), available: bytes.len() - 3 }
        );
        // Arbitrary truncations never panic.
        for cut in 0..bytes.len() {
            let _ = FragmentBatch::decode(&bytes[..cut]);
        }
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_checksum() {
        let batch = FragmentBatch::from_stg(&sample_stg(2), 2, full_window()).with_seq(7);
        let clean = batch.encode();
        assert_eq!(FragmentBatch::decode(&clean).unwrap(), batch);
        // Flip one bit in every checksum-covered byte (after prefix,
        // magic, version and the crc field itself): all must be caught,
        // and the error names the claimed rank and sequence when the
        // corruption leaves the header intact.
        for pos in 13..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            match FragmentBatch::decode(&bytes).unwrap_err() {
                WireError::BadChecksum { rank, seq } => {
                    if pos >= 13 + 12 {
                        // Header (seq + rank) untouched: attribution exact.
                        assert_eq!((rank, seq), (2, 7), "flip at {pos}");
                    }
                }
                other => panic!("flip at {pos}: unexpected {other:?}"),
            }
        }
        // A flipped CRC field itself is also a checksum failure.
        let mut bytes = clean.clone();
        bytes[9] ^= 0xFF;
        assert!(matches!(
            FragmentBatch::decode(&bytes).unwrap_err(),
            WireError::BadChecksum { .. }
        ));
    }

    #[test]
    fn sequence_numbers_roundtrip() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window());
        assert_eq!(batch.seq, SEQ_UNSEQUENCED);
        let stamped = batch.with_seq(u64::MAX);
        let back = FragmentBatch::decode(&stamped.encode()).unwrap();
        assert_eq!(back.seq, u64::MAX);
        assert_eq!(back, stamped);
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window()).with_seq(42);
        let v1 = batch.encode_v1();
        assert_eq!(v1[8], WIRE_VERSION_V1);
        // v1 carries no sequence number, so the roundtrip reports 0 but
        // is otherwise lossless.
        let back = FragmentBatch::decode(&v1).unwrap();
        assert_eq!(back.seq, SEQ_UNSEQUENCED);
        assert_eq!(back, batch.clone().with_seq(SEQ_UNSEQUENCED));
        // And the v2 frame costs exactly the integrity fields extra:
        // crc32 (4) + seq (8).
        assert_eq!(batch.encode().len(), v1.len() + 12);
    }

    #[test]
    fn v3_routing_header_roundtrips() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window())
            .with_seq(42)
            .with_job(7, u32::MAX);
        let v3 = batch.encode_v3();
        assert_eq!(v3[8], WIRE_VERSION_V3);
        let back = FragmentBatch::decode(&v3).unwrap();
        assert_eq!((back.tenant_id, back.job_id, back.seq), (7, u32::MAX, 42));
        assert_eq!(back, batch);
        // The routing header costs exactly tenant (4) + job (4) over v2.
        assert_eq!(v3.len(), batch.encode().len() + 8);
    }

    #[test]
    fn pre_v3_frames_decode_to_the_default_tenant() {
        // A stamped batch encoded as v1 or v2 loses the stamp on the
        // wire; the decoder restores the default identity, so legacy
        // single-tenant senders route to the default job unchanged.
        let batch = FragmentBatch::from_stg(&sample_stg(2), 2, full_window())
            .with_seq(3)
            .with_job(9, 12);
        let v2 = FragmentBatch::decode(&batch.encode()).unwrap();
        assert_eq!((v2.tenant_id, v2.job_id), (DEFAULT_TENANT, DEFAULT_JOB));
        assert_eq!(v2.seq, 3);
        let v1 = FragmentBatch::decode(&batch.encode_v1()).unwrap();
        assert_eq!((v1.tenant_id, v1.job_id), (DEFAULT_TENANT, DEFAULT_JOB));
    }

    #[test]
    fn corrupted_v3_bytes_fail_the_checksum_with_attribution() {
        let batch = FragmentBatch::from_stg(&sample_stg(2), 2, full_window())
            .with_seq(7)
            .with_job(5, 6);
        let clean = batch.encode_v3();
        assert_eq!(FragmentBatch::decode(&clean).unwrap(), batch);
        // Checksum coverage starts after prefix (4) + magic (4) +
        // version (1) + crc (4) = byte 13, as in v2.
        for pos in 13..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            match FragmentBatch::decode(&bytes).unwrap_err() {
                WireError::BadChecksum { rank, seq } => {
                    if pos >= 13 + 20 {
                        // seq + tenant + job + rank untouched: the error
                        // still attributes the true rank and sequence.
                        assert_eq!((rank, seq), (2, 7), "flip at {pos}");
                    }
                }
                other => panic!("flip at {pos}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn display_messages_name_rank_and_sequence() {
        let msg = WireError::BadChecksum { rank: 3, seq: 17 }.to_string();
        assert!(msg.contains("rank 3") && msg.contains("seq 17"), "{msg}");
        let msg = WireError::DuplicateSequence { rank: 5, seq: 9 }.to_string();
        assert!(msg.contains("rank 5") && msg.contains("seq 9"), "{msg}");
        let msg = WireError::BadVersion { got: 9, supported: WIRE_VERSION_V3 }.to_string();
        assert!(msg.contains('9') && msg.contains('3'), "{msg}");
        let msg = WireError::UnknownTenant { tenant: 11 }.to_string();
        assert!(msg.contains("tenant 11"), "{msg}");
        let msg = WireError::TenantOverBudget {
            tenant: 4,
            budget_bytes: 1024,
            requested_bytes: 2048,
        }
        .to_string();
        assert!(msg.contains("tenant 4") && msg.contains("1024") && msg.contains("2048"), "{msg}");
    }

    #[test]
    fn huge_claimed_fragment_count_is_rejected_before_allocating() {
        // A tiny frame whose group heads claim ~4 billion fragments must
        // return Truncated, not attempt multi-GB column allocations. The
        // guard must hold on both wire versions, so build the malicious
        // body once and frame it both ways (the v2 copy with a *valid*
        // checksum, so the anti-OOM check is what rejects it).
        let mut body = Vec::new();
        body.extend_from_slice(&0u32.to_le_bytes()); // rank
        body.extend_from_slice(&0u64.to_le_bytes()); // window start
        body.extend_from_slice(&0u64.to_le_bytes()); // window end
        body.extend_from_slice(&1u32.to_le_bytes()); // nlabels
        body.extend_from_slice(&1u32.to_le_bytes()); // label length
        body.push(b'a');
        body.extend_from_slice(&1u32.to_le_bytes()); // nvgroups
        body.extend_from_slice(&0u32.to_le_bytes()); // group label id
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // claimed pool size
        body.extend_from_slice(&0u32.to_le_bytes()); // negroups
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // nfrags

        let mut v1_payload = Vec::new();
        v1_payload.extend_from_slice(&WIRE_MAGIC);
        v1_payload.push(WIRE_VERSION_V1);
        v1_payload.extend_from_slice(&body);
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::try_from(v1_payload.len()).unwrap().to_le_bytes());
        frame.extend_from_slice(&v1_payload);
        assert_eq!(FragmentBatch::decode(&frame).unwrap_err(), WireError::Truncated);

        let mut checked = Vec::new();
        checked.extend_from_slice(&1u64.to_le_bytes()); // seq
        checked.extend_from_slice(&body);
        let mut v2_payload = Vec::new();
        v2_payload.extend_from_slice(&WIRE_MAGIC);
        v2_payload.push(WIRE_VERSION);
        v2_payload.extend_from_slice(&crc32::checksum(&checked).to_le_bytes());
        v2_payload.extend_from_slice(&checked);
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::try_from(v2_payload.len()).unwrap().to_le_bytes());
        frame.extend_from_slice(&v2_payload);
        assert_eq!(FragmentBatch::decode(&frame).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn edge_labels_with_arrow_substrings_do_not_collide() {
        // A state whose label itself contains " -> " used to collide with
        // a two-state transition label under the formatted-string scheme.
        let mut stg = Stg::new();
        let weird = stg.state(StateKey::Site(CallSite("a -> b")));
        let a = stg.state(StateKey::Site(CallSite("a")));
        let b = stg.state(StateKey::Site(CallSite("b")));
        let self_e = stg.transition(weird, weird);
        let ab = stg.transition(a, b);
        let mk = |ins: f64| {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::ZERO,
                end: VirtualTime::from_ns(100),
                counters: c,
                args: vec![],
            }
        };
        stg.attach_edge_fragment(self_e, mk(1.0));
        stg.attach_edge_fragment(ab, mk(2.0));
        let batch = FragmentBatch::from_stg(&stg, 0, full_window());
        let pools = ReassembledPools::from_batches([batch.clone()]);
        // Two distinct edge pools: ("a -> b","a -> b") and ("a","b").
        assert_eq!(pools.edges.len(), 2);
        let weird_pool = &pools.edges[&("a -> b".to_string(), "a -> b".to_string())];
        assert_eq!(weird_pool.len(), 1);
        assert_eq!(weird_pool[0].counters.get(CounterId::TotIns), Some(1.0));
        let plain_pool = &pools.edges[&("a".to_string(), "b".to_string())];
        assert_eq!(plain_pool[0].counters.get(CounterId::TotIns), Some(2.0));
        // And the roundtrip preserves the distinction.
        let back = FragmentBatch::decode(&batch.encode()).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn reassembly_pools_across_ranks() {
        let batches: Vec<FragmentBatch> = (0..4)
            .map(|r| FragmentBatch::from_stg(&sample_stg(r), r, full_window()))
            .collect();
        let pools = ReassembledPools::from_batches(batches);
        assert_eq!(pools.len(), 4 * 20);
        // All ranks' computation fragments share one transition pool.
        let edge_pool = pools
            .edges
            .get(&("w:MPI_Barrier".to_string(), "w:MPI_Barrier".to_string()))
            .expect("pooled edge");
        assert_eq!(edge_pool.len(), 40);
        let ranks: std::collections::BTreeSet<usize> =
            edge_pool.iter().map(|f| f.rank).collect();
        assert_eq!(ranks.len(), 4);
    }

    #[test]
    fn pooled_batches_cluster_like_the_direct_path() {
        // The server can run Algorithm 1 on reassembled pools and get the
        // same answer as the in-process path.
        let batches: Vec<FragmentBatch> = (0..3)
            .map(|r| FragmentBatch::from_stg(&sample_stg(r), r, full_window()))
            .collect();
        let pools = ReassembledPools::from_batches(batches);
        let pool = &pools.edges[&("w:MPI_Barrier".to_string(), "w:MPI_Barrier".to_string())];
        let outcome = crate::clustering::cluster_fragments(
            pool,
            &crate::fragment::DEFAULT_PROXY,
            0.05,
            5,
        );
        assert_eq!(outcome.usable.len(), 1);
        assert_eq!(outcome.usable[0].len(), 30);
    }

    #[test]
    fn leaked_labels_are_interned_once() {
        let a = leak_label("wire-test-distinct-label");
        let b = leak_label("wire-test-distinct-label");
        assert!(std::ptr::eq(a, b));
    }
}
