//! The client → server wire format (paper Fig. 8 / §5: clients ship
//! performance data to dedicated analysis servers each reporting period).
//!
//! A [`FragmentBatch`] is what one rank sends for one window: its rank
//! id, the window bounds, and the fragments keyed by *state label*
//! (strings — the STG's `&'static str` call-sites don't survive
//! serialisation, and the server only needs the label identity anyway).
//! Batches serialise to JSON/bytes, and a set of batches reconstructs the
//! pooled per-state fragment populations the detection pipeline consumes.

use crate::detect::window::Window;
use crate::fragment::Fragment;
use crate::stg::Stg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One rank's shipped data for one reporting window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentBatch {
    /// Originating rank.
    pub rank: usize,
    /// Window start, ns.
    pub window_start_ns: u64,
    /// Window end, ns.
    pub window_end_ns: u64,
    /// Invocation fragments per state label.
    pub vertex_fragments: BTreeMap<String, Vec<Fragment>>,
    /// Computation fragments per transition label ("from -> to").
    pub edge_fragments: BTreeMap<String, Vec<Fragment>>,
}

impl FragmentBatch {
    /// Extract a rank's batch for `window` from its STG.
    pub fn from_stg(stg: &Stg, rank: usize, window: Window) -> FragmentBatch {
        let keep = |f: &&Fragment| window.overlaps(f.start, f.end);
        let mut vertex_fragments: BTreeMap<String, Vec<Fragment>> = BTreeMap::new();
        for v in stg.vertices() {
            let frags: Vec<Fragment> =
                v.fragments.iter().filter(keep).cloned().collect();
            if !frags.is_empty() {
                vertex_fragments.insert(v.key.label(), frags);
            }
        }
        let mut edge_fragments: BTreeMap<String, Vec<Fragment>> = BTreeMap::new();
        for e in stg.edges() {
            let frags: Vec<Fragment> =
                e.fragments.iter().filter(keep).cloned().collect();
            if !frags.is_empty() {
                let label = format!(
                    "{} -> {}",
                    stg.vertices()[e.from].key.label(),
                    stg.vertices()[e.to].key.label()
                );
                edge_fragments.insert(label, frags);
            }
        }
        FragmentBatch {
            rank,
            window_start_ns: window.start.ns(),
            window_end_ns: window.end.ns(),
            vertex_fragments,
            edge_fragments,
        }
    }

    /// Total fragments in the batch.
    pub fn len(&self) -> usize {
        self.vertex_fragments.values().map(Vec::len).sum::<usize>()
            + self.edge_fragments.values().map(Vec::len).sum::<usize>()
    }

    /// Empty batch?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialise to the wire (JSON bytes — the storage-rate numbers of
    /// §6.2 measure a compact binary record; JSON here keeps the format
    /// inspectable).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("serialisable batch")
    }

    /// Parse from the wire.
    pub fn from_bytes(bytes: &[u8]) -> Result<FragmentBatch, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// Server-side pools reassembled from many ranks' batches: label →
/// fragments, merged across ranks — the population the clustering and
/// detection stages consume.
#[derive(Debug, Default)]
pub struct ReassembledPools {
    /// Invocation pools by state label.
    pub vertices: BTreeMap<String, Vec<Fragment>>,
    /// Computation pools by transition label.
    pub edges: BTreeMap<String, Vec<Fragment>>,
}

impl ReassembledPools {
    /// Merge a set of batches (any ranks, same window).
    pub fn from_batches(batches: &[FragmentBatch]) -> ReassembledPools {
        let mut out = ReassembledPools::default();
        for b in batches {
            for (label, frags) in &b.vertex_fragments {
                out.vertices
                    .entry(label.clone())
                    .or_default()
                    .extend(frags.iter().cloned());
            }
            for (label, frags) in &b.edge_fragments {
                out.edges
                    .entry(label.clone())
                    .or_default()
                    .extend(frags.iter().cloned());
            }
        }
        out
    }

    /// Total fragments across pools.
    pub fn len(&self) -> usize {
        self.vertices.values().map(Vec::len).sum::<usize>()
            + self.edges.values().map(Vec::len).sum::<usize>()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use crate::stg::StateKey;
    use vapro_pmu::{CounterDelta, CounterId};
    use vapro_sim::{CallSite, VirtualTime};

    fn sample_stg(rank: usize) -> Stg {
        let mut stg = Stg::new();
        let s0 = stg.state(StateKey::Start);
        let s1 = stg.state(StateKey::Site(CallSite("w:MPI_Barrier")));
        stg.transition(s0, s1);
        let e = stg.transition(s1, s1);
        for i in 0..10u64 {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, 1000.0);
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(i * 200),
                    end: VirtualTime::from_ns(i * 200 + 150),
                    counters: c,
                    args: vec![],
                },
            );
            stg.attach_vertex_fragment(
                s1,
                Fragment {
                    rank,
                    kind: FragmentKind::Communication,
                    start: VirtualTime::from_ns(i * 200 + 150),
                    end: VirtualTime::from_ns(i * 200 + 200),
                    counters: CounterDelta::default(),
                    args: vec![8.0],
                },
            );
        }
        stg
    }

    fn full_window() -> Window {
        Window { start: VirtualTime::ZERO, end: VirtualTime::from_secs(1) }
    }

    #[test]
    fn batch_extraction_respects_the_window() {
        let stg = sample_stg(3);
        let all = FragmentBatch::from_stg(&stg, 3, full_window());
        assert_eq!(all.len(), 20);
        let half = FragmentBatch::from_stg(
            &stg,
            3,
            Window { start: VirtualTime::ZERO, end: VirtualTime::from_ns(1000) },
        );
        assert!(half.len() < all.len());
        assert!(!half.is_empty());
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let batch = FragmentBatch::from_stg(&sample_stg(1), 1, full_window());
        let bytes = batch.to_bytes();
        let back = FragmentBatch::from_bytes(&bytes).unwrap();
        assert_eq!(batch, back);
        // Bytes-per-fragment in the ballpark of the §6.2 accounting
        // (JSON is a few times the binary estimate, same magnitude).
        let per_frag = bytes.len() / batch.len();
        assert!(per_frag < 2_000, "batch record size {per_frag} B/fragment");
    }

    #[test]
    fn reassembly_pools_across_ranks() {
        let batches: Vec<FragmentBatch> = (0..4)
            .map(|r| FragmentBatch::from_stg(&sample_stg(r), r, full_window()))
            .collect();
        let pools = ReassembledPools::from_batches(&batches);
        assert_eq!(pools.len(), 4 * 20);
        // All ranks' computation fragments share one transition pool.
        let edge_pool = pools
            .edges
            .get("w:MPI_Barrier -> w:MPI_Barrier")
            .expect("pooled edge");
        assert_eq!(edge_pool.len(), 40);
        let ranks: std::collections::BTreeSet<usize> =
            edge_pool.iter().map(|f| f.rank).collect();
        assert_eq!(ranks.len(), 4);
    }

    #[test]
    fn pooled_batches_cluster_like_the_direct_path() {
        // The server can run Algorithm 1 on reassembled pools and get the
        // same answer as the in-process path.
        let batches: Vec<FragmentBatch> = (0..3)
            .map(|r| FragmentBatch::from_stg(&sample_stg(r), r, full_window()))
            .collect();
        let pools = ReassembledPools::from_batches(&batches);
        let pool = &pools.edges["w:MPI_Barrier -> w:MPI_Barrier"];
        let outcome = crate::clustering::cluster_fragments(
            pool,
            &crate::fragment::DEFAULT_PROXY,
            0.05,
            5,
        );
        assert_eq!(outcome.usable.len(), 1);
        assert_eq!(outcome.usable[0].len(), 30);
    }
}
