//! SoA columnar fragment pools: the wire format has been columnar since
//! the binary frame work, but decode rehydrated AoS [`Fragment`] structs
//! that detection then pointer-chased per window. [`ColumnarPool`] keeps
//! the decoded columns — times, counter lanes, kinds, arg offsets — as
//! the in-memory form, partitioned into per-location lanes, and
//! [`LaneView`] hands detection and diagnosis a contiguous window onto
//! them.
//!
//! [`PoolView`] is the abstraction both representations implement: the
//! analysis pipeline ([`detect_merged`](crate::detect::pipeline::detect_merged),
//! the batched diagnosis) is generic over it, so the existing
//! `&[&Fragment]` pools remain a thin compatibility layer over the same
//! generic code — property-tested bit-identical in
//! `tests/columnar_equivalence.rs`.
//!
//! ## Memory layout
//!
//! One pool holds every fragment of a merged view in struct-of-arrays
//! columns, grouped so each location (STG vertex or edge) owns one
//! contiguous index range:
//!
//! ```text
//! ranks   : [u32]            one per fragment
//! kinds   : [FragmentKind]   one per fragment
//! starts  : [u64]            ns, one per fragment
//! ends    : [u64]            ns, one per fragment
//! sets    : [CounterSet]     one per fragment
//! counters: [f64]            active values only, ascending id order
//! coff    : [u32]            n+1 fenceposts into `counters`
//! args    : [f64]            flattened invocation args
//! aoff    : [u32]            n+1 fenceposts into `args`
//! ```
//!
//! A counter read is `counters[coff[i] + popcount(bits below id)]` —
//! O(1) via [`CounterSet::bits`]. Lane views are `(lo, hi)` ranges plus
//! a pool borrow ([`LaneView`] is `Copy`); they never own fragment data,
//! so building views allocates nothing and the zero-`Fragment`-clone
//! guarantee holds structurally.

use crate::clustering;
use crate::detect::pipeline::MergedStg;
use crate::fragment::{Fragment, FragmentKind};
use crate::stg::StateKey;
use vapro_pmu::{CounterDelta, CounterId, CounterSet};
use vapro_sim::VirtualTime;

/// Read-only access to one pooled fragment population, by index.
///
/// Implemented by the AoS compatibility layer (`[&Fragment]`) and by
/// columnar [`LaneView`]s; everything the detection/diagnosis pipeline
/// reads from a pool goes through these accessors, which is what keeps
/// the two representations bit-identical by construction.
pub trait PoolView {
    /// Number of fragments in the pool.
    fn len(&self) -> usize;

    /// True when the pool holds no fragments.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Originating rank of fragment `i`.
    fn rank(&self, i: usize) -> usize;

    /// Category of fragment `i`.
    fn kind(&self, i: usize) -> FragmentKind;

    /// Virtual start time of fragment `i`.
    fn start(&self, i: usize) -> VirtualTime;

    /// Virtual end time of fragment `i`.
    fn end(&self, i: usize) -> VirtualTime;

    /// Elapsed virtual time of fragment `i` in ns, saturating like
    /// [`Fragment::duration_ns`].
    fn duration_ns(&self, i: usize) -> f64 {
        self.end(i).ns().saturating_sub(self.start(i).ns()) as f64
    }

    /// Widest workload vector in the pool under `proxy_counters` — the
    /// padded lane dimension for clustering.
    fn workload_dim(&self, proxy_counters: &[CounterId]) -> usize;

    /// Append fragment `i`'s workload vector, zero-padded to `dim`, to a
    /// flat lane buffer (the allocation-free twin of
    /// [`Fragment::workload_vector`]).
    fn extend_workload_lane(
        &self,
        i: usize,
        proxy_counters: &[CounterId],
        dim: usize,
        out: &mut Vec<f64>,
    );

    /// Fragment `i`'s counter delta restricted to `keep` — what the
    /// progressive drill-down rebuilds its scratch fragments from.
    fn project_counters(&self, i: usize, keep: CounterSet) -> CounterDelta;

    /// Fragment `i`'s invocation arguments.
    fn args(&self, i: usize) -> &[f64];
}

impl PoolView for [&Fragment] {
    fn len(&self) -> usize {
        <[&Fragment]>::len(self)
    }

    fn rank(&self, i: usize) -> usize {
        self[i].rank
    }

    fn kind(&self, i: usize) -> FragmentKind {
        self[i].kind
    }

    fn start(&self, i: usize) -> VirtualTime {
        self[i].start
    }

    fn end(&self, i: usize) -> VirtualTime {
        self[i].end
    }

    fn duration_ns(&self, i: usize) -> f64 {
        self[i].duration_ns()
    }

    fn workload_dim(&self, proxy_counters: &[CounterId]) -> usize {
        self.iter().map(|f| clustering::workload_dim(f, proxy_counters)).max().unwrap_or(0)
    }

    fn extend_workload_lane(
        &self,
        i: usize,
        proxy_counters: &[CounterId],
        dim: usize,
        out: &mut Vec<f64>,
    ) {
        clustering::extend_workload_lane(self[i], proxy_counters, dim, out);
    }

    fn project_counters(&self, i: usize, keep: CounterSet) -> CounterDelta {
        self[i].counters.project(keep)
    }

    fn args(&self, i: usize) -> &[f64] {
        &self[i].args
    }
}

/// References to a pool view see through to the underlying view, so the
/// pipeline can hold `&[&Fragment]` and `LaneView` under one bound.
impl<P: PoolView + ?Sized> PoolView for &P {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn rank(&self, i: usize) -> usize {
        (**self).rank(i)
    }

    fn kind(&self, i: usize) -> FragmentKind {
        (**self).kind(i)
    }

    fn start(&self, i: usize) -> VirtualTime {
        (**self).start(i)
    }

    fn end(&self, i: usize) -> VirtualTime {
        (**self).end(i)
    }

    fn duration_ns(&self, i: usize) -> f64 {
        (**self).duration_ns(i)
    }

    fn workload_dim(&self, proxy_counters: &[CounterId]) -> usize {
        (**self).workload_dim(proxy_counters)
    }

    fn extend_workload_lane(
        &self,
        i: usize,
        proxy_counters: &[CounterId],
        dim: usize,
        out: &mut Vec<f64>,
    ) {
        (**self).extend_workload_lane(i, proxy_counters, dim, out)
    }

    fn project_counters(&self, i: usize, keep: CounterSet) -> CounterDelta {
        (**self).project_counters(i, keep)
    }

    fn args(&self, i: usize) -> &[f64] {
        (**self).args(i)
    }
}

/// One location's contiguous index range in the columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lane {
    lo: u32,
    hi: u32,
}

/// SoA storage for a merged view's fragments, lane-partitioned by
/// location. See the module docs for the column layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarPool {
    ranks: Vec<u32>,
    kinds: Vec<FragmentKind>,
    starts: Vec<u64>,
    ends: Vec<u64>,
    sets: Vec<CounterSet>,
    counters: Vec<f64>,
    coff: Vec<u32>,
    args: Vec<f64>,
    aoff: Vec<u32>,
    vertices: Vec<(StateKey, Lane)>,
    edges: Vec<((StateKey, StateKey), Lane)>,
    /// Which of `vertices`/`edges` is currently absorbing pushes.
    open_edge: bool,
}

impl Default for ColumnarPool {
    fn default() -> Self {
        ColumnarPool::new()
    }
}

impl ColumnarPool {
    /// An empty pool.
    pub fn new() -> ColumnarPool {
        ColumnarPool {
            ranks: Vec::new(),
            kinds: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            sets: Vec::new(),
            counters: Vec::new(),
            coff: vec![0],
            args: Vec::new(),
            aoff: vec![0],
            vertices: Vec::new(),
            edges: Vec::new(),
            open_edge: false,
        }
    }

    /// Drop all fragments and locations but keep every column's
    /// capacity — the scratch-reuse primitive: a recycled pool refilled
    /// window after window performs no transient allocations once the
    /// columns have grown to the high-water mark.
    pub fn clear(&mut self) {
        self.ranks.clear();
        self.kinds.clear();
        self.starts.clear();
        self.ends.clear();
        self.sets.clear();
        self.counters.clear();
        self.coff.clear();
        self.coff.push(0);
        self.args.clear();
        self.aoff.clear();
        self.aoff.push(0);
        self.vertices.clear();
        self.edges.clear();
        self.open_edge = false;
    }

    /// Total fragments held.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when no fragment has been pushed.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Number of vertex locations.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edge locations.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Pre-size the columns for `fragments` fragments carrying
    /// `counter_values` active counter values and `arg_values` argument
    /// scalars in total.
    pub fn reserve(&mut self, fragments: usize, counter_values: usize, arg_values: usize) {
        self.ranks.reserve(fragments);
        self.kinds.reserve(fragments);
        self.starts.reserve(fragments);
        self.ends.reserve(fragments);
        self.sets.reserve(fragments);
        self.coff.reserve(fragments);
        self.aoff.reserve(fragments);
        self.counters.reserve(counter_values);
        self.args.reserve(arg_values);
    }

    /// Open a new vertex lane; subsequent [`ColumnarPool::push`]es land
    /// in it until the next `begin_*`.
    pub fn begin_vertex(&mut self, key: StateKey) {
        let n = self.ranks.len() as u32;
        self.vertices.push((key, Lane { lo: n, hi: n }));
        self.open_edge = false;
    }

    /// Open a new edge lane.
    pub fn begin_edge(&mut self, from: StateKey, to: StateKey) {
        let n = self.ranks.len() as u32;
        self.edges.push(((from, to), Lane { lo: n, hi: n }));
        self.open_edge = true;
    }

    /// Append one fragment's fields to the open lane. Field-by-field
    /// column pushes — `Fragment::clone` (and its clone counter) is
    /// structurally unreachable from here.
    ///
    /// # Panics
    /// When no lane has been opened.
    pub fn push(&mut self, f: &Fragment) {
        self.ranks.push(f.rank as u32);
        self.kinds.push(f.kind);
        self.starts.push(f.start.ns());
        self.ends.push(f.end.ns());
        self.sets.push(f.counters.set());
        // `entries()` yields ascending `id.index()` order (CounterId::ALL
        // order), which is exactly the popcount-rank order reads assume.
        self.counters.extend(f.counters.entries().map(|(_, v)| v));
        self.coff.push(self.counters.len() as u32);
        self.args.extend_from_slice(&f.args);
        self.aoff.push(self.args.len() as u32);
        let n = self.ranks.len() as u32;
        let lane = if self.open_edge {
            &mut self.edges.last_mut().expect("push before begin_edge").1
        } else {
            &mut self.vertices.last_mut().expect("push before begin_vertex").1
        };
        lane.hi = n;
    }

    /// Refill this pool from a merged AoS view: same locations in the
    /// same order, every fragment transposed into the columns. Reuses
    /// the pool's existing capacity (see [`ColumnarPool::clear`]).
    pub fn refill_from_merged(&mut self, merged: &MergedStg<'_>) {
        self.clear();
        let pools = || {
            merged
                .vertices
                .iter()
                .map(|(_, p)| p)
                .chain(merged.edges.iter().map(|(_, p)| p))
        };
        let fragments: usize = pools().map(|p| p.len()).sum();
        let counter_values: usize =
            pools().flat_map(|p| p.iter()).map(|f| f.counters.set().len()).sum();
        let arg_values: usize = pools().flat_map(|p| p.iter()).map(|f| f.args.len()).sum();
        self.reserve(fragments, counter_values, arg_values);
        self.vertices.reserve(merged.vertices.len());
        self.edges.reserve(merged.edges.len());
        for (sym, pool) in &merged.vertices {
            // vapro-lint: allow(R1, one StateKey per location table entry; not a fragment population)
            self.begin_vertex(merged.key(*sym).clone());
            for f in pool {
                self.push(f);
            }
        }
        for ((from, to), pool) in &merged.edges {
            // vapro-lint: allow(R1, one StateKey pair per edge table entry; not a fragment population)
            self.begin_edge(merged.key(*from).clone(), merged.key(*to).clone());
            for f in pool {
                self.push(f);
            }
        }
    }

    /// Build a fresh pool from a merged view.
    pub fn from_merged(merged: &MergedStg<'_>) -> ColumnarPool {
        let mut pool = ColumnarPool::new();
        pool.refill_from_merged(merged);
        pool
    }

    /// The `i`-th vertex location: its state key and lane view.
    pub fn vertex(&self, i: usize) -> (&StateKey, LaneView<'_>) {
        let (key, lane) = &self.vertices[i];
        (key, LaneView { pool: self, lo: lane.lo, hi: lane.hi })
    }

    /// The `i`-th edge location: its state-key pair and lane view.
    pub fn edge(&self, i: usize) -> (&StateKey, &StateKey, LaneView<'_>) {
        let ((from, to), lane) = &self.edges[i];
        (from, to, LaneView { pool: self, lo: lane.lo, hi: lane.hi })
    }

    /// One lane view spanning every fragment, location-agnostic.
    pub fn all(&self) -> LaneView<'_> {
        LaneView { pool: self, lo: 0, hi: self.ranks.len() as u32 }
    }
}

/// A borrowed contiguous window onto a [`ColumnarPool`]'s columns — one
/// location's fragment population. `Copy`, pointer-sized-ish, and
/// allocation-free to construct; its lifetime is tied to the pool, which
/// must outlive every analysis pass run over it (the pipeline borrows
/// views for the duration of one detection/diagnosis call and never
/// stores them).
#[derive(Debug, Clone, Copy)]
pub struct LaneView<'a> {
    pool: &'a ColumnarPool,
    lo: u32,
    hi: u32,
}

impl<'a> LaneView<'a> {
    #[inline]
    fn at(&self, i: usize) -> usize {
        debug_assert!(self.lo as usize + i < self.hi as usize + 1);
        self.lo as usize + i
    }

    /// One active counter value, or zero when `id` is outside the
    /// fragment's set: O(1) via the popcount of the mask bits below it.
    #[inline]
    fn counter_or_zero(&self, j: usize, id: CounterId) -> f64 {
        let set = self.pool.sets[j];
        if !set.contains(id) {
            return 0.0;
        }
        let below = set.bits() & ((1u32 << id.index()) - 1);
        self.pool.counters[self.pool.coff[j] as usize + below.count_ones() as usize]
    }
}

impl PoolView for LaneView<'_> {
    fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    #[inline]
    fn rank(&self, i: usize) -> usize {
        self.pool.ranks[self.at(i)] as usize
    }

    #[inline]
    fn kind(&self, i: usize) -> FragmentKind {
        self.pool.kinds[self.at(i)]
    }

    #[inline]
    fn start(&self, i: usize) -> VirtualTime {
        VirtualTime::from_ns(self.pool.starts[self.at(i)])
    }

    #[inline]
    fn end(&self, i: usize) -> VirtualTime {
        VirtualTime::from_ns(self.pool.ends[self.at(i)])
    }

    #[inline]
    fn duration_ns(&self, i: usize) -> f64 {
        let j = self.at(i);
        self.pool.ends[j].saturating_sub(self.pool.starts[j]) as f64
    }

    fn workload_dim(&self, proxy_counters: &[CounterId]) -> usize {
        let (lo, hi) = (self.lo as usize, self.hi as usize);
        let mut dim = 0;
        for j in lo..hi {
            dim = dim.max(match self.pool.kinds[j] {
                FragmentKind::Computation => proxy_counters.len(),
                _ => (self.pool.aoff[j + 1] - self.pool.aoff[j]) as usize,
            });
        }
        dim
    }

    fn extend_workload_lane(
        &self,
        i: usize,
        proxy_counters: &[CounterId],
        dim: usize,
        out: &mut Vec<f64>,
    ) {
        let j = self.at(i);
        let before = out.len();
        match self.pool.kinds[j] {
            FragmentKind::Computation => {
                out.extend(proxy_counters.iter().map(|&id| self.counter_or_zero(j, id)));
            }
            _ => out.extend_from_slice(self.args(i)),
        }
        out.resize(before + dim, 0.0);
    }

    fn project_counters(&self, i: usize, keep: CounterSet) -> CounterDelta {
        let j = self.at(i);
        let mut out = CounterDelta::default();
        let base = self.pool.coff[j] as usize;
        for (pos, id) in self.pool.sets[j].iter().enumerate() {
            if keep.contains(id) {
                out.put(id, self.pool.counters[base + pos]);
            }
        }
        out
    }

    fn args(&self, i: usize) -> &[f64] {
        let j = self.at(i);
        &self.pool.args[self.pool.aoff[j] as usize..self.pool.aoff[j + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::DEFAULT_PROXY;
    use vapro_pmu::CounterDelta;

    fn frag(rank: usize, kind: FragmentKind, t: u64, ins: f64, args: Vec<f64>) -> Fragment {
        let mut counters = CounterDelta::default();
        counters.put(CounterId::TotIns, ins);
        counters.put(CounterId::Stores, ins / 2.0);
        Fragment {
            rank,
            kind,
            start: VirtualTime::from_ns(t),
            end: VirtualTime::from_ns(t + 100),
            counters,
            args,
        }
    }

    fn sample_pool() -> (Vec<Fragment>, ColumnarPool) {
        let frags = vec![
            frag(0, FragmentKind::Computation, 0, 1000.0, vec![]),
            frag(1, FragmentKind::Computation, 50, 2000.0, vec![]),
            frag(0, FragmentKind::Communication, 120, 0.0, vec![4096.0, 3.0]),
        ];
        let mut pool = ColumnarPool::new();
        pool.begin_edge(
            StateKey::Start,
            StateKey::Site(vapro_sim::CallSite("w:MPI_Barrier")),
        );
        pool.push(&frags[0]);
        pool.push(&frags[1]);
        pool.begin_vertex(StateKey::Site(vapro_sim::CallSite("w:MPI_Barrier")));
        pool.push(&frags[2]);
        (frags, pool)
    }

    #[test]
    fn lane_views_mirror_the_fragments_they_were_built_from() {
        let (frags, pool) = sample_pool();
        assert_eq!(pool.len(), 3);
        let (_, _, edge) = pool.edge(0);
        let (_, vertex) = pool.vertex(0);
        let aos: Vec<&Fragment> = frags.iter().collect();
        let edge_aos = &aos[..2];
        let vertex_aos = &aos[2..];
        for (view, aos) in [(&edge as &dyn PoolView, edge_aos), (&vertex, vertex_aos)] {
            assert_eq!(view.len(), aos.len());
            for (i, f) in aos.iter().enumerate() {
                assert_eq!(view.rank(i), f.rank);
                assert_eq!(view.kind(i), f.kind);
                assert_eq!(view.start(i), f.start);
                assert_eq!(view.end(i), f.end);
                assert_eq!(view.duration_ns(i).to_bits(), f.duration_ns().to_bits());
                assert_eq!(view.args(i), &f.args[..]);
            }
        }
    }

    #[test]
    fn workload_lanes_match_the_aos_helper() {
        let (frags, pool) = sample_pool();
        let aos: Vec<&Fragment> = frags.iter().collect();
        let all = pool.all();
        let dim = all.workload_dim(&DEFAULT_PROXY);
        assert_eq!(dim, aos.as_slice().workload_dim(&DEFAULT_PROXY));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..aos.len() {
            all.extend_workload_lane(i, &DEFAULT_PROXY, dim, &mut a);
            aos.as_slice().extend_workload_lane(i, &DEFAULT_PROXY, dim, &mut b);
        }
        assert_eq!(a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                   b.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn projected_counters_round_trip_exactly() {
        let (frags, pool) = sample_pool();
        let all = pool.all();
        let keep = CounterSet::from_ids(&[CounterId::TotIns, CounterId::Tsc]);
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(all.project_counters(i, keep), f.counters.project(keep));
            assert_eq!(all.project_counters(i, CounterSet::all()), f.counters);
        }
    }

    #[test]
    fn clear_keeps_capacity_and_resets_state() {
        let (frags, mut pool) = sample_pool();
        let cap = pool.counters.capacity();
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.num_vertices() + pool.num_edges(), 0);
        assert_eq!(pool.counters.capacity(), cap);
        // Refill works after clear.
        pool.begin_vertex(StateKey::Start);
        pool.push(&frags[0]);
        assert_eq!(pool.vertex(0).1.len(), 1);
    }

    #[test]
    fn empty_lanes_are_well_formed() {
        let mut pool = ColumnarPool::new();
        pool.begin_vertex(StateKey::Start);
        pool.begin_edge(StateKey::Start, StateKey::Start);
        let (_, v) = pool.vertex(0);
        let (_, _, e) = pool.edge(0);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(v.workload_dim(&DEFAULT_PROXY), 0);
    }
}
