//! Fragments: the unit of observation.
//!
//! A *fragment* is one execution of a code snippet — either the interval
//! between two consecutive external invocations (a **computation**
//! fragment, attached to an STG edge) or one external invocation itself
//! (a **communication** or **IO** fragment, attached to an STG vertex).
//! Each fragment carries elapsed virtual time, a counter delta restricted
//! to the active counter set, and — for invocations — the
//! workload-identifying argument vector (paper §3.3).

use serde::{Deserialize, Serialize};
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::VirtualTime;

/// Which category a fragment belongs to (the paper reports computation,
/// network and IO performance separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Computation between invocations (STG edge).
    Computation,
    /// A communication invocation (STG vertex).
    Communication,
    /// An IO invocation (STG vertex).
    Io,
    /// Thread-synchronisation or user-marker invocation (STG vertex);
    /// analysed with the communication category.
    Other,
}

/// Counts [`Fragment`] clones — the instrument behind the zero-copy
/// guarantees of the merge, windowed-ingestion and batched-diagnosis
/// paths. Compiled in for debug builds and for release builds with the
/// `clone-count` feature (the diagnose bench uses the latter to prove
/// zero full-population clones at optimised speeds); plain release
/// builds compile the counter out entirely.
#[cfg(any(debug_assertions, feature = "clone-count"))]
pub mod clone_count {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    thread_local! {
        static CLONES: Cell<u64> = const { Cell::new(0) };
    }

    static TOTAL: AtomicU64 = AtomicU64::new(0);

    /// Fragment clones performed *by the current thread* so far. Tests
    /// snapshot this, run a single-threaded pipeline, and assert the
    /// delta — the thread-local keeps concurrently-running tests from
    /// polluting each other's counts.
    pub fn on_this_thread() -> u64 {
        CLONES.with(Cell::get)
    }

    /// Fragment clones performed by *any* thread in this process so far.
    /// Benches snapshot this around a rayon-parallel pipeline, where the
    /// thread-local count would miss worker-thread clones.
    pub fn in_process() -> u64 {
        TOTAL.load(Ordering::Relaxed)
    }

    pub(super) fn record() {
        CLONES.with(|c| c.set(c.get() + 1));
        TOTAL.fetch_add(1, Ordering::Relaxed);
    }
}

/// One observed fragment.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// Originating rank.
    pub rank: usize,
    /// Fragment category.
    pub kind: FragmentKind,
    /// Virtual start time.
    pub start: VirtualTime,
    /// Virtual end time.
    pub end: VirtualTime,
    /// Counter delta over the fragment (projected to the active set).
    pub counters: CounterDelta,
    /// Invocation arguments (empty for computation fragments).
    pub args: Vec<f64>,
}

impl Clone for Fragment {
    fn clone(&self) -> Fragment {
        #[cfg(any(debug_assertions, feature = "clone-count"))]
        clone_count::record();
        Fragment {
            rank: self.rank,
            kind: self.kind,
            start: self.start,
            end: self.end,
            counters: self.counters.clone(),
            args: self.args.clone(),
        }
    }
}

impl Fragment {
    /// Elapsed virtual time.
    pub fn duration(&self) -> VirtualTime {
        self.end.saturating_since(self.start)
    }

    /// Elapsed time in nanoseconds as `f64`.
    pub fn duration_ns(&self) -> f64 {
        self.duration().ns() as f64
    }

    /// The workload vector used for fixed-workload clustering:
    ///
    /// * computation — the configured proxy counters (TOT_INS by default,
    ///   §3.3: PMU metrics represent computation workload);
    /// * communication / IO — the invocation arguments (message size, peer,
    ///   fd, mode; PMU values would reflect busy-waiting, not workload).
    pub fn workload_vector(&self, proxy_counters: &[CounterId]) -> Vec<f64> {
        match self.kind {
            FragmentKind::Computation => proxy_counters
                .iter()
                .map(|&id| self.counters.get_or_zero(id))
                .collect(),
            _ => self.args.clone(),
        }
    }

    /// Euclidean norm of a workload vector.
    pub fn vector_norm(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// The default computation workload proxy: total instructions
/// (paper Fig. 5 shows TOT_INS is stable under noise while TSC is not).
pub const DEFAULT_PROXY: [CounterId; 1] = [CounterId::TotIns];

/// An extended proxy adding memory-reference counts, for workloads whose
/// instruction counts alone are ambiguous (the paper lets users add
/// load/store counts or cache metrics at extra overhead).
pub const EXTENDED_PROXY: [CounterId; 3] =
    [CounterId::TotIns, CounterId::LoadsL1Hit, CounterId::Stores];

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(kind: FragmentKind, ins: f64, args: Vec<f64>) -> Fragment {
        let mut counters = CounterDelta::default();
        counters.put(CounterId::TotIns, ins);
        counters.put(CounterId::Tsc, ins * 2.0);
        Fragment {
            rank: 0,
            kind,
            start: VirtualTime::from_ns(100),
            end: VirtualTime::from_ns(400),
            counters,
            args,
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        let f = frag(FragmentKind::Computation, 10.0, vec![]);
        assert_eq!(f.duration().ns(), 300);
        assert_eq!(f.duration_ns(), 300.0);
    }

    #[test]
    fn computation_workload_vector_uses_proxy_counters() {
        let f = frag(FragmentKind::Computation, 1234.0, vec![]);
        assert_eq!(f.workload_vector(&DEFAULT_PROXY), vec![1234.0]);
    }

    #[test]
    fn invocation_workload_vector_uses_args() {
        let f = frag(FragmentKind::Communication, 99.0, vec![4096.0, 3.0]);
        assert_eq!(f.workload_vector(&DEFAULT_PROXY), vec![4096.0, 3.0]);
    }

    #[test]
    fn norm_is_euclidean() {
        assert_eq!(Fragment::vector_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(Fragment::vector_norm(&[]), 0.0);
    }
}
