//! The combined user-facing report (paper Fig. 2, step 7): for each
//! detected variance region, the quantified performance loss, and — when
//! diagnosis ran — the impact and duration of each contributing factor,
//! rendered as text and as JSON.

use crate::config::VaproConfig;
use crate::detect::pipeline::DetectionResult;
use crate::diagnose::driver::{diagnose_region, RegionOfInterest};
use crate::diagnose::progressive::DiagnosisReport;
use crate::fragment::FragmentKind;
use crate::stg::Stg;
use serde::Serialize;

/// One region's entry in the final report.
#[derive(Debug, Serialize)]
pub struct RegionReport {
    /// Reporting category ("computation", "communication", "io").
    pub category: &'static str,
    /// Inclusive rank range.
    pub ranks: (usize, usize),
    /// Window start, seconds.
    pub t_start_s: f64,
    /// Window end, seconds.
    pub t_end_s: f64,
    /// Mean normalised performance inside the region.
    pub mean_perf: f64,
    /// Quantified performance loss, seconds.
    pub loss_s: f64,
    /// The most fine-grained factors diagnosis reached (empty when
    /// diagnosis could not run, e.g. counters too narrow).
    pub culprits: Vec<String>,
    /// Per-factor impact shares from the last diagnosis stage that
    /// evaluated them, as (factor, share-of-slowdown).
    pub factor_impacts: Vec<(String, f64)>,
    /// Data-shipping periods the diagnosis consumed.
    pub diagnosis_periods: usize,
}

/// Data provenance of one closed streaming window: which ranks actually
/// contributed, and what the transport lost on the way. Downstream
/// consumers use it to distinguish "rank 3 is slow" (a finding) from
/// "rank 3's data never arrived" (a caveat).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WindowCoverage {
    /// Ranks the analysis expected.
    pub nranks: usize,
    /// Ranks whose shipping mark had passed the window end when it
    /// closed — their data for this window is complete.
    pub ranks_complete: usize,
    /// Ranks with no fragment overlapping the window at close time.
    pub ranks_absent: Vec<usize>,
    /// The subset of ranks declared dead by the straggler policy.
    pub ranks_dead: Vec<usize>,
    /// Frames rejected for a checksum mismatch (whole run, attributed to
    /// windows closed since the previous one).
    pub corrupt_frames: u64,
    /// Retransmitted frames deduplicated by sequence number.
    pub duplicate_frames: u64,
    /// Frames from dead ranks discarded under `LateDataPolicy::Drop`.
    pub dropped_late_frames: u64,
    /// Frames dropped by the ahead-of-watermark buffer cap.
    pub dropped_backpressure_frames: u64,
    /// Bytes those backpressure drops accounted for.
    pub dropped_backpressure_bytes: u64,
    /// Sequence-number gaps currently outstanding across ranks: frames
    /// known sent (a later sequence arrived) but never received.
    pub seq_gaps: u64,
    /// `ranks_complete / nranks` — 1.0 means every rank's data for this
    /// window arrived in full.
    pub completeness: f64,
}

impl WindowCoverage {
    /// The fault-free coverage: every rank present and complete, nothing
    /// dropped. What one-shot (non-streaming) analyses report.
    pub fn full(nranks: usize) -> WindowCoverage {
        WindowCoverage {
            nranks,
            ranks_complete: nranks,
            ranks_absent: Vec::new(),
            ranks_dead: Vec::new(),
            corrupt_frames: 0,
            duplicate_frames: 0,
            dropped_late_frames: 0,
            dropped_backpressure_frames: 0,
            dropped_backpressure_bytes: 0,
            seq_gaps: 0,
            completeness: 1.0,
        }
    }

    /// Anything to caveat? True when data was lost, a rank is missing or
    /// the window closed without every rank's mark.
    pub fn is_degraded(&self) -> bool {
        self.completeness < 1.0
            || !self.ranks_absent.is_empty()
            || !self.ranks_dead.is_empty()
            || self.corrupt_frames > 0
            || self.dropped_late_frames > 0
            || self.dropped_backpressure_frames > 0
            || self.seq_gaps > 0
    }
}

/// The complete report of one analysis.
#[derive(Debug, Serialize)]
pub struct VaproReport {
    /// Detection coverage.
    pub coverage: f64,
    /// Ranked region reports.
    pub regions: Vec<RegionReport>,
    /// Rarely-executed paths flagged for manual attention.
    pub rare_paths: Vec<(String, usize, f64)>,
}

impl VaproReport {
    /// Build the report: each detected region is diagnosed (computation
    /// regions only — communication/IO variance carries no PMU breakdown,
    /// paper §4 applies the model to computation time).
    pub fn build(detection: &DetectionResult, stgs: &[Stg], cfg: &VaproConfig) -> VaproReport {
        let mut regions = Vec::new();
        let categories = [
            ("computation", &detection.comp_regions, true),
            ("communication", &detection.comm_regions, false),
            ("io", &detection.io_regions, false),
        ];
        for (category, list, diagnosable) in categories {
            for r in list.iter() {
                let diagnosis: Option<DiagnosisReport> = if diagnosable {
                    let roi: RegionOfInterest = r.into();
                    diagnose_region(stgs, &roi, cfg)
                } else {
                    None
                };
                let (culprits, factor_impacts, periods) = match &diagnosis {
                    Some(d) => (
                        d.culprits.iter().map(|f| f.to_string()).collect(),
                        d.steps
                            .iter()
                            .flat_map(|s| s.report.factors.iter())
                            .filter(|f| f.major && !f.impact_share.is_nan())
                            .map(|f| (f.factor.to_string(), f.impact_share))
                            .collect(),
                        d.periods,
                    ),
                    None => (Vec::new(), Vec::new(), 0),
                };
                regions.push(RegionReport {
                    category,
                    ranks: r.rank_range,
                    t_start_s: r.t_start.as_secs_f64(),
                    t_end_s: r.t_end.as_secs_f64(),
                    mean_perf: r.mean_perf,
                    loss_s: r.loss_ns * 1e-9,
                    culprits,
                    factor_impacts,
                    diagnosis_periods: periods,
                });
            }
        }
        regions.sort_by(|a, b| b.loss_s.partial_cmp(&a.loss_s).expect("finite loss"));
        VaproReport {
            coverage: detection.coverage,
            regions,
            rare_paths: detection
                .rare_paths
                .iter()
                .map(|p| (p.location.clone(), p.count, p.total_ns * 1e-9))
                .collect(),
        }
    }

    /// Render as human-readable text.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "Vapro report — coverage {:.1}%", self.coverage * 100.0)
            .expect("write to string");
        if self.regions.is_empty() {
            writeln!(out, "no performance variance detected").expect("write");
        }
        for (i, r) in self.regions.iter().enumerate() {
            writeln!(
                out,
                "[{}] {} variance: ranks {}..={}, {:.3}s..{:.3}s, perf {:.2}, loss {:.3}s",
                i + 1,
                r.category,
                r.ranks.0,
                r.ranks.1,
                r.t_start_s,
                r.t_end_s,
                r.mean_perf,
                r.loss_s
            )
            .expect("write");
            if !r.culprits.is_empty() {
                writeln!(
                    out,
                    "    diagnosis ({} periods): {}",
                    r.diagnosis_periods,
                    r.culprits.join(", ")
                )
                .expect("write");
                for (factor, share) in &r.factor_impacts {
                    writeln!(out, "      {factor}: {:.1}% of the slowdown", share * 100.0)
                        .expect("write");
                }
            }
        }
        for (loc, count, secs) in self.rare_paths.iter().take(5) {
            writeln!(
                out,
                "rare path: {loc} ({count} executions, {secs:.3}s) — check manually"
            )
            .expect("write");
        }
        out
    }

    /// Render as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("serialisable report")
    }

    /// The top region of a category, if any.
    pub fn top_of(&self, kind: FragmentKind) -> Option<&RegionReport> {
        let cat = match kind {
            FragmentKind::Computation => "computation",
            FragmentKind::Communication | FragmentKind::Other => "communication",
            FragmentKind::Io => "io",
        };
        self.regions.iter().find(|r| r.category == cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::pipeline::detect;
    use crate::fragment::Fragment;
    use crate::stg::StateKey;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vapro_pmu::{events, CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
    use vapro_sim::{CallSite, VirtualTime};

    fn noisy_stgs() -> Vec<Stg> {
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
        let spec = WorkloadSpec::memory_bound(2e6);
        (0..4)
            .map(|rank| {
                let mut rng = ChaCha8Rng::seed_from_u64(rank as u64);
                let mut stg = Stg::new();
                let s0 = stg.state(StateKey::Start);
                let s1 = stg.state(StateKey::Site(CallSite("r:MPI_Barrier")));
                stg.transition(s0, s1);
                let e = stg.transition(s1, s1);
                let mut t = 0u64;
                for i in 0..24 {
                    let env = if rank == 1 && i % 2 == 1 {
                        NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() }
                    } else {
                        NoiseEnv::quiet()
                    };
                    let out = model.execute(&spec, &env, &mut rng);
                    let start = VirtualTime::from_ns(t);
                    let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                    t = end.ns() + 500;
                    stg.attach_edge_fragment(
                        e,
                        Fragment {
                            rank,
                            kind: FragmentKind::Computation,
                            start,
                            end,
                            counters: out.counters.project(events::s3_memory_set()),
                            args: vec![],
                        },
                    );
                }
                stg
            })
            .collect()
    }

    #[test]
    fn report_combines_detection_and_diagnosis() {
        let cfg = VaproConfig::default().with_counters(events::s3_memory_set());
        let stgs = noisy_stgs();
        let det = detect(&stgs, 4, 24, &cfg);
        let report = VaproReport::build(&det, &stgs, &cfg);
        assert!(!report.regions.is_empty(), "variance not reported");
        let top = report.top_of(FragmentKind::Computation).unwrap();
        assert!(top.ranks.0 <= 1 && top.ranks.1 >= 1, "rank 1 missing: {top:?}");
        assert!(!top.culprits.is_empty(), "no diagnosis: {top:?}");
        assert!(top.loss_s > 0.0);
        let text = report.to_text();
        assert!(text.contains("computation variance"));
        assert!(text.contains("diagnosis"));
        let json = report.to_json();
        assert!(json["regions"][0]["culprits"].is_array());
    }

    #[test]
    fn quiet_detection_yields_an_empty_report() {
        let cfg = VaproConfig::default();
        let stgs: Vec<Stg> = vec![Stg::new()];
        let det = detect(&stgs, 1, 8, &cfg);
        let report = VaproReport::build(&det, &stgs, &cfg);
        assert!(report.regions.is_empty());
        assert!(report.to_text().contains("no performance variance"));
    }

    #[test]
    fn regions_rank_by_loss() {
        let cfg = VaproConfig::default().with_counters(events::s3_memory_set());
        let stgs = noisy_stgs();
        let det = detect(&stgs, 4, 24, &cfg);
        let report = VaproReport::build(&det, &stgs, &cfg);
        for w in report.regions.windows(2) {
            assert!(w[0].loss_s >= w[1].loss_s);
        }
    }
}
