//! The Vapro collector: the interceptor that slices execution into
//! fragments and builds the STG online.
//!
//! One collector instance lives in each rank (the "Vapro library" of
//! Fig. 2). At each intercepted invocation it:
//!
//! * closes the **computation fragment** running since the previous
//!   invocation's exit and attaches it to the STG edge
//!   `previous state → current state` with the counter delta over the
//!   interval;
//! * brackets the invocation itself, attaching a **communication/IO
//!   fragment** (elapsed time + argument vector) to the current state's
//!   vertex.
//!
//! Counters are projected to the configured active set at collection
//! time — a fragment only ever carries what the PMU was programmed for,
//! which is what makes progressive diagnosis necessary (paper §4.3).
//! The collector also keeps byte accounting to reproduce the storage
//! overhead numbers of §6.2 (12.8 / 47.4 KB per second per thread/process).

use crate::config::VaproConfig;
use crate::fragment::{Fragment, FragmentKind};
use crate::sampling::BackoffSampler;
use crate::stg::{StateId, StateKey, Stg};
use crate::wire::fragment_wire_bytes;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use vapro_pmu::CounterSnapshot;
use vapro_sim::{EnterEvent, ExitEvent, Interceptor, InvocationKind, VirtualTime};

/// Per-rank Vapro data collection.
pub struct Collector {
    cfg: VaproConfig,
    rank: usize,
    stg: Stg,
    /// State we are "coming from": the previous invocation's state and its
    /// exit snapshot.
    prev: Option<PrevExit>,
    /// The invocation currently in flight (between enter and exit).
    inflight: Option<Inflight>,
    sampler: BackoffSampler,
    sampling: bool,
    /// Estimated bytes of performance data recorded (storage overhead).
    bytes_recorded: u64,
    /// Fragments dropped by the sampler.
    sampled_out: u64,
}

struct PrevExit {
    state: StateId,
    time: VirtualTime,
    counters: CounterSnapshot,
}

struct Inflight {
    state: StateId,
    kind: FragmentKind,
    args: Vec<f64>,
    time: VirtualTime,
}

impl Collector {
    /// A collector for `rank` under `cfg`.
    pub fn new(rank: usize, cfg: VaproConfig) -> Self {
        debug_assert!(cfg.is_valid(), "invalid Vapro config");
        let sampling = cfg.sampling_enabled;
        let sampler = BackoffSampler::new(cfg.sampling_min_ns);
        Collector {
            cfg,
            rank,
            stg: Stg::new(),
            prev: None,
            inflight: None,
            sampler,
            sampling,
            bytes_recorded: 0,
            sampled_out: 0,
        }
    }

    /// The rank this collector observes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The configuration.
    pub fn config(&self) -> &VaproConfig {
        &self.cfg
    }

    /// The STG built so far.
    pub fn stg(&self) -> &Stg {
        &self.stg
    }

    /// Consume the collector, returning the STG.
    pub fn into_stg(self) -> Stg {
        self.stg
    }

    /// Bytes of performance data recorded so far.
    pub fn bytes_recorded(&self) -> u64 {
        self.bytes_recorded
    }

    /// Fragments skipped by the sampling policy.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    fn classify(kind: &InvocationKind) -> FragmentKind {
        match kind {
            InvocationKind::Comm { .. } => FragmentKind::Communication,
            InvocationKind::Io { .. } => FragmentKind::Io,
            InvocationKind::Thread { .. } | InvocationKind::UserMarker { .. } => {
                FragmentKind::Other
            }
        }
    }

    fn state_hash(state: StateId) -> u64 {
        let mut h = DefaultHasher::new();
        state.hash(&mut h);
        h.finish()
    }
}

impl Interceptor for Collector {
    fn on_enter(&mut self, ev: &EnterEvent) {
        let key = StateKey::for_invocation(self.cfg.stg_mode, ev.site, &ev.path);
        let state = self.stg.state(key);

        // Close the computation fragment since the previous exit.
        let from = match self.prev.take() {
            Some(p) => {
                let duration_ns = ev.time.saturating_since(p.time).ns() as f64;
                let record = !self.sampling
                    || self
                        .sampler
                        .should_record(Self::state_hash(state), duration_ns);
                if record {
                    let delta = ev
                        .counters
                        .delta_since(&p.counters)
                        .project(self.cfg.detection_counters);
                    let edge = self.stg_transition(p.state, state);
                    let frag = Fragment {
                        rank: self.rank,
                        kind: FragmentKind::Computation,
                        start: p.time,
                        end: ev.time,
                        counters: delta,
                        args: Vec::new(),
                    };
                    // Storage accounting charges what this fragment costs
                    // on the wire (§6.2) — sizes vary with the active
                    // counter set, so compute per fragment.
                    self.bytes_recorded += fragment_wire_bytes(&frag);
                    self.stg.attach_edge_fragment(edge, frag);
                } else {
                    self.sampled_out += 1;
                    // The transition itself is still part of the STG.
                    let _ = self.stg_transition(p.state, state);
                }
                p.state
            }
            None => {
                let start = self.stg.state(StateKey::Start);
                let _ = self.stg_transition(start, state);
                start
            }
        };
        let _ = from;

        self.inflight = Some(Inflight {
            state,
            kind: Self::classify(&ev.kind),
            args: ev.kind.arg_vector(),
            time: ev.time,
        });
    }

    fn on_exit(&mut self, ev: &ExitEvent) {
        let inflight = self.inflight.take().expect("exit without matching enter");
        let counters = ev.counters.project(self.cfg.detection_counters);
        // The invocation fragment: elapsed time + args. Its counter field
        // holds the *exit snapshot delta placeholder*: for vertex fragments
        // Vapro analyses elapsed time and arguments, not PMU values
        // (paper §3.3), so we store an empty-projection of the deltas and
        // keep args authoritative.
        let _ = counters;
        let frag = Fragment {
            rank: self.rank,
            kind: inflight.kind,
            start: inflight.time,
            end: ev.time,
            counters: Default::default(),
            args: inflight.args,
        };
        self.bytes_recorded += fragment_wire_bytes(&frag);
        self.stg.attach_vertex_fragment(inflight.state, frag);
        self.prev = Some(PrevExit {
            state: inflight.state,
            time: ev.time,
            counters: ev.counters.clone(),
        });
    }

    fn hook_cost_ns(&self) -> f64 {
        self.cfg.effective_hook_cost_ns()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl Collector {
    fn stg_transition(&mut self, from: StateId, to: StateId) -> crate::stg::EdgeId {
        self.stg.transition(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_pmu::{CounterId, CounterSnapshot};
    use vapro_sim::{CallPath, CallSite};

    fn snapshot(tsc: f64, ins: f64) -> CounterSnapshot {
        let mut c = CounterSnapshot::default();
        c.put(CounterId::Tsc, tsc);
        c.put(CounterId::TotIns, ins);
        c
    }

    fn enter(site: CallSite, t: u64, ins: f64) -> EnterEvent {
        EnterEvent {
            rank: 0,
            kind: InvocationKind::Comm { op: "MPI_Send", bytes: 64, peer: 1 },
            site,
            path: CallPath::new(&[], site),
            time: VirtualTime::from_ns(t),
            counters: snapshot(t as f64, ins),
        }
    }

    fn exit(t: u64, ins: f64) -> ExitEvent {
        ExitEvent { rank: 0, time: VirtualTime::from_ns(t), counters: snapshot(t as f64, ins) }
    }

    #[test]
    fn builds_edge_and_vertex_fragments() {
        let mut c = Collector::new(0, VaproConfig::default());
        let a = CallSite("a");
        let b = CallSite("b");
        // First invocation at a.
        c.on_enter(&enter(a, 100, 1000.0));
        c.on_exit(&exit(150, 1000.0));
        // Computation 150→300, then invocation at b.
        c.on_enter(&enter(b, 300, 3000.0));
        c.on_exit(&exit(350, 3000.0));

        let stg = c.stg();
        assert_eq!(stg.num_states(), 3); // start, a, b
        let a_id = stg.find_state(&StateKey::Site(a)).unwrap();
        let b_id = stg.find_state(&StateKey::Site(b)).unwrap();
        assert_eq!(stg.vertices()[a_id].fragments.len(), 1);
        assert_eq!(stg.vertices()[b_id].fragments.len(), 1);
        // The a→b edge carries the computation fragment.
        let edge = stg.edges().iter().find(|e| e.from == a_id && e.to == b_id).unwrap();
        assert_eq!(edge.fragments.len(), 1);
        let frag = &edge.fragments[0];
        assert_eq!(frag.duration().ns(), 150);
        assert_eq!(frag.counters.get(CounterId::TotIns), Some(2000.0));
    }

    #[test]
    fn vertex_fragment_keeps_args_and_duration() {
        let mut c = Collector::new(0, VaproConfig::default());
        c.on_enter(&enter(CallSite("a"), 100, 0.0));
        c.on_exit(&exit(180, 0.0));
        let stg = c.stg();
        let v = &stg.vertices()[stg.find_state(&StateKey::Site(CallSite("a"))).unwrap()];
        assert_eq!(v.fragments[0].args, vec![64.0, 1.0]);
        assert_eq!(v.fragments[0].duration().ns(), 80);
        assert_eq!(v.fragments[0].kind, FragmentKind::Communication);
    }

    #[test]
    fn repeated_site_accumulates_on_one_state() {
        let mut c = Collector::new(0, VaproConfig::default());
        let a = CallSite("loop");
        let mut t = 0;
        for i in 0..50 {
            c.on_enter(&enter(a, t + 100, (i * 1000) as f64));
            c.on_exit(&exit(t + 150, (i * 1000) as f64));
            t += 200;
        }
        let stg = c.stg();
        assert_eq!(stg.num_states(), 2); // start + loop
        let id = stg.find_state(&StateKey::Site(a)).unwrap();
        assert_eq!(stg.vertices()[id].fragments.len(), 50);
        // Self-loop edge with 49 computation fragments.
        let selfloop = stg.edges().iter().find(|e| e.from == id && e.to == id).unwrap();
        assert_eq!(selfloop.fragments.len(), 49);
    }

    #[test]
    fn context_aware_distinguishes_paths() {
        let mut c = Collector::new(0, VaproConfig::context_aware());
        let site = CallSite("shared");
        let mk = |frames: &[&'static str], t: u64| EnterEvent {
            rank: 0,
            kind: InvocationKind::Comm { op: "MPI_Send", bytes: 8, peer: 0 },
            site,
            path: CallPath::new(frames, site),
            time: VirtualTime::from_ns(t),
            counters: snapshot(t as f64, 0.0),
        };
        c.on_enter(&mk(&["warmup"], 100));
        c.on_exit(&exit(110, 0.0));
        c.on_enter(&mk(&["timed"], 200));
        c.on_exit(&exit(210, 0.0));
        // start + two distinct path states.
        assert_eq!(c.stg().num_states(), 3);
    }

    #[test]
    fn storage_accounting_grows_with_fragments() {
        let mut c = Collector::new(0, VaproConfig::default());
        let a = CallSite("x");
        c.on_enter(&enter(a, 10, 0.0));
        c.on_exit(&exit(20, 0.0));
        let one = c.bytes_recorded();
        c.on_enter(&enter(a, 40, 0.0));
        c.on_exit(&exit(50, 0.0));
        assert!(c.bytes_recorded() > one);
    }

    #[test]
    fn byte_accounting_matches_encoded_batch_size() {
        use crate::detect::window::Window;
        use crate::wire::FragmentBatch;
        // The collector's running byte counter must track what the data
        // actually costs on the binary wire: encode everything it
        // collected as one batch and compare. The batch adds a fixed
        // header + label dictionary, so with enough fragments the two
        // agree within 5 %.
        let mut c = Collector::new(0, VaproConfig::default());
        let sites = [CallSite("a"), CallSite("b")];
        let mut t = 0u64;
        for i in 0..500usize {
            c.on_enter(&enter(sites[i % 2], t + 10, (i * 100) as f64));
            c.on_exit(&exit(t + 25, (i * 100) as f64));
            t += 40;
        }
        let window = Window {
            start: VirtualTime::ZERO,
            end: VirtualTime::from_ns(u64::MAX),
        };
        let encoded = FragmentBatch::from_stg(c.stg(), 0, window).encode();
        let recorded = c.bytes_recorded() as f64;
        let actual = encoded.len() as f64;
        let err = (recorded - actual).abs() / actual;
        assert!(err < 0.05, "recorded {recorded} B vs encoded {actual} B ({:.1} % off)", err * 100.0);
    }

    #[test]
    fn sampling_drops_short_computation_fragments() {
        let cfg = VaproConfig {
            sampling_enabled: true,
            sampling_min_ns: 1_000_000.0, // everything here is "short"
            ..VaproConfig::default()
        };
        let mut c = Collector::new(0, cfg);
        let a = CallSite("hot");
        let mut t = 0;
        for i in 0..2000 {
            c.on_enter(&enter(a, t + 10, (i * 10) as f64));
            c.on_exit(&exit(t + 20, (i * 10) as f64));
            t += 30;
        }
        assert!(c.sampled_out() > 0);
        let stg = c.stg();
        let id = stg.find_state(&StateKey::Site(a)).unwrap();
        let selfloop = stg.edges().iter().find(|e| e.from == id && e.to == id).unwrap();
        assert!(selfloop.fragments.len() < 1999);
        // Vertex fragments are never sampled out (they are the cheap part).
        assert_eq!(stg.vertices()[id].fragments.len(), 2000);
    }

    #[test]
    #[should_panic(expected = "exit without matching enter")]
    fn exit_without_enter_is_a_hook_discipline_violation() {
        let mut c = Collector::new(0, VaproConfig::default());
        c.on_exit(&exit(100, 0.0));
    }

    #[test]
    fn fragment_count_matches_event_count() {
        // Invariant: after n complete invocations, the STG holds exactly
        // n vertex fragments and n−1 edge fragments (one computation
        // interval between each consecutive pair), however the sites
        // interleave.
        let sites = [CallSite("a"), CallSite("b"), CallSite("c")];
        let mut c = Collector::new(0, VaproConfig::default());
        let mut t = 0u64;
        let n = 97;
        for i in 0..n {
            let site = sites[(i * 7) % sites.len()];
            c.on_enter(&enter(site, t + 10, (i * 500) as f64));
            c.on_exit(&exit(t + 20, (i * 500) as f64));
            t += 40;
        }
        let stg = c.stg();
        let vertex_total: usize =
            stg.vertices().iter().map(|v| v.fragments.len()).sum();
        let edge_total: usize = stg.edges().iter().map(|e| e.fragments.len()).sum();
        assert_eq!(vertex_total, n);
        assert_eq!(edge_total, n - 1);
    }

    #[test]
    fn fragments_tile_the_timeline_without_overlap() {
        // Consecutive fragments (vertex, edge, vertex, …) partition the
        // observed time: each fragment starts where the previous ended.
        let mut c = Collector::new(0, VaproConfig::default());
        let site = CallSite("tile");
        let mut t = 0u64;
        for i in 0..20 {
            c.on_enter(&enter(site, t + 7, (i * 100) as f64));
            c.on_exit(&exit(t + 13, (i * 100) as f64));
            t += 20;
        }
        let stg = c.stg();
        let mut all: Vec<(u64, u64)> = stg
            .vertices()
            .iter()
            .flat_map(|v| v.fragments.iter())
            .chain(stg.edges().iter().flat_map(|e| e.fragments.iter()))
            .map(|f| (f.start.ns(), f.end.ns()))
            .collect();
        all.sort();
        for w in all.windows(2) {
            assert_eq!(w[0].1, w[1].0, "gap or overlap between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn counters_are_projected_to_detection_set() {
        let mut c = Collector::new(0, VaproConfig::default());
        let a = CallSite("p");
        let mut snap = snapshot(100.0, 10.0);
        snap.put(CounterId::StallsL2Miss, 5.0); // outside detection set
        c.on_enter(&EnterEvent {
            rank: 0,
            kind: InvocationKind::Comm { op: "MPI_Send", bytes: 1, peer: 0 },
            site: a,
            path: CallPath::new(&[], a),
            time: VirtualTime::from_ns(100),
            counters: snap.clone(),
        });
        c.on_exit(&exit(150, 10.0));
        let mut snap2 = snapshot(300.0, 500.0);
        snap2.put(CounterId::StallsL2Miss, 25.0);
        c.on_enter(&EnterEvent {
            rank: 0,
            kind: InvocationKind::Comm { op: "MPI_Send", bytes: 1, peer: 0 },
            site: a,
            path: CallPath::new(&[], a),
            time: VirtualTime::from_ns(300),
            counters: snap2,
        });
        let stg = c.stg();
        let id = stg.find_state(&StateKey::Site(a)).unwrap();
        let e = stg.edges().iter().find(|e| e.from == id && e.to == id).unwrap();
        let frag = &e.fragments[0];
        assert!(frag.counters.get(CounterId::TotIns).is_some());
        assert!(frag.counters.get(CounterId::StallsL2Miss).is_none());
    }
}
