//! Variance diagnosis (paper §4): the hierarchical breakdown model,
//! factor-time quantification (formula-based and OLS-based), contribution
//! analysis, and the progressive drill-down that keeps the active counter
//! set small.

pub mod batch;
pub mod contribution;
pub mod driver;
pub mod factor;
pub mod progressive;
pub mod quantify;

pub use batch::{
    diagnose_regions, diagnose_regions_columnar, diagnose_regions_seq, DiagnosisBatch, EdgePools,
    ScratchProvider,
};
pub use contribution::{analyze_contributions, ContributionReport, FactorContribution};
pub use driver::{diagnose_region, RegionOfInterest};
pub use factor::{Factor, Stage};
pub use progressive::{
    diagnose_progressively, diagnose_progressively_with, DiagnosisReport, FragmentProvider,
    StageStep,
};
pub use quantify::{factor_value, ols_impacts, FactorValues, OlsImpact};
