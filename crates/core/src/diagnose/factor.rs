//! The variance breakdown model (paper Fig. 10): a tree of factors, each
//! accounting for part of a fixed-workload fragment's execution time.
//!
//! Stage-one splits wall time into retiring / frontend bound /
//! bad speculation / backend bound (the top-down CPU taxonomy) plus
//! *suspension* (the process not running at all). Backend refines into
//! core vs memory, memory into L1/L2/L3/DRAM; suspension refines into
//! page faults (soft/hard), context switches (voluntary/involuntary) and
//! signals. Factors are *quantifiable in time* when PMU formulas give
//! their time share directly; OS event counts are not, and take the
//! OLS route (§4.2).

use serde::{Deserialize, Serialize};
use vapro_pmu::{events, CounterId, CounterSet};

/// Diagnosis stage (S1 → S2 → S3 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Top-level split of wall time.
    S1,
    /// First refinement.
    S2,
    /// Second refinement.
    S3,
}

/// A node of the variance breakdown model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Factor {
    // --- S1 ---
    /// Useful work (retiring uops).
    Retiring,
    /// Instruction supply starvation.
    FrontendBound,
    /// Wasted speculation.
    BadSpeculation,
    /// Execution/memory stalls.
    BackendBound,
    /// Process suspended by the OS.
    Suspension,
    // --- S2 under BackendBound ---
    /// Non-memory execution stalls.
    CoreBound,
    /// Memory-hierarchy stalls.
    MemoryBound,
    // --- S2 under Suspension ---
    /// Page-fault service.
    PageFault,
    /// Context-switch effects.
    ContextSwitch,
    /// Signal delivery.
    Signal,
    // --- S3 under MemoryBound ---
    /// Stalls resolved in L1.
    L1Bound,
    /// Stalls resolved in L2.
    L2Bound,
    /// Stalls resolved in L3.
    L3Bound,
    /// Stalls resolved in DRAM.
    DramBound,
    // --- S3 under PageFault ---
    /// Minor faults.
    SoftPageFault,
    /// Major faults.
    HardPageFault,
    // --- S3 under ContextSwitch ---
    /// Blocking waits.
    VoluntaryCs,
    /// Preemption.
    InvoluntaryCs,
}

impl Factor {
    /// The five top-level factors.
    pub const S1: [Factor; 5] = [
        Factor::Retiring,
        Factor::FrontendBound,
        Factor::BadSpeculation,
        Factor::BackendBound,
        Factor::Suspension,
    ];

    /// The stage this factor belongs to.
    pub fn stage(self) -> Stage {
        match self {
            Factor::Retiring
            | Factor::FrontendBound
            | Factor::BadSpeculation
            | Factor::BackendBound
            | Factor::Suspension => Stage::S1,
            Factor::CoreBound | Factor::MemoryBound | Factor::PageFault
            | Factor::ContextSwitch
            | Factor::Signal => Stage::S2,
            _ => Stage::S3,
        }
    }

    /// The refinement of this factor, empty at the leaves.
    pub fn children(self) -> &'static [Factor] {
        match self {
            Factor::BackendBound => &[Factor::CoreBound, Factor::MemoryBound],
            Factor::Suspension => {
                &[Factor::PageFault, Factor::ContextSwitch, Factor::Signal]
            }
            Factor::MemoryBound => {
                &[Factor::L1Bound, Factor::L2Bound, Factor::L3Bound, Factor::DramBound]
            }
            Factor::PageFault => &[Factor::SoftPageFault, Factor::HardPageFault],
            Factor::ContextSwitch => &[Factor::VoluntaryCs, Factor::InvoluntaryCs],
            _ => &[],
        }
    }

    /// The parent factor (None for S1).
    pub fn parent(self) -> Option<Factor> {
        match self {
            Factor::CoreBound | Factor::MemoryBound => Some(Factor::BackendBound),
            Factor::PageFault | Factor::ContextSwitch | Factor::Signal => {
                Some(Factor::Suspension)
            }
            Factor::L1Bound | Factor::L2Bound | Factor::L3Bound | Factor::DramBound => {
                Some(Factor::MemoryBound)
            }
            Factor::SoftPageFault | Factor::HardPageFault => Some(Factor::PageFault),
            Factor::VoluntaryCs | Factor::InvoluntaryCs => Some(Factor::ContextSwitch),
            _ => None,
        }
    }

    /// True when the factor's time share follows from PMU formulas
    /// (the shaded nodes of Fig. 10); false for OS event counts, whose
    /// time impact must be estimated statistically.
    pub fn time_quantifiable(self) -> bool {
        !matches!(
            self,
            Factor::PageFault
                | Factor::ContextSwitch
                | Factor::Signal
                | Factor::SoftPageFault
                | Factor::HardPageFault
                | Factor::VoluntaryCs
                | Factor::InvoluntaryCs
        )
    }

    /// The counters that must be active to evaluate this factor.
    pub fn required_counters(self) -> CounterSet {
        match self {
            Factor::Retiring | Factor::FrontendBound | Factor::BadSpeculation
            | Factor::BackendBound
            | Factor::Suspension => events::s1_set(),
            Factor::CoreBound | Factor::MemoryBound => events::s2_backend_set(),
            Factor::PageFault | Factor::Signal | Factor::ContextSwitch => {
                events::s2_suspension_set()
            }
            Factor::L1Bound | Factor::L2Bound | Factor::L3Bound | Factor::DramBound => {
                events::s3_memory_set()
            }
            Factor::SoftPageFault | Factor::HardPageFault => CounterSet::from_ids(&[
                CounterId::PageFaultsSoft,
                CounterId::PageFaultsHard,
            ])
            .union(events::s1_set()),
            Factor::VoluntaryCs | Factor::InvoluntaryCs => CounterSet::from_ids(&[
                CounterId::CtxSwitchVoluntary,
                CounterId::CtxSwitchInvoluntary,
            ])
            .union(events::s1_set()),
        }
    }

    /// A human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Factor::Retiring => "retiring",
            Factor::FrontendBound => "frontend bound",
            Factor::BadSpeculation => "bad speculation",
            Factor::BackendBound => "backend bound",
            Factor::Suspension => "suspension",
            Factor::CoreBound => "core bound",
            Factor::MemoryBound => "memory bound",
            Factor::PageFault => "page fault",
            Factor::ContextSwitch => "context switch",
            Factor::Signal => "signal",
            Factor::L1Bound => "L1 bound",
            Factor::L2Bound => "L2 bound",
            Factor::L3Bound => "L3 bound",
            Factor::DramBound => "DRAM bound",
            Factor::SoftPageFault => "soft page fault",
            Factor::HardPageFault => "hard page fault",
            Factor::VoluntaryCs => "voluntary context switch",
            Factor::InvoluntaryCs => "involuntary context switch",
        }
    }
}

impl std::fmt::Display for Factor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_consistent() {
        // Every child's parent points back.
        for f in Factor::S1 {
            for &c in f.children() {
                assert_eq!(c.parent(), Some(f), "{c} parent mismatch");
                for &g in c.children() {
                    assert_eq!(g.parent(), Some(c), "{g} parent mismatch");
                }
            }
        }
    }

    #[test]
    fn stages_increase_down_the_tree() {
        for f in Factor::S1 {
            assert_eq!(f.stage(), Stage::S1);
            for &c in f.children() {
                assert_eq!(c.stage(), Stage::S2);
                for &g in c.children() {
                    assert_eq!(g.stage(), Stage::S3);
                }
            }
        }
    }

    #[test]
    fn backend_splits_into_core_and_memory() {
        assert_eq!(
            Factor::BackendBound.children(),
            &[Factor::CoreBound, Factor::MemoryBound]
        );
        assert_eq!(Factor::MemoryBound.children().len(), 4);
    }

    #[test]
    fn suspension_children_are_not_time_quantifiable() {
        // The paper's Fig. 10: PF/CS/signal counts need the OLS method.
        for &c in Factor::Suspension.children() {
            assert!(!c.time_quantifiable(), "{c} should be unquantifiable");
        }
        assert!(Factor::Suspension.time_quantifiable());
        assert!(Factor::L2Bound.time_quantifiable());
    }

    #[test]
    fn required_counters_grow_with_depth() {
        let s1 = Factor::BackendBound.required_counters();
        let s2 = Factor::MemoryBound.required_counters();
        let s3 = Factor::DramBound.required_counters();
        assert!(s1.len() < s2.len());
        assert!(s2.len() < s3.len());
        // Every S1 counter remains needed at S3.
        for id in s1.iter() {
            assert!(s3.contains(id));
        }
    }

    #[test]
    fn leaves_have_no_children() {
        for f in [
            Factor::Retiring,
            Factor::L2Bound,
            Factor::DramBound,
            Factor::SoftPageFault,
            Factor::InvoluntaryCs,
            Factor::Signal,
        ] {
            assert!(f.children().is_empty(), "{f} should be a leaf");
        }
    }
}
