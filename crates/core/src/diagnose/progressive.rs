//! Progressive diagnosis (paper §4.3): locate major factors stage by
//! stage, widening the active counter set only along the branches that
//! matter, so only a few counters are live at any time.
//!
//! Each step costs one client→server data-shipping period plus one
//! analysis latency; locating an S_n factor takes n periods — cheap
//! against production run times. The driver asks a *data provider* for
//! cluster fragments collected under a given counter set (in a live
//! deployment the server notifies clients to reprogram their PMUs; in
//! this reproduction the provider re-projects or re-simulates).

use crate::diagnose::contribution::{analyze_contributions, ContributionReport};
use crate::diagnose::factor::Factor;
use crate::diagnose::quantify::{ols_impacts, FactorValues, OlsImpact};
use crate::fragment::Fragment;
use serde::{Deserialize, Serialize};
use vapro_pmu::CounterSet;

/// One stage of the drill-down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStep {
    /// Factors analysed at this step.
    pub factors: Vec<Factor>,
    /// Counter set that had to be active.
    pub counters_used: usize,
    /// Contribution analysis of this step.
    pub report: ContributionReport,
    /// OLS impacts for this step's count factors (empty when all factors
    /// were formula-quantifiable or OLS lacked data).
    pub ols: Vec<OlsImpact>,
}

/// Final output of progressive diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// The drill-down trace, one entry per stage analysed.
    pub steps: Vec<StageStep>,
    /// The most fine-grained major factors found (leaves of the descent).
    pub culprits: Vec<Factor>,
    /// Data-shipping periods consumed (the n of "n periods for S_n").
    pub periods: usize,
}

impl DiagnosisReport {
    /// The top culprit, if any.
    pub fn top_culprit(&self) -> Option<Factor> {
        self.culprits.first().copied()
    }

    /// The last step's report for one factor.
    pub fn final_contribution(&self, f: Factor) -> Option<f64> {
        self.steps
            .iter()
            .rev()
            .find_map(|s| s.report.of(f).map(|c| c.contribution))
    }

    /// Impact share (fraction of the slowdown) of a factor at the step
    /// where it was analysed.
    pub fn impact_share(&self, f: Factor) -> Option<f64> {
        self.steps
            .iter()
            .rev()
            .find_map(|s| s.report.of(f).map(|c| c.impact_share))
    }
}

/// A source of cluster fragments as collected under a given counter set.
///
/// Borrow-based twin of the closure form of [`diagnose_progressively`]:
/// `collect` returns a slice the provider owns, so implementations can
/// project counters into a reused scratch buffer instead of allocating
/// (and cloning) a fresh population at every S1→S3 step. In a live
/// deployment the provider reprograms client PMUs and waits a shipping
/// period; in this reproduction it re-projects or re-simulates.
pub trait FragmentProvider {
    /// The cluster's fragments restricted to `set`. The slice only needs
    /// to live until the next `collect` call.
    fn collect(&mut self, set: CounterSet) -> &[Fragment];
}

/// Adapter giving the closure entry point the borrow-based engine: the
/// closure's fresh `Vec` is parked in `buf` and lent out.
struct FnProvider<'a> {
    f: &'a mut dyn FnMut(CounterSet) -> Vec<Fragment>,
    buf: Vec<Fragment>,
}

impl FragmentProvider for FnProvider<'_> {
    fn collect(&mut self, set: CounterSet) -> &[Fragment] {
        self.buf = (self.f)(set);
        &self.buf
    }
}

/// Run the drill-down over one cluster. `provider` returns the cluster's
/// fragments as collected under the given counter set — fragments whose
/// recorded counters don't include the set are unusable and must be
/// re-collected, which is what costs a period per stage.
pub fn diagnose_progressively(
    provider: &mut dyn FnMut(CounterSet) -> Vec<Fragment>,
    ka: f64,
    major_threshold: f64,
    alpha: f64,
) -> Option<DiagnosisReport> {
    let mut adapter = FnProvider { f: provider, buf: Vec::new() };
    diagnose_progressively_with(&mut adapter, ka, major_threshold, alpha)
}

/// Borrow-based form of [`diagnose_progressively`]: identical descent,
/// but each stage borrows the provider's population instead of taking an
/// owned `Vec`. This is what lets the batched driver reuse one scratch
/// buffer across all steps with zero full-population `Fragment` clones.
pub fn diagnose_progressively_with(
    provider: &mut dyn FragmentProvider,
    ka: f64,
    major_threshold: f64,
    alpha: f64,
) -> Option<DiagnosisReport> {
    let mut steps: Vec<StageStep> = Vec::new();
    let mut periods = 0usize;
    let mut frontier: Vec<Factor> = Factor::S1.into();
    let mut culprits: Vec<Factor> = Vec::new();

    while !frontier.is_empty() {
        // One collection period for this stage's counter set.
        let needed = frontier
            .iter()
            .fold(CounterSet::empty(), |acc, f| acc.union(f.required_counters()));
        periods += 1;
        let fragments = provider.collect(needed);
        let refs: Vec<&Fragment> = fragments.iter().collect();
        let Some(fv) = FactorValues::compute(&refs, &frontier) else {
            break;
        };
        let Some(report) = analyze_contributions(&fv, ka, major_threshold) else {
            break;
        };
        // OLS for the count factors in this stage.
        let count_factors: Vec<Factor> = frontier
            .iter()
            .copied()
            .filter(|f| !f.time_quantifiable())
            .collect();
        let ols = if count_factors.is_empty() {
            Vec::new()
        } else {
            FactorValues::compute(&refs, &count_factors)
                .and_then(|cfv| ols_impacts(&cfv, alpha))
                .map(|(impacts, _)| impacts)
                .unwrap_or_default()
        };

        let majors = report.major_factors();
        steps.push(StageStep {
            factors: frontier.clone(), // vapro-lint: allow(R1, per-step factor list has at most five entries)
            counters_used: needed.len(),
            report,
            ols,
        });

        // Descend: majors with children are refined next; leaves are
        // final culprits.
        let mut next = Vec::new();
        for m in majors {
            if m.children().is_empty() {
                if !culprits.contains(&m) {
                    culprits.push(m);
                }
            } else {
                next.extend_from_slice(m.children());
            }
        }
        frontier = next;
    }

    if steps.is_empty() {
        return None;
    }
    // If the descent ended with unrefined majors (analysis ran dry), take
    // the last step's majors as culprits.
    if culprits.is_empty() {
        if let Some(last) = steps.last() {
            culprits = last.report.major_factors();
        }
    }
    Some(DiagnosisReport { steps, culprits, periods })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vapro_pmu::{CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
    use vapro_sim::VirtualTime;

    /// A provider that simulates a fixed-workload cluster under the given
    /// noise for odd-indexed fragments, projecting counters to the
    /// requested set (modelling PMU reprogramming between periods).
    fn provider_for(
        spec: WorkloadSpec,
        noisy: NoiseEnv,
        n: usize,
    ) -> impl FnMut(CounterSet) -> Vec<Fragment> {
        move |set: CounterSet| {
            let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let mut t = 0u64;
            (0..n)
                .map(|i| {
                    let env = if i % 2 == 1 { noisy } else { NoiseEnv::quiet() };
                    let out = model.execute(&spec, &env, &mut rng);
                    let start = VirtualTime::from_ns(t);
                    let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                    t = end.ns() + 100;
                    Fragment {
                        rank: 0,
                        kind: FragmentKind::Computation,
                        start,
                        end,
                        counters: out.counters.project(set),
                        args: vec![],
                    }
                })
                .collect()
        }
    }

    #[test]
    fn memory_noise_descends_to_dram_bound() {
        let mut provider = provider_for(
            WorkloadSpec::memory_bound(4e6),
            NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() },
            40,
        );
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05).unwrap();
        // S1 → backend; S2 → memory; S3 → DRAM.
        assert!(rep.culprits.contains(&Factor::DramBound), "culprits {:?}", rep.culprits);
        assert_eq!(rep.periods, 3);
        assert_eq!(rep.steps[0].factors, Factor::S1.to_vec());
        assert!(rep.steps[0].report.of(Factor::BackendBound).unwrap().major);
    }

    #[test]
    fn cpu_contention_descends_to_involuntary_cs() {
        let mut provider = provider_for(
            WorkloadSpec::compute_bound(3e6),
            NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() },
            40,
        );
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05).unwrap();
        assert!(
            rep.culprits.contains(&Factor::InvoluntaryCs),
            "culprits {:?}",
            rep.culprits
        );
        // Suspension was the S1 major.
        assert!(rep.steps[0].report.of(Factor::Suspension).unwrap().major);
        // The suspension stage used OLS on the count factors.
        let suspension_step = rep
            .steps
            .iter()
            .find(|s| s.factors.contains(&Factor::ContextSwitch))
            .unwrap();
        assert!(!suspension_step.ols.is_empty());
    }

    #[test]
    fn l2_bug_descends_to_l2_and_dram() {
        // The HPL case study's signature: L2 evictions → L2-miss stalls
        // and extra DRAM traffic.
        let spec = WorkloadSpec {
            instructions: 5e6,
            mem_refs: 1.5e6,
            locality: vapro_pmu::Locality { l1: 0.5, l2: 0.45, l3: 0.04, dram: 0.01 },
            ..WorkloadSpec::default()
        };
        let mut provider = provider_for(
            spec,
            NoiseEnv { l2_bug_prob: 1.0, l2_bug_severity: 0.6, ..NoiseEnv::default() },
            40,
        );
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05).unwrap();
        let has_l2_or_dram = rep
            .culprits
            .iter()
            .any(|c| matches!(c, Factor::L2Bound | Factor::L3Bound | Factor::DramBound));
        assert!(has_l2_or_dram, "culprits {:?}", rep.culprits);
        // Backend dominates at S1, as the paper reports (96.6 %).
        let be_share = rep.steps[0].report.of(Factor::BackendBound).unwrap().impact_share;
        assert!(be_share > 0.6, "backend share {be_share}");
    }

    #[test]
    fn quiet_cluster_yields_no_diagnosis() {
        let mut provider =
            provider_for(WorkloadSpec::mixed(1e6), NoiseEnv::quiet(), 30);
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05);
        // No abnormal fragments → no report (nothing to diagnose).
        assert!(rep.is_none());
    }

    #[test]
    fn periods_count_matches_stage_depth() {
        let mut provider = provider_for(
            WorkloadSpec::memory_bound(4e6),
            NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() },
            40,
        );
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05).unwrap();
        assert_eq!(rep.periods, rep.steps.len());
        // Counter sets widen down the stages.
        for w in rep.steps.windows(2) {
            assert!(w[1].counters_used >= w[0].counters_used);
        }
    }

    #[test]
    fn impact_share_is_retrievable_from_the_right_step() {
        let mut provider = provider_for(
            WorkloadSpec::memory_bound(4e6),
            NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() },
            40,
        );
        let rep = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05).unwrap();
        let share = rep.impact_share(Factor::MemoryBound).unwrap();
        assert!(share > 0.5, "memory share {share}");
        assert!(rep.top_culprit().is_some());
    }
}
