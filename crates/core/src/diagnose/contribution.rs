//! Contribution analysis (paper §4.3): which factor is responsible for
//! how much of the slowdown.
//!
//! Inside one fixed-workload cluster, fragments costing more than
//! `k_a = 1.2` times the fastest are *abnormal*; the rest are *normal*.
//! The mean factor value over normal fragments is the reference. A
//! factor's contribution in an abnormal fragment is its value's excess
//! over the reference; summed over abnormal fragments it becomes the
//! factor's contribution to the variance. Factors contributing more than
//! 25 % of the overall variance are *major* and drive the next diagnosis
//! stage. The report gives each factor's **impact** (share of the total
//! slowdown) and **duration** (time of abnormal fragments whose major
//! factors include it) — the "suspension accounts for 60.3 % of the
//! slowdown and influences 24.2 % of the execution time" style statement.

use crate::diagnose::factor::Factor;
use crate::diagnose::quantify::FactorValues;
use serde::{Deserialize, Serialize};

/// One factor's contribution summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorContribution {
    /// The factor.
    pub factor: Factor,
    /// Summed excess over the reference across abnormal fragments
    /// (ns for time-quantifiable factors, events otherwise).
    pub contribution: f64,
    /// Share of the total slowdown attributed to this factor (time-
    /// quantifiable factors only; count factors report NaN here and are
    /// quantified by OLS instead).
    pub impact_share: f64,
    /// Fraction of cluster execution time in abnormal fragments whose
    /// major factors include this one.
    pub duration_share: f64,
    /// Major factor at this stage?
    pub major: bool,
}

/// The contribution analysis of one cluster at one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContributionReport {
    /// Per-factor results, ordered as the input factors.
    pub factors: Vec<FactorContribution>,
    /// Number of abnormal fragments.
    pub abnormal_count: usize,
    /// Number of normal fragments.
    pub normal_count: usize,
    /// Total slowdown: Σ over abnormal fragments of (duration − reference
    /// duration), ns.
    pub total_slowdown_ns: f64,
}

impl ContributionReport {
    /// The major factors, most-contributing first.
    pub fn major_factors(&self) -> Vec<Factor> {
        let mut majors: Vec<&FactorContribution> =
            self.factors.iter().filter(|f| f.major).collect();
        majors.sort_by(|a, b| {
            b.contribution
                .partial_cmp(&a.contribution)
                .expect("finite contribution")
        });
        majors.iter().map(|f| f.factor).collect()
    }

    /// Look up one factor's entry.
    pub fn of(&self, factor: Factor) -> Option<&FactorContribution> {
        self.factors.iter().find(|f| f.factor == factor)
    }
}

/// Run the contribution analysis. `ka` is the abnormality threshold
/// (1.2), `major_threshold` the major-factor share (0.25).
///
/// Returns `None` when the cluster has no abnormal/normal split to
/// compare (everything normal, or everything abnormal).
pub fn analyze_contributions(
    fv: &FactorValues,
    ka: f64,
    major_threshold: f64,
) -> Option<ContributionReport> {
    assert!(ka > 1.0, "ka must exceed 1");
    let n = fv.len();
    if n < 2 {
        return None;
    }
    let min_dur = fv.durations.iter().copied().fold(f64::INFINITY, f64::min);
    let abnormal: Vec<usize> = (0..n)
        .filter(|&i| fv.durations[i] > ka * min_dur)
        .collect();
    let normal: Vec<usize> =
        (0..n).filter(|&i| fv.durations[i] <= ka * min_dur).collect();
    if abnormal.is_empty() || normal.is_empty() {
        return None;
    }

    // Reference: mean of each factor over normal fragments.
    let k = fv.factors.len();
    let mut reference = vec![0.0; k];
    for &i in &normal {
        for (r, v) in reference.iter_mut().zip(&fv.values[i]) {
            *r += v;
        }
    }
    for r in &mut reference {
        *r /= normal.len() as f64;
    }
    let ref_dur: f64 =
        normal.iter().map(|&i| fv.durations[i]).sum::<f64>() / normal.len() as f64;

    // Contributions over abnormal fragments.
    let mut contributions = vec![0.0; k];
    let total_slowdown_ns: f64 = abnormal
        .iter()
        .map(|&i| (fv.durations[i] - ref_dur).max(0.0))
        .sum();
    for &i in &abnormal {
        for j in 0..k {
            contributions[j] += fv.values[i][j] - reference[j];
        }
    }

    // Per-abnormal-fragment major factor (the marker in Fig. 11): the
    // time-quantifiable factor with the largest excess.
    let mut duration_by_factor = vec![0.0f64; k];
    let total_time: f64 = fv.durations.iter().sum();
    for &i in &abnormal {
        // A fragment's majors: factors whose excess clears the threshold
        // share of this fragment's own slowdown.
        let slow = (fv.durations[i] - ref_dur).max(0.0);
        if slow <= 0.0 {
            continue;
        }
        for j in 0..k {
            if !fv.factors[j].time_quantifiable() {
                continue;
            }
            let excess = fv.values[i][j] - reference[j];
            if excess > major_threshold * slow {
                duration_by_factor[j] += fv.durations[i];
            }
        }
    }

    let factors = (0..k)
        .map(|j| {
            let f = fv.factors[j];
            let impact_share = if f.time_quantifiable() && total_slowdown_ns > 0.0 {
                contributions[j] / total_slowdown_ns
            } else {
                f64::NAN
            };
            let major = if f.time_quantifiable() {
                total_slowdown_ns > 0.0
                    && contributions[j] > major_threshold * total_slowdown_ns
            } else {
                // Count factors become major when their relative excess is
                // large (they cannot be compared in time directly).
                let ref_j = reference[j].max(1e-9);
                contributions[j] / abnormal.len() as f64 > 0.5 * ref_j
            };
            FactorContribution {
                factor: f,
                contribution: contributions[j],
                impact_share,
                duration_share: if total_time > 0.0 {
                    duration_by_factor[j] / total_time
                } else {
                    0.0
                },
                major,
            }
        })
        .collect();

    Some(ContributionReport {
        factors,
        abnormal_count: abnormal.len(),
        normal_count: normal.len(),
        total_slowdown_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built factor values: `k` factors, durations, per-fragment rows.
    fn fv(factors: Vec<Factor>, rows: Vec<(f64, Vec<f64>)>) -> FactorValues {
        FactorValues {
            factors,
            durations: rows.iter().map(|r| r.0).collect(),
            values: rows.into_iter().map(|r| r.1).collect(),
        }
    }

    #[test]
    fn clean_cluster_has_no_split() {
        let v = fv(
            vec![Factor::BackendBound],
            (0..10).map(|_| (100.0, vec![60.0])).collect(),
        );
        assert!(analyze_contributions(&v, 1.2, 0.25).is_none());
    }

    #[test]
    fn slow_fragments_are_abnormal_and_attributed() {
        // 8 normal at 100ns (backend 60), 2 abnormal at 200ns
        // (backend 160 — the slowdown is backend-bound).
        let mut rows: Vec<(f64, Vec<f64>)> = (0..8).map(|_| (100.0, vec![60.0])).collect();
        rows.push((200.0, vec![160.0]));
        rows.push((200.0, vec![160.0]));
        let v = fv(vec![Factor::BackendBound], rows);
        let rep = analyze_contributions(&v, 1.2, 0.25).unwrap();
        assert_eq!(rep.abnormal_count, 2);
        assert_eq!(rep.normal_count, 8);
        assert!((rep.total_slowdown_ns - 200.0).abs() < 1e-9);
        let be = rep.of(Factor::BackendBound).unwrap();
        assert!(be.major);
        // All of the slowdown is backend: impact share = 200/200.
        assert!((be.impact_share - 1.0).abs() < 1e-9);
        assert_eq!(rep.major_factors(), vec![Factor::BackendBound]);
    }

    #[test]
    fn minor_factor_is_not_major() {
        // Slowdown of 100ns per abnormal fragment: 90 from backend,
        // 10 from suspension → suspension below the 0.25 threshold.
        let mut rows: Vec<(f64, Vec<f64>)> =
            (0..8).map(|_| (100.0, vec![60.0, 5.0])).collect();
        rows.push((200.0, vec![150.0, 15.0]));
        rows.push((200.0, vec![150.0, 15.0]));
        let v = fv(vec![Factor::BackendBound, Factor::Suspension], rows);
        let rep = analyze_contributions(&v, 1.2, 0.25).unwrap();
        assert!(rep.of(Factor::BackendBound).unwrap().major);
        assert!(!rep.of(Factor::Suspension).unwrap().major);
        let shares: f64 = rep
            .factors
            .iter()
            .map(|f| f.impact_share)
            .sum();
        assert!((shares - 1.0).abs() < 0.01, "impact shares {shares}");
    }

    #[test]
    fn duration_share_tracks_affected_time() {
        // 2 of 10 fragments abnormal with backend as the major factor:
        // duration share = 400 / total.
        let mut rows: Vec<(f64, Vec<f64>)> = (0..8).map(|_| (100.0, vec![60.0])).collect();
        rows.push((200.0, vec![160.0]));
        rows.push((200.0, vec![160.0]));
        let v = fv(vec![Factor::BackendBound], rows);
        let rep = analyze_contributions(&v, 1.2, 0.25).unwrap();
        let total: f64 = 8.0 * 100.0 + 2.0 * 200.0;
        let expect = 400.0 / total;
        let got = rep.of(Factor::BackendBound).unwrap().duration_share;
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn count_factors_go_major_on_large_relative_excess() {
        // Involuntary CS: 0 in normal, 50 in abnormal fragments.
        let mut rows: Vec<(f64, Vec<f64>)> = (0..8).map(|_| (100.0, vec![0.0])).collect();
        rows.push((250.0, vec![50.0]));
        rows.push((250.0, vec![50.0]));
        let v = fv(vec![Factor::InvoluntaryCs], rows);
        let rep = analyze_contributions(&v, 1.2, 0.25).unwrap();
        let ics = rep.of(Factor::InvoluntaryCs).unwrap();
        assert!(ics.major);
        assert!(ics.impact_share.is_nan()); // counts aren't time shares
        assert!((ics.contribution - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ka_threshold_splits_exactly() {
        // min = 100; ka=1.2 → abnormal iff > 120.
        let rows = vec![
            (100.0, vec![1.0]),
            (115.0, vec![1.0]),
            (120.0, vec![1.0]),
            (121.0, vec![2.0]),
            (300.0, vec![3.0]),
        ];
        let v = fv(vec![Factor::BackendBound], rows);
        let rep = analyze_contributions(&v, 1.2, 0.25).unwrap();
        assert_eq!(rep.abnormal_count, 2);
        assert_eq!(rep.normal_count, 3);
    }

    #[test]
    fn all_abnormal_cluster_is_rejected() {
        let rows = vec![(100.0, vec![1.0]), (500.0, vec![1.0]), (600.0, vec![1.0])];
        // min = 100, the others > 120 → only one "normal" — fine; but if
        // even the min is the lone fragment and everything else abnormal,
        // analysis still works. True rejection needs an empty side:
        let v = fv(vec![Factor::BackendBound], rows);
        assert!(analyze_contributions(&v, 1.2, 0.25).is_some());
        let lone = fv(vec![Factor::BackendBound], vec![(100.0, vec![1.0])]);
        assert!(analyze_contributions(&lone, 1.2, 0.25).is_none());
    }
}
