//! Quantifying the time of factors (paper §4.2).
//!
//! Two routes:
//!
//! * **Formula-based** — for factors with well-designed PMU events, a
//!   top-down identity gives the time share directly (e.g. frontend bound
//!   = `IDQ_UOPS_NOT_DELIVERED.CORE / (4·CLK)`). [`factor_value`] returns
//!   the *time in ns* for such factors.
//! * **OLS-based** — OS events (page faults, context switches, signals)
//!   have counts but no time formula. [`ols_impacts`] normalises all
//!   factor values to [0, 1], screens multicollinearity with the
//!   Farrar–Glauber test (removing factors one by one), regresses fragment
//!   execution time on the survivors, keeps significant terms (p < 0.05),
//!   and rescales coefficients back into time impacts. Factors removed as
//!   multicollinear inherit an impact estimate through their strongest
//!   retained correlate.

use crate::diagnose::factor::Factor;
use crate::fragment::Fragment;
use serde::{Deserialize, Serialize};
use vapro_pmu::{CounterId, TopDown, TopDownL2};
use vapro_stats::describe::variance;
use vapro_stats::fg::remove_multicollinear;
use vapro_stats::OlsFit;

/// Per-fragment values of a factor set: times (ns) for quantifiable
/// factors, raw event counts for the rest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorValues {
    /// The factors, in column order.
    pub factors: Vec<Factor>,
    /// `values[i][j]` = value of `factors[j]` for fragment `i`.
    pub values: Vec<Vec<f64>>,
    /// Fragment durations (ns), aligned with `values`.
    pub durations: Vec<f64>,
}

/// Evaluate one factor for one fragment. Time-quantifiable factors return
/// nanoseconds; count factors return raw event counts. `None` when the
/// fragment's counter set lacks the required events.
pub fn factor_value(frag: &Fragment, factor: Factor) -> Option<f64> {
    let dur = frag.duration_ns();
    let c = &frag.counters;
    match factor {
        Factor::Retiring | Factor::FrontendBound | Factor::BadSpeculation
        | Factor::BackendBound
        | Factor::Suspension => {
            let td = TopDown::from_delta(c)?;
            let frac = match factor {
                Factor::Retiring => td.retiring,
                Factor::FrontendBound => td.frontend,
                Factor::BadSpeculation => td.bad_speculation,
                Factor::BackendBound => td.backend,
                Factor::Suspension => td.suspension,
                _ => unreachable!(),
            };
            Some(frac * dur)
        }
        Factor::CoreBound | Factor::MemoryBound | Factor::L1Bound | Factor::L2Bound
        | Factor::L3Bound
        | Factor::DramBound => {
            // The level factors require the S3 events to be active.
            if matches!(
                factor,
                Factor::L1Bound | Factor::L2Bound | Factor::L3Bound | Factor::DramBound
            ) {
                c.get(CounterId::StallsL1dMiss)?;
                c.get(CounterId::StallsL2Miss)?;
                c.get(CounterId::StallsL3Miss)?;
            }
            let td = TopDown::from_delta(c)?;
            let l2 = TopDownL2::from_delta(c, td.backend)?;
            let frac = match factor {
                Factor::CoreBound => l2.core_bound,
                Factor::MemoryBound => l2.memory_bound,
                Factor::L1Bound => l2.l1_bound,
                Factor::L2Bound => l2.l2_bound,
                Factor::L3Bound => l2.l3_bound,
                Factor::DramBound => l2.dram_bound,
                _ => unreachable!(),
            };
            Some(frac * dur)
        }
        Factor::PageFault => Some(
            c.get(CounterId::PageFaultsSoft)? + c.get(CounterId::PageFaultsHard)?,
        ),
        Factor::SoftPageFault => c.get(CounterId::PageFaultsSoft),
        Factor::HardPageFault => c.get(CounterId::PageFaultsHard),
        Factor::ContextSwitch => Some(
            c.get(CounterId::CtxSwitchVoluntary)? + c.get(CounterId::CtxSwitchInvoluntary)?,
        ),
        Factor::VoluntaryCs => c.get(CounterId::CtxSwitchVoluntary),
        Factor::InvoluntaryCs => c.get(CounterId::CtxSwitchInvoluntary),
        Factor::Signal => c.get(CounterId::Signals),
    }
}

impl FactorValues {
    /// Evaluate `factors` over a cluster of fragments, skipping fragments
    /// that lack the required counters. Returns `None` when no fragment
    /// qualifies.
    pub fn compute(fragments: &[&Fragment], factors: &[Factor]) -> Option<FactorValues> {
        let mut values = Vec::new();
        let mut durations = Vec::new();
        for f in fragments {
            let row: Option<Vec<f64>> =
                factors.iter().map(|&fac| factor_value(f, fac)).collect();
            if let Some(row) = row {
                values.push(row);
                durations.push(f.duration_ns());
            }
        }
        if values.is_empty() {
            return None;
        }
        // vapro-lint: allow(R1, owned copy of the at-most-five requested factors)
        Some(FactorValues { factors: factors.to_vec(), values, durations })
    }

    /// Number of usable fragments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// One factor's column.
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.values.iter().map(|row| row[j]).collect()
    }
}

/// The OLS-estimated time impact of one factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsImpact {
    /// The factor.
    pub factor: Factor,
    /// Estimated time impact in ns: how much execution time varies across
    /// the factor's observed range.
    pub impact_ns: f64,
    /// Two-sided p-value of the coefficient (NaN for factors back-filled
    /// through a multicollinear proxy).
    pub p_value: f64,
    /// 95 % confidence interval of the impact, ns (NaN bounds for
    /// proxy-estimated factors).
    pub ci95_ns: (f64, f64),
    /// Whether the factor survived to the final OLS (false = removed as
    /// multicollinear and estimated through its proxy).
    pub in_model: bool,
}

/// Run the OLS-based estimation over a cluster's factor values.
/// Returns the significant impacts (p < `alpha` among in-model factors,
/// plus proxy estimates for removed ones), the model R², and the indices
/// of factors removed by the Farrar–Glauber screen.
pub fn ols_impacts(
    fv: &FactorValues,
    alpha: f64,
) -> Option<(Vec<OlsImpact>, f64)> {
    let k = fv.factors.len();
    if fv.len() < k + 3 {
        return None;
    }
    // Normalise each factor column to [0, 1] (the paper's preprocessing).
    let mut columns: Vec<Vec<f64>> = (0..k).map(|j| fv.column(j)).collect();
    let mut ranges = Vec::with_capacity(k);
    for col in &mut columns {
        let (lo, hi) = vapro_stats::describe::min_max_normalize(col);
        ranges.push(hi - lo);
    }

    // Farrar–Glauber screen: drop multicollinear factors one at a time.
    let fg = remove_multicollinear(&columns, alpha);
    if fg.kept.is_empty() {
        return None;
    }
    // vapro-lint: allow(R1, kept factor columns are copied once for the OLS design matrix)
    let kept_cols: Vec<Vec<f64>> = fg.kept.iter().map(|&j| columns[j].clone()).collect();
    let fit = OlsFit::fit(&kept_cols, &fv.durations, true)?;
    let terms = fit.var_terms();

    let mut impacts = Vec::new();
    for (pos, &j) in fg.kept.iter().enumerate() {
        let t = &terms[pos];
        // The columns were min-max normalised, so the coefficient *is*
        // the time change across the factor's range.
        impacts.push(OlsImpact {
            factor: fv.factors[j],
            impact_ns: t.coef,
            p_value: t.p_value,
            ci95_ns: t.confidence_interval(0.05, fit.df_resid),
            in_model: true,
        });
    }
    // Back-fill removed factors through their strongest retained correlate
    // ("their coefficients are estimated by their multicollinear
    // relationship", §4.2).
    for removed in &fg.removed {
        if removed.proxy == usize::MAX {
            // Constant column: no variation, no impact.
            impacts.push(OlsImpact {
                factor: fv.factors[removed.index],
                impact_ns: 0.0,
                p_value: f64::NAN,
                ci95_ns: (f64::NAN, f64::NAN),
                in_model: false,
            });
            continue;
        }
        let proxy_impact = impacts
            .iter()
            .find(|i| i.factor == fv.factors[removed.proxy])
            .map_or(0.0, |i| i.impact_ns);
        impacts.push(OlsImpact {
            factor: fv.factors[removed.index],
            impact_ns: removed.correlation * proxy_impact,
            p_value: f64::NAN,
            ci95_ns: (f64::NAN, f64::NAN),
            in_model: false,
        });
    }

    Some((impacts, fit.r_squared))
}

/// Which factors of `fv` carry any signal at all (non-zero variance) —
/// used to skip degenerate columns before diagnosis.
pub fn informative_factors(fv: &FactorValues) -> Vec<Factor> {
    (0..fv.factors.len())
        .filter(|&j| variance(&fv.column(j)) > 0.0)
        .map(|j| fv.factors[j])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vapro_pmu::{
        CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec,
    };
    use vapro_sim::VirtualTime;

    /// Run a fixed workload n times, half under `noisy_env`, producing
    /// realistic fragments with full counters.
    fn make_cluster(n: usize, noisy_env: NoiseEnv) -> Vec<Fragment> {
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let spec = WorkloadSpec::mixed(2e6);
        let mut t = 0u64;
        (0..n)
            .map(|i| {
                let env = if i % 2 == 1 { noisy_env } else { NoiseEnv::quiet() };
                let out = model.execute(&spec, &env, &mut rng);
                let start = VirtualTime::from_ns(t);
                let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                t = end.ns() + 1000;
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start,
                    end,
                    counters: out.counters,
                    args: vec![],
                }
            })
            .collect()
    }

    #[test]
    fn s1_times_sum_to_duration() {
        let frags = make_cluster(4, NoiseEnv::quiet());
        let f = &frags[0];
        let total: f64 = Factor::S1
            .iter()
            .map(|&fac| factor_value(f, fac).unwrap())
            .sum();
        assert!((total - f.duration_ns()).abs() / f.duration_ns() < 1e-6);
    }

    #[test]
    fn memory_levels_partition_memory_bound() {
        let frags = make_cluster(2, NoiseEnv::quiet());
        let f = &frags[0];
        let mem = factor_value(f, Factor::MemoryBound).unwrap();
        let parts: f64 = [Factor::L1Bound, Factor::L2Bound, Factor::L3Bound, Factor::DramBound]
            .iter()
            .map(|&fac| factor_value(f, fac).unwrap())
            .sum();
        assert!((mem - parts).abs() < 1e-6 * f.duration_ns());
        let core = factor_value(f, Factor::CoreBound).unwrap();
        let be = factor_value(f, Factor::BackendBound).unwrap();
        assert!((core + mem - be).abs() < 1e-6 * f.duration_ns());
    }

    #[test]
    fn cpu_steal_shows_as_suspension_time() {
        let env = NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() };
        let frags = make_cluster(8, env);
        // Odd fragments (noisy) have much higher suspension time.
        let quiet_susp = factor_value(&frags[0], Factor::Suspension).unwrap();
        let noisy_susp = factor_value(&frags[1], Factor::Suspension).unwrap();
        assert!(noisy_susp > 10.0 * quiet_susp.max(1.0));
        // And the counts route: involuntary CS.
        assert!(factor_value(&frags[1], Factor::InvoluntaryCs).unwrap() >= 1.0);
        assert_eq!(factor_value(&frags[0], Factor::InvoluntaryCs).unwrap(), 0.0);
    }

    #[test]
    fn missing_counters_yield_none() {
        let mut f = make_cluster(1, NoiseEnv::quiet()).remove(0);
        f.counters = Default::default();
        assert!(factor_value(&f, Factor::BackendBound).is_none());
        assert!(factor_value(&f, Factor::InvoluntaryCs).is_none());
    }

    #[test]
    fn ols_finds_the_injected_factor() {
        // CPU steal inflates duration; involuntary CS is the witness.
        let env = NoiseEnv { cpu_steal: 0.4, ..NoiseEnv::default() };
        let frags = make_cluster(60, env);
        let refs: Vec<&Fragment> = frags.iter().collect();
        let factors = [
            Factor::InvoluntaryCs,
            Factor::VoluntaryCs,
            Factor::SoftPageFault,
        ];
        let fv = FactorValues::compute(&refs, &factors).unwrap();
        let (impacts, r2) = ols_impacts(&fv, 0.05).unwrap();
        assert!(r2 > 0.8, "R² = {r2}");
        let invol = impacts.iter().find(|i| i.factor == Factor::InvoluntaryCs).unwrap();
        assert!(invol.in_model);
        assert!(invol.p_value < 0.001, "p = {}", invol.p_value);
        assert!(invol.impact_ns > 0.0);
        // A significant factor's CI excludes zero and brackets the point
        // estimate.
        let (lo, hi) = invol.ci95_ns;
        assert!(lo > 0.0, "CI ({lo}, {hi}) should exclude 0");
        // A near-exact fit can collapse the interval onto the estimate.
        assert!(lo <= invol.impact_ns && invol.impact_ns <= hi);
    }

    #[test]
    fn ols_and_formula_agree_on_the_dominant_factor() {
        // The §4.2 verification: formula-based suspension share vs the
        // OLS estimate should be consistent.
        let env = NoiseEnv { cpu_steal: 0.5, ..NoiseEnv::default() };
        let frags = make_cluster(60, env);
        let refs: Vec<&Fragment> = frags.iter().collect();

        // Formula: mean suspension share of noisy minus quiet fragments.
        let susp_delta: f64 = {
            let noisy: Vec<f64> = refs
                .iter()
                .skip(1)
                .step_by(2)
                .map(|f| factor_value(f, Factor::Suspension).unwrap())
                .collect();
            let quiet: Vec<f64> = refs
                .iter()
                .step_by(2)
                .map(|f| factor_value(f, Factor::Suspension).unwrap())
                .collect();
            vapro_stats::mean(&noisy) - vapro_stats::mean(&quiet)
        };

        // OLS: impact of suspension time (quantifiable, but the regression
        // must agree with the direct formula).
        let fv = FactorValues::compute(&refs, &[Factor::Suspension]).unwrap();
        let (impacts, _) = ols_impacts(&fv, 0.05).unwrap();
        let ols_est = impacts[0].impact_ns;
        let rel = (ols_est - susp_delta).abs() / susp_delta;
        assert!(rel < 0.2, "formula {susp_delta} vs OLS {ols_est}");
    }

    #[test]
    fn multicollinear_factor_inherits_proxy_impact() {
        // PageFault total = soft + hard; with hard == 0 the total is a
        // perfect alias of soft, so FG removes one of them and back-fills.
        let env = NoiseEnv { cpu_steal: 0.3, ..NoiseEnv::default() };
        let mut frags = make_cluster(40, env);
        // Give fragments varying soft-fault counts correlated with duration.
        for (i, f) in frags.iter_mut().enumerate() {
            let softs = (i % 2) as f64 * 20.0;
            f.counters.put(CounterId::PageFaultsSoft, softs);
            f.counters.put(CounterId::PageFaultsHard, 0.0);
        }
        let refs: Vec<&Fragment> = frags.iter().collect();
        let fv =
            FactorValues::compute(&refs, &[Factor::SoftPageFault, Factor::PageFault]).unwrap();
        let (impacts, _) = ols_impacts(&fv, 0.05).unwrap();
        assert_eq!(impacts.len(), 2);
        let removed: Vec<_> = impacts.iter().filter(|i| !i.in_model).collect();
        assert_eq!(removed.len(), 1);
        let kept = impacts.iter().find(|i| i.in_model).unwrap();
        // Perfect correlation → identical impact magnitude.
        assert!((removed[0].impact_ns.abs() - kept.impact_ns.abs()).abs() < 1e-6);
    }

    #[test]
    fn informative_factors_drops_constants() {
        let frags = make_cluster(20, NoiseEnv::quiet());
        let refs: Vec<&Fragment> = frags.iter().collect();
        let fv = FactorValues::compute(
            &refs,
            &[Factor::Retiring, Factor::HardPageFault],
        )
        .unwrap();
        let inf = informative_factors(&fv);
        assert!(inf.contains(&Factor::Retiring));
        assert!(!inf.contains(&Factor::HardPageFault)); // all zero
    }

    #[test]
    fn too_few_fragments_for_ols_is_none() {
        let frags = make_cluster(4, NoiseEnv::quiet());
        let refs: Vec<&Fragment> = frags.iter().collect();
        let fv = FactorValues::compute(&refs, &[Factor::Retiring, Factor::Suspension]).unwrap();
        assert!(ols_impacts(&fv, 0.05).is_none());
    }
}
