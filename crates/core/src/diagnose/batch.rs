//! Batched region diagnosis: merge once, index once, cluster once —
//! then diagnose every region.
//!
//! [`diagnose_region`](crate::diagnose::diagnose_region) re-merges all
//! STGs, re-scans every pool and re-clusters the winning pool *per
//! region*, which is affordable for a user clicking one heat-map region
//! but not for a server diagnosing every region of every closed window.
//! [`DiagnosisBatch`] amortises all three costs across regions:
//!
//! * **merge once** — the caller builds (or already has) a
//!   [`MergedStg`]; the batch only borrows it;
//! * **interval index** — per edge pool, computation fragments sorted by
//!   start time with a prefix-maximum of end times, so the in-region
//!   time of a pool is a binary search plus a short scan instead of a
//!   full-pool sweep per (region, pool) pair;
//! * **cluster memoisation** — each pool is clustered at most once per
//!   batch (two regions choosing the same pool share the outcome), and
//!   detection's own per-edge [`ClusterOutcome`]s can seed the cache so
//!   the streaming server never re-clusters at all;
//! * **report memoisation** — a region only *selects* a pool; the
//!   drill-down population (the pool's dominant cluster, with its
//!   cross-rank normal reference) and therefore the whole
//!   [`DiagnosisReport`] are functions of the pool alone, so each pool
//!   runs the progressive drill-down at most once per batch no matter
//!   how many regions land on it.
//!
//! The per-region result is bit-identical to `diagnose_region` on the
//! same merged view: the in-region time is an order-independent `u64`
//! sum, pool selection keeps the same first-best-wins tie-break, and
//! clustering is deterministic — property-tested in
//! `tests/property_tests.rs`.

use crate::clustering::{cluster_pool, ClusterOutcome};
use crate::columnar::{ColumnarPool, LaneView, PoolView};
use crate::config::VaproConfig;
use crate::detect::pipeline::MergedStg;
use crate::diagnose::driver::RegionOfInterest;
use crate::diagnose::progressive::{
    diagnose_progressively_with, DiagnosisReport, FragmentProvider,
};
use crate::fragment::{Fragment, FragmentKind};
use rayon::prelude::*;
use std::sync::OnceLock;
use vapro_pmu::CounterSet;

/// Interval index over one edge pool's computation fragments.
///
/// Fragments are sorted by start time; `prefix_max_end[i]` is the
/// maximum end time among the first `i + 1` sorted fragments. A region
/// `[t_start, t_end)` then overlaps exactly the sorted positions in
/// `[lo, ub)` where `ub` bounds `start < t_end` (binary search on the
/// sorted starts) and `lo` bounds `prefix_max_end > t_start` (binary
/// search on the monotone prefix maximum — everything before `lo` ends
/// at or before `t_start`). Only `[lo, ub)` is scanned for the rank
/// filter and the duration sum.
struct PoolIndex {
    starts: Vec<u64>,
    ends: Vec<u64>,
    durations: Vec<u64>,
    ranks: Vec<usize>,
    prefix_max_end: Vec<u64>,
}

impl PoolIndex {
    fn build<V: PoolView>(pool: V) -> PoolIndex {
        let mut rows: Vec<(u64, u64, u64, usize)> = (0..pool.len())
            .filter(|&i| pool.kind(i) == FragmentKind::Computation)
            .map(|i| {
                let (s, e) = (pool.start(i).ns(), pool.end(i).ns());
                (s, e, e.saturating_sub(s), pool.rank(i))
            })
            .collect();
        rows.sort_by_key(|r| r.0);
        let mut prefix_max_end = Vec::with_capacity(rows.len());
        let mut max_end = 0u64;
        for &(_, end, _, _) in &rows {
            max_end = max_end.max(end);
            prefix_max_end.push(max_end);
        }
        PoolIndex {
            starts: rows.iter().map(|r| r.0).collect(),
            ends: rows.iter().map(|r| r.1).collect(),
            durations: rows.iter().map(|r| r.2).collect(),
            ranks: rows.iter().map(|r| r.3).collect(),
            prefix_max_end,
        }
    }

    /// Total time (ns) this pool's computation fragments spend inside the
    /// region. A `u64` sum, so the answer is independent of summation
    /// order — which is what keeps the index bit-identical to the naive
    /// full-pool scan.
    fn in_region_ns(&self, roi: &RegionOfInterest) -> u64 {
        let (t_start, t_end) = (roi.t_start.ns(), roi.t_end.ns());
        let ub = self.starts.partition_point(|&s| s < t_end);
        let lo = self.prefix_max_end[..ub].partition_point(|&m| m <= t_start);
        let mut total = 0u64;
        for i in lo..ub {
            if self.ends[i] > t_start
                && self.ranks[i] >= roi.ranks.0
                && self.ranks[i] <= roi.ranks.1
            {
                total += self.durations[i];
            }
        }
        total
    }
}

/// Borrow-based [`FragmentProvider`]: holds the chosen cluster's members
/// as references into the merged pool and projects their counter sets
/// into one reused scratch buffer per drill-down step — zero
/// full-population [`Fragment`] clones, ever (the fragments are rebuilt
/// field by field, bypassing `Fragment::clone` and its debug counter).
pub struct ScratchProvider<'a> {
    members: Vec<&'a Fragment>,
    scratch: Vec<Fragment>,
}

impl<'a> ScratchProvider<'a> {
    /// Provider over the given cluster members.
    pub fn new(members: Vec<&'a Fragment>) -> ScratchProvider<'a> {
        ScratchProvider { members, scratch: Vec::new() }
    }
}

impl FragmentProvider for ScratchProvider<'_> {
    fn collect(&mut self, set: CounterSet) -> &[Fragment] {
        self.scratch.clear();
        self.scratch.extend(self.members.iter().map(|f| Fragment {
            rank: f.rank,
            kind: f.kind,
            start: f.start,
            end: f.end,
            counters: f.counters.project(set),
            args: f.args.clone(), // vapro-lint: allow(R1, arg vector copied into the reusable scratch projection; counters themselves are projected)
        }));
        &self.scratch
    }
}

/// Representation-generic twin of [`ScratchProvider`]: the chosen
/// cluster's members are *indices* into a [`PoolView`], and each
/// drill-down step rebuilds the scratch fragments field by field from
/// the view's accessors — zero full-population [`Fragment`] clones,
/// identical arithmetic on both the AoS and columnar paths.
struct ViewScratchProvider<'a, V: PoolView> {
    pool: V,
    members: &'a [usize],
    scratch: Vec<Fragment>,
}

impl<V: PoolView> FragmentProvider for ViewScratchProvider<'_, V> {
    fn collect(&mut self, set: CounterSet) -> &[Fragment] {
        self.scratch.clear();
        self.scratch.extend(self.members.iter().map(|&m| Fragment {
            rank: self.pool.rank(m),
            kind: self.pool.kind(m),
            start: self.pool.start(m),
            end: self.pool.end(m),
            counters: self.pool.project_counters(m, set),
            args: self.pool.args(m).to_vec(), // vapro-lint: allow(R1, arg vector copied into the reusable scratch projection; counters themselves are projected)
        }));
        &self.scratch
    }
}

/// A set of diagnosable edge pools, abstracted over the fragment
/// representation. [`DiagnosisBatch`] is generic over this, so the AoS
/// [`MergedStg`] and the columnar [`ColumnarPool`] drive the exact same
/// batched-diagnosis machinery.
pub trait EdgePools {
    /// The per-pool view type handed to the index/cluster/drill-down
    /// stages.
    type View<'v>: PoolView + Copy + Sync
    where
        Self: 'v;

    /// Number of edge pools, in edge (key) order.
    fn num_edge_pools(&self) -> usize;

    /// The `i`-th edge pool.
    fn edge_pool(&self, i: usize) -> Self::View<'_>;
}

impl<'a> EdgePools for MergedStg<'a> {
    type View<'v>
        = &'v [&'a Fragment]
    where
        Self: 'v;

    fn num_edge_pools(&self) -> usize {
        self.edges.len()
    }

    fn edge_pool(&self, i: usize) -> &[&'a Fragment] {
        &self.edges[i].1
    }
}

impl EdgePools for ColumnarPool {
    type View<'v> = LaneView<'v>;

    fn num_edge_pools(&self) -> usize {
        self.num_edges()
    }

    fn edge_pool(&self, i: usize) -> LaneView<'_> {
        self.edge(i).2
    }
}

/// The reusable state of a batch: the pooled view (AoS or columnar),
/// one interval index per edge pool, and the memoised cluster outcomes.
pub struct DiagnosisBatch<'m, S: EdgePools> {
    pools: &'m S,
    cfg: &'m VaproConfig,
    indexes: Vec<PoolIndex>,
    /// Lazily clustered outcomes, aligned with the edge pools. Unused
    /// when `seeded` is present.
    clusters: Vec<OnceLock<ClusterOutcome>>,
    /// Detection's per-edge outcomes, aligned with the edge pools —
    /// exact reuse, since detection clusters each pool with the same
    /// (proxy-counter, threshold, min-size) parameters.
    seeded: Option<&'m [ClusterOutcome]>,
    /// Memoised per-pool drill-down results, aligned with the edge pools.
    reports: Vec<OnceLock<Option<DiagnosisReport>>>,
}

impl<'m, S: EdgePools + Sync> DiagnosisBatch<'m, S> {
    /// Index the pooled view for batched diagnosis. Clustering is lazy:
    /// a pool is clustered the first time a region selects it.
    pub fn new(pools: &'m S, cfg: &'m VaproConfig) -> DiagnosisBatch<'m, S> {
        let n = pools.num_edge_pools();
        let indexes = (0..n).map(|i| PoolIndex::build(pools.edge_pool(i))).collect();
        let clusters = (0..n).map(|_| OnceLock::new()).collect();
        let reports = (0..n).map(|_| OnceLock::new()).collect();
        DiagnosisBatch { pools, cfg, indexes, clusters, seeded: None, reports }
    }

    /// Like [`DiagnosisBatch::new`], but reuse cluster outcomes computed
    /// elsewhere — typically
    /// [`DetectionResult::edge_clusters`](crate::detect::pipeline::DetectionResult::edge_clusters)
    /// from a detection pass over the *same* pooled view, in which case
    /// no pool is ever clustered twice.
    ///
    /// # Panics
    /// When `outcomes` is not aligned with the view's edge pools.
    pub fn with_clusters(
        pools: &'m S,
        cfg: &'m VaproConfig,
        outcomes: &'m [ClusterOutcome],
    ) -> DiagnosisBatch<'m, S> {
        assert_eq!(
            outcomes.len(),
            pools.num_edge_pools(),
            "cluster outcomes must align with the merged edge pools"
        );
        let mut batch = DiagnosisBatch::new(pools, cfg);
        batch.seeded = Some(outcomes);
        batch
    }

    fn outcome(&self, pool_idx: usize) -> &ClusterOutcome {
        if let Some(seeded) = self.seeded {
            return &seeded[pool_idx];
        }
        self.clusters[pool_idx].get_or_init(|| {
            cluster_pool(
                &self.pools.edge_pool(pool_idx),
                &self.cfg.proxy_counters,
                self.cfg.cluster_threshold,
                self.cfg.min_cluster_size,
            )
        })
    }

    /// Diagnose one region. Same contract as
    /// [`diagnose_region`](crate::diagnose::diagnose_region): the
    /// population is the dominant fixed-workload cluster of the edge
    /// pool with the most in-region computation time; `None` when no
    /// pool overlaps the region or the winner has no usable cluster.
    pub fn diagnose(&self, roi: &RegionOfInterest) -> Option<DiagnosisReport> {
        // First-best-wins on strict improvement, in edge order — the
        // exact tie-break of the naive per-region scan.
        let mut best: Option<(usize, u64)> = None;
        for (i, index) in self.indexes.iter().enumerate() {
            let in_region = index.in_region_ns(roi);
            if in_region > 0 && best.is_none_or(|(_, t)| in_region > t) {
                best = Some((i, in_region));
            }
        }
        let (pool_idx, _) = best?;
        // The region's only contribution was choosing the pool; the
        // drill-down is memoised per pool. Deterministic, so concurrent
        // initialisation under the fan-out cannot change the value.
        // vapro-lint: allow(R1, memoised report fan-out; one owned DiagnosisReport per region)
        self.reports[pool_idx].get_or_init(|| self.diagnose_pool(pool_idx)).clone()
    }

    /// The progressive drill-down over one pool's dominant cluster.
    fn diagnose_pool(&self, pool_idx: usize) -> Option<DiagnosisReport> {
        let pool = self.pools.edge_pool(pool_idx);
        let outcome = self.outcome(pool_idx);
        let cluster = outcome.usable.iter().max_by_key(|c| c.members.len())?;
        let mut provider =
            ViewScratchProvider { pool, members: &cluster.members, scratch: Vec::new() };
        diagnose_progressively_with(
            &mut provider,
            self.cfg.ka_abnormal,
            self.cfg.major_factor_threshold,
            0.05,
        )
    }

    /// Diagnose every region, fanning out across the thread pool. The
    /// per-region work is independent and the memoised clustering is
    /// deterministic, so the output is identical to
    /// [`DiagnosisBatch::diagnose_all_seq`].
    pub fn diagnose_all(&self, rois: &[RegionOfInterest]) -> Vec<Option<DiagnosisReport>> {
        rois.par_iter().map(|roi| self.diagnose(roi)).collect()
    }

    /// Single-threaded reference of [`DiagnosisBatch::diagnose_all`], for
    /// the equivalence property tests and the benchmark baseline.
    pub fn diagnose_all_seq(&self, rois: &[RegionOfInterest]) -> Vec<Option<DiagnosisReport>> {
        rois.iter().map(|roi| self.diagnose(roi)).collect()
    }
}

/// Diagnose a batch of regions over one merged view: merge once (the
/// caller's), index once, cluster each pool at most once, fan out over
/// regions. Element `i` of the result is region `i`'s report.
pub fn diagnose_regions(
    merged: &MergedStg<'_>,
    rois: &[RegionOfInterest],
    cfg: &VaproConfig,
) -> Vec<Option<DiagnosisReport>> {
    DiagnosisBatch::new(merged, cfg).diagnose_all(rois)
}

/// Single-threaded form of [`diagnose_regions`].
pub fn diagnose_regions_seq(
    merged: &MergedStg<'_>,
    rois: &[RegionOfInterest],
    cfg: &VaproConfig,
) -> Vec<Option<DiagnosisReport>> {
    DiagnosisBatch::new(merged, cfg).diagnose_all_seq(rois)
}

/// [`diagnose_regions`] over a columnar pool: the same batched machinery
/// reading contiguous lanes instead of `&Fragment` slices. Bit-identical
/// to the AoS path over the same fragment population.
pub fn diagnose_regions_columnar(
    pool: &ColumnarPool,
    rois: &[RegionOfInterest],
    cfg: &VaproConfig,
) -> Vec<Option<DiagnosisReport>> {
    DiagnosisBatch::new(pool, cfg).diagnose_all(rois)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_fragment_refs;
    use crate::detect::pipeline::merge_stgs;
    use crate::diagnose::driver::diagnose_region;
    use crate::diagnose::driver::tests::stgs_with_noise;
    use crate::fragment::clone_count;
    use vapro_sim::VirtualTime;

    fn rois_grid(nranks: usize, t_max: u64, cols: usize) -> Vec<RegionOfInterest> {
        let mut rois = Vec::new();
        for r in 0..nranks {
            for c in 0..cols {
                let w = t_max / cols as u64;
                rois.push(RegionOfInterest {
                    ranks: (r, r),
                    t_start: VirtualTime::from_ns(c as u64 * w),
                    t_end: VirtualTime::from_ns((c as u64 + 1) * w),
                });
            }
        }
        rois
    }

    #[test]
    fn batch_matches_per_region_driver() {
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let cfg = VaproConfig::default();
        let mut rois = rois_grid(4, 60_000_000, 4);
        rois.push(RegionOfInterest {
            ranks: (2, 2),
            t_start: VirtualTime::from_ms(10),
            t_end: VirtualTime::from_ms(40),
        });
        let merged = merge_stgs(&stgs);
        let batch = diagnose_regions(&merged, &rois, &cfg);
        for (roi, got) in rois.iter().zip(&batch) {
            assert_eq!(got, &diagnose_region(&stgs, roi, &cfg), "roi {roi:?}");
        }
        assert!(batch.iter().any(Option::is_some));
    }

    #[test]
    fn parallel_and_sequential_batches_are_identical() {
        let stgs = stgs_with_noise(4, 25, 1, (5_000_000, 30_000_000));
        let cfg = VaproConfig::default();
        let rois = rois_grid(4, 50_000_000, 3);
        let merged = merge_stgs(&stgs);
        assert_eq!(
            diagnose_regions(&merged, &rois, &cfg),
            diagnose_regions_seq(&merged, &rois, &cfg)
        );
    }

    #[test]
    fn interval_index_matches_naive_scan() {
        let stgs = stgs_with_noise(3, 20, 1, (0, 20_000_000));
        let merged = merge_stgs(&stgs);
        for (_, pool) in &merged.edges {
            let index = PoolIndex::build(pool.as_slice());
            for roi in rois_grid(3, 45_000_000, 7) {
                let naive: u64 = pool
                    .iter()
                    .filter(|f| {
                        f.kind == FragmentKind::Computation
                            && f.rank >= roi.ranks.0
                            && f.rank <= roi.ranks.1
                            && f.start < roi.t_end
                            && f.end > roi.t_start
                    })
                    .map(|f| f.duration().ns())
                    .sum();
                assert_eq!(index.in_region_ns(&roi), naive, "roi {roi:?}");
            }
        }
    }

    #[test]
    fn batch_diagnosis_clones_no_fragments() {
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let cfg = VaproConfig::default();
        let rois = vec![RegionOfInterest {
            ranks: (2, 2),
            t_start: VirtualTime::from_ms(10),
            t_end: VirtualTime::from_ms(40),
        }];
        let merged = merge_stgs(&stgs);
        let before = clone_count::on_this_thread();
        let reports = diagnose_regions_seq(&merged, &rois, &cfg);
        assert!(reports[0].is_some());
        assert_eq!(
            clone_count::on_this_thread() - before,
            0,
            "batched diagnosis must not clone fragments"
        );
    }

    #[test]
    fn seeded_clusters_match_lazy_clustering() {
        let stgs = stgs_with_noise(4, 25, 0, (0, 25_000_000));
        let cfg = VaproConfig::default();
        let merged = merge_stgs(&stgs);
        let outcomes: Vec<ClusterOutcome> = merged
            .edges
            .iter()
            .map(|(_, pool)| {
                cluster_fragment_refs(
                    pool,
                    &cfg.proxy_counters,
                    cfg.cluster_threshold,
                    cfg.min_cluster_size,
                )
            })
            .collect();
        let rois = rois_grid(4, 40_000_000, 3);
        let seeded = DiagnosisBatch::with_clusters(&merged, &cfg, &outcomes);
        let lazy = DiagnosisBatch::new(&merged, &cfg);
        assert_eq!(seeded.diagnose_all_seq(&rois), lazy.diagnose_all_seq(&rois));
    }
}
