//! Connecting detection to diagnosis: diagnose a detected variance
//! region (or any user-selected region of interest — the paper's "users
//! are able to select regions of interest on the heat map for diagnosis
//! as well", §3.5).
//!
//! The driver pools the fixed-workload fragments whose spans overlap the
//! region from every rank the region covers, together with the same
//! states' fragments from *unaffected* ranks (the normal reference —
//! the inter-process comparison of the HPL case study), and runs the
//! progressive drill-down over that population.

use crate::clustering::cluster_fragment_refs;
use crate::config::VaproConfig;
use crate::detect::pipeline::merge_stgs;
use crate::detect::region::VarianceRegion;
use crate::diagnose::batch::ScratchProvider;
use crate::diagnose::progressive::{diagnose_progressively_with, DiagnosisReport};
use crate::fragment::{Fragment, FragmentKind};
use crate::stg::Stg;
use vapro_sim::VirtualTime;

/// A region of interest on the heat map: ranks × virtual-time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionOfInterest {
    /// Inclusive rank range.
    pub ranks: (usize, usize),
    /// Time window start.
    pub t_start: VirtualTime,
    /// Time window end.
    pub t_end: VirtualTime,
}

impl From<&VarianceRegion> for RegionOfInterest {
    fn from(r: &VarianceRegion) -> Self {
        RegionOfInterest { ranks: r.rank_range, t_start: r.t_start, t_end: r.t_end }
    }
}

impl RegionOfInterest {
    fn covers(&self, f: &Fragment) -> bool {
        f.rank >= self.ranks.0
            && f.rank <= self.ranks.1
            && f.start < self.t_end
            && f.end > self.t_start
    }
}

/// Diagnose one region of interest over the given STGs.
///
/// The fragment population is the largest fixed-workload cluster among
/// computation fragments that (a) overlap the region on affected ranks
/// or (b) belong to the same cluster anywhere else (the normal
/// reference). Returns `None` when the region holds no usable cluster or
/// no abnormal/normal contrast.
pub fn diagnose_region(
    stgs: &[Stg],
    roi: &RegionOfInterest,
    cfg: &VaproConfig,
) -> Option<DiagnosisReport> {
    let merged = merge_stgs(stgs);

    // Find the edge pool with the most in-region time.
    let mut best: Option<(&[&Fragment], u64)> = None;
    for (_, pool) in &merged.edges {
        let in_region: u64 = pool
            .iter()
            .filter(|f| f.kind == FragmentKind::Computation && roi.covers(f))
            .map(|f| f.duration().ns())
            .sum();
        if in_region > 0 && best.as_ref().is_none_or(|(_, t)| in_region > *t) {
            best = Some((pool.as_slice(), in_region));
        }
    }
    let (pool, _) = best?;

    // The diagnosis population: the whole pool's dominant cluster — it
    // contains the region's abnormal fragments plus the out-of-region /
    // other-rank normal ones that give the reference values. The scratch
    // provider borrows the members and projects counter sets into one
    // reused buffer, so no full-population clone happens at any step.
    let outcome = cluster_fragment_refs(
        pool,
        &cfg.proxy_counters,
        cfg.cluster_threshold,
        cfg.min_cluster_size,
    );
    let cluster = outcome
        .usable
        .iter()
        .max_by_key(|c| c.members.len())?;
    let members: Vec<&Fragment> = cluster.members.iter().map(|&m| pool[m]).collect();
    let mut provider = ScratchProvider::new(members);
    diagnose_progressively_with(
        &mut provider,
        cfg.ka_abnormal,
        cfg.major_factor_threshold,
        0.05,
    )
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::diagnose::factor::Factor;
    use crate::fragment::clone_count;
    use crate::stg::StateKey;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vapro_pmu::{events, CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
    use vapro_sim::CallSite;

    /// Build per-rank STGs: `nranks` ranks run the same fixed workload;
    /// `slow_rank` suffers memory contention inside `[t0, t1)`. Shared
    /// with the batch-diagnosis tests.
    pub(crate) fn stgs_with_noise(
        nranks: usize,
        n: usize,
        slow_rank: usize,
        window: (u64, u64),
    ) -> Vec<Stg> {
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
        let spec = WorkloadSpec::memory_bound(2e6);
        (0..nranks)
            .map(|rank| {
                let mut rng = ChaCha8Rng::seed_from_u64(rank as u64);
                let mut stg = Stg::new();
                let s0 = stg.state(StateKey::Start);
                let s1 = stg.state(StateKey::Site(CallSite("roi:MPI_Barrier")));
                stg.transition(s0, s1);
                let e = stg.transition(s1, s1);
                let mut t = 0u64;
                for _ in 0..n {
                    let noisy = rank == slow_rank && t >= window.0 && t < window.1;
                    let env = if noisy {
                        NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() }
                    } else {
                        NoiseEnv::quiet()
                    };
                    let out = model.execute(&spec, &env, &mut rng);
                    let start = VirtualTime::from_ns(t);
                    let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                    t = end.ns() + 500;
                    stg.attach_edge_fragment(
                        e,
                        Fragment {
                            rank,
                            kind: FragmentKind::Computation,
                            start,
                            end,
                            counters: out.counters.project(events::s3_memory_set()),
                            args: vec![],
                        },
                    );
                }
                stg
            })
            .collect()
    }

    #[test]
    fn region_diagnosis_finds_the_injected_factor() {
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let roi = RegionOfInterest {
            ranks: (2, 2),
            t_start: VirtualTime::from_ms(10),
            t_end: VirtualTime::from_ms(40),
        };
        let cfg = VaproConfig::default();
        let rep = diagnose_region(&stgs, &roi, &cfg).expect("diagnosis ran");
        assert!(rep.steps[0].report.of(Factor::BackendBound).unwrap().major);
        assert!(
            rep.culprits
                .iter()
                .any(|c| matches!(c, Factor::DramBound | Factor::L3Bound | Factor::MemoryBound)),
            "culprits {:?}",
            rep.culprits
        );
    }

    #[test]
    fn region_diagnosis_clones_no_fragments() {
        // The provider projects counters into a reused scratch buffer;
        // no step clones the population (driver.rs used to pay
        // 1 + steps full-population clones here).
        let stgs = stgs_with_noise(4, 30, 2, (10_000_000, 40_000_000));
        let roi = RegionOfInterest {
            ranks: (2, 2),
            t_start: VirtualTime::from_ms(10),
            t_end: VirtualTime::from_ms(40),
        };
        let before = clone_count::on_this_thread();
        let rep = diagnose_region(&stgs, &roi, &VaproConfig::default());
        assert!(rep.is_some());
        assert_eq!(clone_count::on_this_thread() - before, 0);
    }

    #[test]
    fn quiet_region_yields_no_diagnosis() {
        let stgs = stgs_with_noise(4, 20, usize::MAX, (0, 0));
        let roi = RegionOfInterest {
            ranks: (0, 3),
            t_start: VirtualTime::ZERO,
            t_end: VirtualTime::from_secs(10),
        };
        assert!(diagnose_region(&stgs, &roi, &VaproConfig::default()).is_none());
    }

    #[test]
    fn empty_region_yields_no_diagnosis() {
        let stgs = stgs_with_noise(2, 10, 0, (0, 5_000_000));
        // A time window beyond the run.
        let roi = RegionOfInterest {
            ranks: (0, 1),
            t_start: VirtualTime::from_secs(100),
            t_end: VirtualTime::from_secs(200),
        };
        assert!(diagnose_region(&stgs, &roi, &VaproConfig::default()).is_none());
    }

    #[test]
    fn roi_converts_from_variance_region() {
        let r = VarianceRegion {
            cells: vec![(1, 2)],
            rank_range: (1, 3),
            bin_range: (2, 4),
            t_start: VirtualTime::from_ms(5),
            t_end: VirtualTime::from_ms(9),
            loss_ns: 1.0,
            mean_perf: 0.5,
        };
        let roi: RegionOfInterest = (&r).into();
        assert_eq!(roi.ranks, (1, 3));
        assert_eq!(roi.t_start, VirtualTime::from_ms(5));
    }
}
