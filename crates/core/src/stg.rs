//! The State Transition Graph (paper §3.2, Definition 1).
//!
//! Vertices are running states — external invocations identified by
//! call-site (context-free) or call-path (context-aware). Edges are
//! transitions between states, i.e. the computation snippets between
//! consecutive invocations. Vertex fragments are invocation executions;
//! edge fragments are computation-snippet executions.

use crate::config::StgMode;
use crate::fragment::Fragment;
use std::collections::HashMap;
use vapro_sim::{CallPath, CallSite};

/// The key of one running state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateKey {
    /// Program entry (the pseudo-state before the first invocation).
    Start,
    /// Context-free: the invocation's call-site.
    Site(CallSite),
    /// Context-aware: the full call-path of the invocation.
    Path(CallPath),
}

impl StateKey {
    /// Build the key for an invocation under the given mode.
    pub fn for_invocation(mode: StgMode, site: CallSite, path: &CallPath) -> StateKey {
        match mode {
            StgMode::ContextFree => StateKey::Site(site),
            StgMode::ContextAware => StateKey::Path(path.clone()),
        }
    }

    /// A short human-readable label.
    pub fn label(&self) -> String {
        match self {
            StateKey::Start => "<start>".to_string(),
            StateKey::Site(s) => s.to_string(),
            StateKey::Path(p) => p.to_string(),
        }
    }
}

/// Dense id of a state (vertex).
pub type StateId = usize;
/// Dense id of an edge.
pub type EdgeId = usize;

/// One vertex: a running state plus the invocation fragments observed in it.
#[derive(Debug)]
pub struct Vertex {
    /// The state's key.
    pub key: StateKey,
    /// Invocation (communication / IO) fragments attached here.
    pub fragments: Vec<Fragment>,
}

/// One edge: a state transition plus the computation fragments observed on it.
#[derive(Debug)]
pub struct Edge {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Computation fragments attached to this transition.
    pub fragments: Vec<Fragment>,
}

/// The state transition graph of one rank.
#[derive(Debug, Default)]
pub struct Stg {
    states: HashMap<StateKey, StateId>,
    vertices: Vec<Vertex>,
    edge_ids: HashMap<(StateId, StateId), EdgeId>,
    edges: Vec<Edge>,
}

impl Stg {
    /// An empty graph.
    pub fn new() -> Self {
        Stg::default()
    }

    /// Intern a state, creating its vertex on first sight.
    pub fn state(&mut self, key: StateKey) -> StateId {
        if let Some(&id) = self.states.get(&key) {
            return id;
        }
        let id = self.vertices.len();
        self.vertices.push(Vertex { key: key.clone(), fragments: Vec::new() });
        self.states.insert(key, id);
        id
    }

    /// Intern the transition `from → to`, creating the edge on first sight.
    pub fn transition(&mut self, from: StateId, to: StateId) -> EdgeId {
        if let Some(&id) = self.edge_ids.get(&(from, to)) {
            return id;
        }
        let id = self.edges.len();
        self.edges.push(Edge { from, to, fragments: Vec::new() });
        self.edge_ids.insert((from, to), id);
        id
    }

    /// Attach an invocation fragment to a vertex.
    pub fn attach_vertex_fragment(&mut self, state: StateId, frag: Fragment) {
        self.vertices[state].fragments.push(frag);
    }

    /// Attach a computation fragment to an edge.
    pub fn attach_edge_fragment(&mut self, edge: EdgeId, frag: Fragment) {
        self.edges[edge].fragments.push(frag);
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Look up a state id by key.
    pub fn find_state(&self, key: &StateKey) -> Option<StateId> {
        self.states.get(key).copied()
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total fragments attached anywhere.
    pub fn total_fragments(&self) -> usize {
        self.vertices.iter().map(|v| v.fragments.len()).sum::<usize>()
            + self.edges.iter().map(|e| e.fragments.len()).sum::<usize>()
    }

    /// Out-degree of a state.
    pub fn out_degree(&self, state: StateId) -> usize {
        self.edges.iter().filter(|e| e.from == state).count()
    }

    /// The edge whose fragments account for the most total time — the
    /// dominant computation snippet. Edges between back-to-back
    /// invocations carry many but near-empty fragments, so picking by
    /// fragment *count* selects noise; picking by time selects the
    /// snippet a user would care about.
    pub fn hottest_edge(&self) -> Option<&Edge> {
        self.edges
            .iter()
            .filter(|e| !e.fragments.is_empty())
            .max_by(|a, b| {
                let ta: u64 = a.fragments.iter().map(|f| f.duration().ns()).sum();
                let tb: u64 = b.fragments.iter().map(|f| f.duration().ns()).sum();
                ta.cmp(&tb)
            })
    }

    /// A DOT-format dump for inspection (the Fig. 4 style view).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph stg {\n");
        for (i, v) in self.vertices.iter().enumerate() {
            writeln!(
                out,
                "  s{} [label=\"{} ({})\"];",
                i,
                v.key.label(),
                v.fragments.len()
            )
            .expect("write to string");
        }
        for e in &self.edges {
            writeln!(out, "  s{} -> s{} [label=\"{}\"];", e.from, e.to, e.fragments.len())
                .expect("write to string");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use vapro_pmu::CounterDelta;
    use vapro_sim::VirtualTime;

    fn dummy_frag() -> Fragment {
        Fragment {
            rank: 0,
            kind: FragmentKind::Computation,
            start: VirtualTime::ZERO,
            end: VirtualTime::from_ns(10),
            counters: CounterDelta::default(),
            args: vec![],
        }
    }

    #[test]
    fn states_are_interned_once() {
        let mut g = Stg::new();
        let a = g.state(StateKey::Site(CallSite("a")));
        let b = g.state(StateKey::Site(CallSite("b")));
        let a2 = g.state(StateKey::Site(CallSite("a")));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(g.num_states(), 2);
    }

    #[test]
    fn context_modes_key_differently() {
        let site = CallSite("cg.f:100:MPI_Send");
        let warm = CallPath::new(&["warmup"], site);
        let real = CallPath::new(&["timed"], site);
        // Context-free: one state for both paths.
        let kf1 = StateKey::for_invocation(StgMode::ContextFree, site, &warm);
        let kf2 = StateKey::for_invocation(StgMode::ContextFree, site, &real);
        assert_eq!(kf1, kf2);
        // Context-aware: two states (the paper's warm-up vs test example).
        let ka1 = StateKey::for_invocation(StgMode::ContextAware, site, &warm);
        let ka2 = StateKey::for_invocation(StgMode::ContextAware, site, &real);
        assert_ne!(ka1, ka2);
    }

    #[test]
    fn edges_are_interned_and_directional() {
        let mut g = Stg::new();
        let a = g.state(StateKey::Site(CallSite("a")));
        let b = g.state(StateKey::Site(CallSite("b")));
        let ab = g.transition(a, b);
        let ba = g.transition(b, a);
        let ab2 = g.transition(a, b);
        assert_eq!(ab, ab2);
        assert_ne!(ab, ba);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn fragments_attach_to_vertices_and_edges() {
        let mut g = Stg::new();
        let a = g.state(StateKey::Site(CallSite("a")));
        let b = g.state(StateKey::Site(CallSite("b")));
        let e = g.transition(a, b);
        g.attach_vertex_fragment(a, dummy_frag());
        g.attach_edge_fragment(e, dummy_frag());
        g.attach_edge_fragment(e, dummy_frag());
        assert_eq!(g.vertices()[a].fragments.len(), 1);
        assert_eq!(g.edges()[e].fragments.len(), 2);
        assert_eq!(g.total_fragments(), 3);
    }

    #[test]
    fn cg_like_loop_shape() {
        // The Fig. 4 pattern: a loop over irecv → send → wait builds a
        // small cyclic graph, not an unrolled chain.
        let mut g = Stg::new();
        let start = g.state(StateKey::Start);
        let irecv = g.state(StateKey::Site(CallSite("cg:irecv")));
        let send = g.state(StateKey::Site(CallSite("cg:send")));
        let wait = g.state(StateKey::Site(CallSite("cg:wait")));
        let mut prev = start;
        for _ in 0..100 {
            for s in [irecv, send, wait] {
                let e = g.transition(prev, s);
                g.attach_edge_fragment(e, dummy_frag());
                prev = s;
            }
        }
        assert_eq!(g.num_states(), 4);
        // start→irecv, irecv→send, send→wait, wait→irecv.
        assert_eq!(g.num_edges(), 4);
        // The back edge carries 99 fragments.
        let back = g.edges().iter().find(|e| e.from == wait && e.to == irecv).unwrap();
        assert_eq!(back.fragments.len(), 99);
    }

    #[test]
    fn dot_dump_mentions_every_state() {
        let mut g = Stg::new();
        g.state(StateKey::Site(CallSite("alpha")));
        g.state(StateKey::Site(CallSite("beta")));
        let dot = g.to_dot();
        assert!(dot.contains("alpha"));
        assert!(dot.contains("beta"));
        assert!(dot.starts_with("digraph"));
    }
}
