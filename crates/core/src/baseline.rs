//! Between-executions variance (paper §1: variance "happens in different
//! processes or threads within one execution *and between executions*",
//! and Fig. 1's run-to-run spread): persist a baseline profile of a
//! known-good run and compare later runs against it.
//!
//! The profile stores, per STG state/transition, the fixed-workload
//! cluster signatures (seed workload vector) and each cluster's best
//! observed time. A later run's clusters are matched by signature (same
//! state, workload within the clustering threshold) and compared by
//! best-time ratio — so a *regression* (this submission is slower than
//! the fleet's baseline) is distinguished from in-run variance.

use crate::clustering::cluster_fragment_refs;
use crate::config::VaproConfig;
use crate::detect::pipeline::merge_stgs;
use crate::fragment::Fragment;
use crate::stg::Stg;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One cluster's persisted signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSignature {
    /// The seed workload vector (smallest-norm member).
    pub seed: Vec<f64>,
    /// Best (minimum) observed duration, ns.
    pub best_ns: f64,
    /// Median observed duration, ns.
    pub median_ns: f64,
    /// Number of member fragments.
    pub count: usize,
}

/// The persisted profile of one (good) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BaselineProfile {
    /// Signatures per state/transition label.
    pub states: BTreeMap<String, Vec<ClusterSignature>>,
}

/// One matched cluster's comparison against the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateComparison {
    /// State/transition label.
    pub location: String,
    /// Baseline best time, ns.
    pub baseline_ns: f64,
    /// This run's best time, ns.
    pub current_ns: f64,
    /// `current / baseline`: > 1 is a slowdown.
    pub ratio: f64,
}

/// The cross-run comparison result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunComparison {
    /// Matched clusters, worst ratio first.
    pub matched: Vec<StateComparison>,
    /// Workloads present now but absent from the baseline (new code
    /// paths or changed inputs).
    pub unmatched_current: usize,
    /// Baseline workloads not observed in this run.
    pub unmatched_baseline: usize,
}

impl RunComparison {
    /// Duration-weighted geometric-mean slowdown across matched clusters.
    pub fn overall_slowdown(&self) -> f64 {
        if self.matched.is_empty() {
            return 1.0;
        }
        let mut log_sum = 0.0;
        let mut weight = 0.0;
        for m in &self.matched {
            let w = m.baseline_ns.max(1.0);
            log_sum += m.ratio.max(1e-12).ln() * w;
            weight += w;
        }
        (log_sum / weight).exp()
    }

    /// States regressed beyond `ratio_threshold` (e.g. 1.2).
    pub fn regressions(&self, ratio_threshold: f64) -> Vec<&StateComparison> {
        self.matched
            .iter()
            .filter(|m| m.ratio > ratio_threshold)
            .collect()
    }
}

fn signatures_of(
    label: String,
    frags: &[&Fragment],
    cfg: &VaproConfig,
    out: &mut BTreeMap<String, Vec<ClusterSignature>>,
) {
    let outcome = cluster_fragment_refs(
        frags,
        &cfg.proxy_counters,
        cfg.cluster_threshold,
        cfg.min_cluster_size,
    );
    let mut sigs = Vec::new();
    for c in &outcome.usable {
        let mut durs: Vec<f64> =
            c.members.iter().map(|&m| frags[m].duration_ns()).collect();
        durs.sort_by(|a, b| a.partial_cmp(b).expect("finite duration"));
        sigs.push(ClusterSignature {
            seed: c.seed.clone(),
            best_ns: durs[0],
            median_ns: durs[durs.len() / 2],
            count: c.len(),
        });
    }
    if !sigs.is_empty() {
        out.insert(label, sigs);
    }
}

impl BaselineProfile {
    /// Build a profile from a run's per-rank STGs.
    pub fn build(stgs: &[Stg], cfg: &VaproConfig) -> BaselineProfile {
        let merged = merge_stgs(stgs);
        let mut states = BTreeMap::new();
        for (key, frags) in merged.vertex_pools() {
            signatures_of(key.label(), frags, cfg, &mut states);
        }
        for (from, to, frags) in merged.edge_pools() {
            signatures_of(
                format!("{} -> {}", from.label(), to.label()),
                frags,
                cfg,
                &mut states,
            );
        }
        BaselineProfile { states }
    }

    /// Serialise to JSON (what a deployment would write next to the job's
    /// artefacts).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("serialisable profile")
    }

    /// Load from JSON.
    pub fn from_json(s: &str) -> Result<BaselineProfile, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Compare a later run against this baseline: clusters match when
    /// they live at the same state and their seed vectors are within the
    /// clustering threshold of each other.
    pub fn compare(&self, stgs: &[Stg], cfg: &VaproConfig) -> RunComparison {
        let current = BaselineProfile::build(stgs, cfg);
        let mut matched = Vec::new();
        let mut unmatched_current = 0usize;
        let mut matched_baseline = 0usize;

        for (label, cur_sigs) in &current.states {
            let Some(base_sigs) = self.states.get(label) else {
                unmatched_current += cur_sigs.len();
                continue;
            };
            for cur in cur_sigs {
                let cur_norm = Fragment::vector_norm(&cur.seed);
                let hit = base_sigs.iter().find(|b| {
                    let d: f64 = b
                        .seed
                        .iter()
                        .zip(&cur.seed)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt();
                    d <= (cfg.cluster_threshold * cur_norm).max(1e-9)
                });
                match hit {
                    Some(b) => {
                        matched_baseline += 1;
                        matched.push(StateComparison {
                            location: label.clone(),
                            baseline_ns: b.best_ns,
                            current_ns: cur.best_ns,
                            ratio: if b.best_ns > 0.0 {
                                cur.best_ns / b.best_ns
                            } else {
                                1.0
                            },
                        });
                    }
                    None => unmatched_current += 1,
                }
            }
        }
        let total_baseline: usize = self.states.values().map(Vec::len).sum();
        matched.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratio"));
        RunComparison {
            matched,
            unmatched_current,
            unmatched_baseline: total_baseline.saturating_sub(matched_baseline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentKind;
    use crate::stg::StateKey;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vapro_pmu::{CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
    use vapro_sim::{CallSite, VirtualTime};

    fn run_stg(env: NoiseEnv, seed: u64) -> Vec<Stg> {
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::default());
        let spec = WorkloadSpec::mixed(1e6);
        (0..2)
            .map(|rank| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ rank as u64);
                let mut stg = Stg::new();
                let s0 = stg.state(StateKey::Start);
                let s1 = stg.state(StateKey::Site(CallSite("b:MPI_Barrier")));
                stg.transition(s0, s1);
                let e = stg.transition(s1, s1);
                let mut t = 0u64;
                for _ in 0..12 {
                    let out = model.execute(&spec, &env, &mut rng);
                    let start = VirtualTime::from_ns(t);
                    let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                    t = end.ns() + 100;
                    stg.attach_edge_fragment(
                        e,
                        Fragment {
                            rank,
                            kind: FragmentKind::Computation,
                            start,
                            end,
                            counters: out
                                .counters
                                .project(vapro_pmu::events::detection_set()),
                            args: vec![],
                        },
                    );
                }
                stg
            })
            .collect()
    }

    #[test]
    fn identical_runs_compare_near_unity() {
        let cfg = VaproConfig::default();
        let base = BaselineProfile::build(&run_stg(NoiseEnv::quiet(), 1), &cfg);
        let cmp = base.compare(&run_stg(NoiseEnv::quiet(), 2), &cfg);
        assert!(!cmp.matched.is_empty());
        let slow = cmp.overall_slowdown();
        assert!((slow - 1.0).abs() < 0.02, "slowdown {slow}");
        assert!(cmp.regressions(1.2).is_empty());
        assert_eq!(cmp.unmatched_current, 0);
        assert_eq!(cmp.unmatched_baseline, 0);
    }

    #[test]
    fn degraded_run_is_flagged_as_a_regression() {
        let cfg = VaproConfig::default();
        let base = BaselineProfile::build(&run_stg(NoiseEnv::quiet(), 1), &cfg);
        // The whole later run suffers memory contention — in-run detection
        // sees nothing (every fragment equally slow), but the baseline
        // comparison does.
        let degraded = run_stg(
            NoiseEnv { mem_contention: 1.5, ..NoiseEnv::default() },
            3,
        );
        let in_run = crate::detect::pipeline::detect(&degraded, 2, 16, &cfg);
        assert!(in_run.comp_regions.is_empty(), "uniform slowdown wrongly flagged");
        let cmp = base.compare(&degraded, &cfg);
        let slow = cmp.overall_slowdown();
        assert!(slow > 1.2, "slowdown {slow}");
        assert!(!cmp.regressions(1.2).is_empty());
    }

    #[test]
    fn changed_workload_is_unmatched_not_miscompared() {
        let cfg = VaproConfig::default();
        let base = BaselineProfile::build(&run_stg(NoiseEnv::quiet(), 1), &cfg);
        // A run whose workload doubled (input change): TOT_INS signature
        // misses the baseline cluster by far more than the threshold.
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::default());
        let spec = WorkloadSpec::mixed(2e6);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut stg = Stg::new();
        let s0 = stg.state(StateKey::Start);
        let s1 = stg.state(StateKey::Site(CallSite("b:MPI_Barrier")));
        stg.transition(s0, s1);
        let e = stg.transition(s1, s1);
        let mut t = 0u64;
        for _ in 0..12 {
            let out = model.execute(&spec, &NoiseEnv::quiet(), &mut rng);
            let start = VirtualTime::from_ns(t);
            let end = start + VirtualTime::from_ns_f64(out.wall_ns);
            t = end.ns() + 100;
            stg.attach_edge_fragment(
                e,
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start,
                    end,
                    counters: out.counters.project(vapro_pmu::events::detection_set()),
                    args: vec![],
                },
            );
        }
        let cmp = base.compare(&[stg], &cfg);
        assert!(cmp.matched.is_empty(), "{:?}", cmp.matched);
        assert!(cmp.unmatched_current > 0);
        assert!(cmp.unmatched_baseline > 0);
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let cfg = VaproConfig::default();
        let base = BaselineProfile::build(&run_stg(NoiseEnv::quiet(), 1), &cfg);
        let json = base.to_json();
        let back = BaselineProfile::from_json(&json).unwrap();
        // JSON float formatting can shift the last ULP; compare within
        // tolerance rather than bit-exactly.
        assert_eq!(base.states.len(), back.states.len());
        for (label, sigs) in &base.states {
            let back_sigs = &back.states[label];
            assert_eq!(sigs.len(), back_sigs.len());
            for (a, b) in sigs.iter().zip(back_sigs) {
                assert_eq!(a.count, b.count);
                assert!((a.best_ns - b.best_ns).abs() < 1e-6);
                for (x, y) in a.seed.iter().zip(&b.seed) {
                    assert!((x - y).abs() <= x.abs() * 1e-12);
                }
            }
        }
    }
}
