//! State-key interning for the detection pipeline.
//!
//! Merging per-rank STGs used to clone every [`StateKey`] it touched —
//! once per vertex and twice per edge, per rank. Keys are cheap for
//! context-free sites but a context-aware [`StateKey::Path`] owns a full
//! call-path vector, so the clones dominated `merge_stgs` on deep call
//! trees. The [`SymbolTable`] instead borrows each distinct key once and
//! hands out dense `u32` symbols; everything downstream (pooling, sorting,
//! labelling) works on symbols and resolves back to the borrowed key only
//! when a label is actually needed.

use crate::stg::StateKey;
use std::collections::HashMap;

/// Dense id of an interned [`StateKey`].
pub type Sym = u32;

/// Interns borrowed state keys to dense [`Sym`] ids.
///
/// The table never clones a key: it stores one `&StateKey` per distinct
/// key, borrowed from the STG that first mentioned it.
#[derive(Debug, Default)]
pub struct SymbolTable<'a> {
    map: HashMap<&'a StateKey, Sym>,
    keys: Vec<&'a StateKey>,
}

impl<'a> SymbolTable<'a> {
    /// An empty table.
    pub fn new() -> SymbolTable<'a> {
        SymbolTable::default()
    }

    /// Intern a key, returning its symbol (stable across repeat calls).
    pub fn intern(&mut self, key: &'a StateKey) -> Sym {
        if let Some(&sym) = self.map.get(key) {
            return sym;
        }
        let sym = Sym::try_from(self.keys.len()).expect("more than u32::MAX distinct states");
        self.keys.push(key);
        self.map.insert(key, sym);
        sym
    }

    /// Resolve a symbol back to its key.
    pub fn key(&self, sym: Sym) -> &'a StateKey {
        self.keys[sym as usize]
    }

    /// Look up a key's symbol without interning it.
    pub fn find(&self, key: &StateKey) -> Option<Sym> {
        self.map.get(key).copied()
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::CallSite;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = StateKey::Site(CallSite("a"));
        let b = StateKey::Site(CallSite("b"));
        let mut t = SymbolTable::new();
        let sa = t.intern(&a);
        let sb = t.intern(&b);
        assert_eq!(t.intern(&a), sa);
        assert_ne!(sa, sb);
        assert_eq!(t.len(), 2);
        assert_eq!(t.key(sa), &a);
        assert_eq!(t.key(sb), &b);
    }

    #[test]
    fn equal_keys_from_different_owners_share_a_symbol() {
        // Two separately-allocated but equal keys intern to one symbol —
        // exactly the cross-rank pooling situation.
        let k1 = StateKey::Site(CallSite("loop:MPI_Allreduce"));
        let k2 = StateKey::Site(CallSite("loop:MPI_Allreduce"));
        let mut t = SymbolTable::new();
        assert_eq!(t.intern(&k1), t.intern(&k2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn find_does_not_intern() {
        let a = StateKey::Start;
        let mut t = SymbolTable::new();
        assert_eq!(t.find(&a), None);
        let s = t.intern(&a);
        assert_eq!(t.find(&a), Some(s));
        assert_eq!(t.len(), 1);
    }
}
