//! Interning for the detection pipeline and the wire format.
//!
//! Merging per-rank STGs used to clone every [`StateKey`] it touched —
//! once per vertex and twice per edge, per rank. Keys are cheap for
//! context-free sites but a context-aware [`StateKey::Path`] owns a full
//! call-path vector, so the clones dominated `merge_stgs` on deep call
//! trees. The [`SymbolTable`] instead stores each distinct key once and
//! hands out dense `u32` symbols; everything downstream (pooling, sorting,
//! labelling) works on symbols and resolves back to the stored key only
//! when a label is actually needed.
//!
//! The table is generic over the key type: the detection pipeline interns
//! `&StateKey` borrowed from the STGs (never cloning a key), and the wire
//! format ([`crate::wire`]) interns owned `String` labels to build the
//! per-batch label dictionary.
//!
//! [`StateKey`]: crate::stg::StateKey

use std::collections::HashMap;
use std::hash::Hash;

/// Dense id of an interned key.
pub type Sym = u32;

/// Interns keys to dense [`Sym`] ids.
///
/// Each distinct key is stored once in insertion order; `Sym`s index that
/// order. For borrowed keys (`K = &T`) the table never clones the
/// underlying value.
#[derive(Debug)]
pub struct SymbolTable<K> {
    map: HashMap<K, Sym>,
    keys: Vec<K>,
}

impl<K> Default for SymbolTable<K> {
    fn default() -> Self {
        SymbolTable { map: HashMap::new(), keys: Vec::new() }
    }
}

impl<K: Eq + Hash + Clone> SymbolTable<K> {
    /// An empty table.
    pub fn new() -> SymbolTable<K> {
        SymbolTable::default()
    }

    /// Intern a key, returning its symbol (stable across repeat calls).
    pub fn intern(&mut self, key: K) -> Sym {
        if let Some(&sym) = self.map.get(&key) {
            return sym;
        }
        // vapro-lint: allow(R5, interner capacity: u32::MAX distinct state keys is unreachable)
        let sym = Sym::try_from(self.keys.len()).expect("more than u32::MAX distinct keys");
        // vapro-lint: allow(R6, one owned key per distinct symbol on first intern; steady state allocates nothing)
        self.keys.push(key.clone());
        self.map.insert(key, sym);
        sym
    }

    /// Resolve a symbol back to its key.
    pub fn key(&self, sym: Sym) -> &K {
        // vapro-lint: allow(R5, syms are issued by intern and index keys by construction)
        &self.keys[sym as usize]
    }

    /// Look up a key's symbol without interning it.
    pub fn find(&self, key: &K) -> Option<Sym> {
        self.map.get(key).copied()
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys in symbol order; `Sym` indexes this slice.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Consume the table, returning the keys in symbol order.
    pub fn into_keys(self) -> Vec<K> {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StateKey;
    use vapro_sim::CallSite;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = StateKey::Site(CallSite("a"));
        let b = StateKey::Site(CallSite("b"));
        let mut t = SymbolTable::new();
        let sa = t.intern(&a);
        let sb = t.intern(&b);
        assert_eq!(t.intern(&a), sa);
        assert_ne!(sa, sb);
        assert_eq!(t.len(), 2);
        assert_eq!(*t.key(sa), &a);
        assert_eq!(*t.key(sb), &b);
    }

    #[test]
    fn equal_keys_from_different_owners_share_a_symbol() {
        // Two separately-allocated but equal keys intern to one symbol —
        // exactly the cross-rank pooling situation.
        let k1 = StateKey::Site(CallSite("loop:MPI_Allreduce"));
        let k2 = StateKey::Site(CallSite("loop:MPI_Allreduce"));
        let mut t = SymbolTable::new();
        assert_eq!(t.intern(&k1), t.intern(&k2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn find_does_not_intern() {
        let a = StateKey::Start;
        let mut t = SymbolTable::new();
        assert_eq!(t.find(&&a), None);
        let s = t.intern(&a);
        assert_eq!(t.find(&&a), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn owned_string_keys_build_a_dictionary() {
        // The wire-format use: intern owned labels, read them back in
        // symbol order as the batch dictionary.
        let mut t: SymbolTable<String> = SymbolTable::new();
        let a = t.intern("alpha".to_string());
        let b = t.intern("beta".to_string());
        assert_eq!(t.intern("alpha".to_string()), a);
        assert_eq!(t.keys(), &["alpha".to_string(), "beta".to_string()]);
        assert_eq!(t.into_keys(), vec!["alpha".to_string(), "beta".to_string()]);
        let _ = b;
    }
}
