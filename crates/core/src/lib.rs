#![warn(missing_docs)]

//! # vapro-core — performance variance detection and diagnosis
//!
//! The paper's primary contribution (Zheng et al., PPoPP'22): a
//! light-weight tool that detects and diagnoses performance variance in
//! production-run parallel applications *without source code*, by
//! exploiting code snippets with de-facto fixed workload.
//!
//! Pipeline (paper Fig. 2):
//!
//! 1. **Intercepting** — [`collector::Collector`] plugs into the runtime's
//!    interception layer and slices execution into fragments;
//! 2. **Building STG** — fragments attach to the vertices (invocations) and
//!    edges (computation snippets) of a [`stg::Stg`], keyed by call-site
//!    (context-free) or call-path (context-aware);
//! 3. **Performance data collection** — each fragment carries a counter
//!    delta and/or invocation arguments ([`fragment`]);
//! 4. **Identifying fixed-workload fragments** — [`clustering`] implements
//!    the paper's Algorithm 1 (norm-sorted greedy clustering, linear time);
//! 5. **Variance detection** — [`detect`] normalises per-cluster
//!    performance, merges clusters, renders rank × time heat maps, and
//!    locates variance by region growing;
//! 6. **Progressive variance diagnosis** — [`diagnose`] breaks wall time
//!    into the hierarchical factor model of paper Fig. 10, quantifies each
//!    factor by formula or OLS, and drills down stage by stage;
//! 7. **Visualization** — [`viz`] renders heat maps and serialises reports.

pub mod baseline;
pub mod clustering;
pub mod collector;
pub mod columnar;
pub mod config;
pub mod detect;
pub mod diagnose;
pub mod fleet;
pub mod fragment;
pub mod intern;
pub mod report;
pub mod sampling;
pub mod stg;
pub mod viz;
pub mod vopr;
pub mod wire;

pub use baseline::{BaselineProfile, RunComparison};
pub use clustering::{
    cluster_fragment_refs, cluster_fragments, cluster_lanes, cluster_pool, cluster_vectors,
    cluster_vectors_unpruned, Cluster, ClusterOutcome,
};
pub use columnar::{ColumnarPool, LaneView, PoolView};
pub use detect::pipeline::{
    detect, detect_columnar, detect_intra, detect_merged, detect_seq, merge_stgs,
    merge_stgs_window, DetectionResult, MergedStg,
};
pub use intern::{Sym, SymbolTable};
pub use collector::Collector;
pub use config::{FaultTolerance, LateDataPolicy, StgMode, VaproConfig};
pub use detect::heatmap::HeatMap;
pub use detect::region::VarianceRegion;
pub use detect::server::{
    AnalysisServer, IngestArena, IngestStats, RankHealth, RegionDiagnosis, ServerPool,
    WindowReport, WindowedIngestor,
};
pub use diagnose::{
    diagnose_region, diagnose_regions, diagnose_regions_columnar, diagnose_regions_seq,
    DiagnosisBatch, EdgePools, DiagnosisReport, RegionOfInterest,
};
pub use fleet::{
    FleetConfig, FleetIngestor, FleetReport, FleetWindow, InterferenceFinding, JobKey,
    JobSummary, TenantSummary,
};
pub use fragment::{Fragment, FragmentKind};
pub use report::{VaproReport, WindowCoverage};
pub use stg::{StateKey, Stg};
pub use wire::{FragmentBatch, ReassembledPools, WireError};
