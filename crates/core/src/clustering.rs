//! Fixed-workload identification by clustering (paper §3.4, Algorithm 1).
//!
//! Fragments attached to one STG edge/vertex may still mix several
//! workloads (Fig. 6): the same call-site can execute with different loop
//! trip counts. Vapro clusters the fragments' workload vectors with an
//! ad-hoc linear-time algorithm exploiting two properties of performance
//! metrics: variance *enlarges* metrics rather than shrinking them, and
//! fixed-workload vectors concentrate near the smallest norm. So:
//!
//! 1. sort fragments by the Euclidean norm of their workload vectors;
//! 2. repeatedly take the smallest-norm unprocessed fragment as a seed and
//!    absorb every fragment within a 5 % relative distance of it;
//! 3. after clustering, flag clusters with fewer than 5 fragments — those
//!    are rarely executed paths the user should inspect separately.
//!
//! The loop over the sorted array is linear (each fragment is visited once
//! as a member); only the initial sort is `O(n log n)`.

use crate::fragment::Fragment;
use serde::{Deserialize, Serialize};
use vapro_pmu::CounterId;

/// One cluster of (presumed) fixed-workload fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices into the input fragment slice.
    pub members: Vec<usize>,
    /// The seed (smallest-norm) workload vector.
    pub seed: Vec<f64>,
    /// Norm of the seed vector.
    pub seed_norm: f64,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by the
    /// algorithm, present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The result of clustering one edge/vertex's fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Clusters with at least `min_cluster_size` members — usable as
    /// in-program benchmarks.
    pub usable: Vec<Cluster>,
    /// Clusters below the size floor: rarely-executed paths, reported to
    /// the user (Algorithm 1, line 8).
    pub rare: Vec<Cluster>,
}

impl ClusterOutcome {
    /// Total fragments across all clusters.
    pub fn total_members(&self) -> usize {
        self.usable.iter().chain(&self.rare).map(Cluster::len).sum()
    }

    /// Cluster label (index into `usable`, or `None` if rare) per input
    /// fragment — the predicted labels used for the Table 2 V-Measure
    /// verification.
    pub fn labels(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (ci, c) in self.usable.iter().enumerate() {
            for &m in &c.members {
                out[m] = Some(ci);
            }
        }
        out
    }

    /// Like [`ClusterOutcome::labels`] but assigning rare clusters labels
    /// after the usable ones, so every fragment gets a label.
    pub fn all_labels(&self, n: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n];
        for (ci, c) in self.usable.iter().chain(&self.rare).enumerate() {
            for &m in &c.members {
                out[m] = ci;
            }
        }
        debug_assert!(out.iter().all(|&l| l != usize::MAX));
        out
    }
}

/// Sort indices and norms shared by the pruned and unpruned scans, and
/// the per-seed distance bound (5 % of the seed norm, with an epsilon
/// floor letting zero-norm workloads cluster together).
fn sorted_by_norm(vectors: &[Vec<f64>]) -> (Vec<f64>, Vec<usize>) {
    let n = vectors.len();
    let norms: Vec<f64> = vectors.iter().map(|v| Fragment::vector_norm(v)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| norms[a].total_cmp(&norms[b]));
    (norms, order)
}

/// Map an `f64` to a `u64` whose unsigned order equals the IEEE-754
/// total order (`f64::total_cmp`). Sorting packed `(key, index)` pairs
/// with an unstable integer sort then reproduces a *stable*
/// `sort_by(total_cmp)` exactly: equal keys are ordered by original
/// index, which is precisely what stability means — while the sort
/// itself compares plain integers instead of chasing floats through an
/// indirection.
#[inline(always)]
fn total_cmp_key(x: f64) -> u64 {
    let bits = x.to_bits() as i64;
    let mapped = bits ^ ((((bits >> 63) as u64) >> 1) as i64);
    (mapped as u64) ^ (1u64 << 63)
}

fn check_dimensions(vectors: &[Vec<f64>], threshold: f64) {
    assert!(threshold > 0.0 && threshold < 1.0, "threshold out of range");
    if let Some(first) = vectors.first() {
        let dim = first.len();
        assert!(
            vectors.iter().all(|v| v.len() == dim),
            "workload vectors must share a dimension"
        );
    }
}

/// Follow the skip chain from sorted position `i` to the next position
/// that may still be unassigned, compressing the path on the way (a
/// single-parent union-find over sorted positions).
fn skip_to(skip: &mut [u32], start: u32) -> u32 {
    let mut root = start;
    while skip[root as usize] != root {
        root = skip[root as usize];
    }
    let mut i = start;
    while skip[i as usize] != root {
        let next = skip[i as usize];
        skip[i as usize] = root;
        i = next;
    }
    root
}

/// Cluster raw workload vectors. `threshold` is the relative distance
/// bound (the paper's 5 %); `min_cluster_size` separates usable from rare
/// clusters (the paper's 5).
///
/// The scan exploits the norm-sorted order twice:
///
/// * **Norm pruning** — members of a cluster seeded at norm `s` must have
///   norms in `[s, s + threshold·s]` (the reverse triangle inequality:
///   `|‖v‖ − ‖seed‖| ≤ ‖v − seed‖`), so each seed's absorb scan breaks at
///   the first candidate past that window instead of visiting the tail.
/// * **Skip pointers** — already-absorbed positions are bridged by a
///   path-compressed next-pointer chain, so overlapping clusters never
///   re-scan each other's members. Together these make the many-small-
///   clusters case near-linear after the initial `O(n log n)` sort.
pub fn cluster_vectors(
    vectors: &[Vec<f64>],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    check_dimensions(vectors, threshold);
    let n = vectors.len();
    if n == 0 {
        return ClusterOutcome { usable: vec![], rare: vec![] };
    }
    let dim = vectors.first().map(Vec::len).unwrap_or(0);
    let mut data = Vec::with_capacity(n * dim);
    for v in vectors {
        data.extend_from_slice(v);
    }
    cluster_lanes(&data, n, dim, threshold, min_cluster_size)
}

/// Below this population the norm sort is a plain `sort_unstable` over
/// the packed records: a counting sort's histogram setup costs more than
/// it saves, and the detection pipeline sorts thousands of small
/// per-location pools per run.
const RADIX_MIN_N: usize = 1 << 12;

/// Radix digit width. 11-bit digits give 2048 scatter streams — the
/// active destination lines fit comfortably in L2, where the previous
/// 16-bit digits fanned writes across 65536 streams (and needed 512 KiB
/// of histogram zeroed per call, which dominated small inputs entirely).
const RADIX_DIGIT_BITS: u32 = 11;
const RADIX_BUCKETS: usize = 1 << RADIX_DIGIT_BITS;

/// Cluster a contiguous row-major `n × dim` matrix of workload vectors —
/// the SoA-native form of [`cluster_vectors`] and the kernel every other
/// entry point lowers to. The whole pipeline runs over adjacent memory:
///
/// 1. norms and sort keys are built in one streaming pass over the flat
///    strip, packed as `truncated_key << 32 | index` — one `u64` per
///    vector, where the 32-bit key is the high half of the monotone
///    [`total_cmp_key`] bit-map (truncating a monotone map is monotone);
/// 2. the packed records are sorted — `sort_unstable` for small pools, a
///    three-pass 11-bit LSD radix for large ones (integer order on the
///    packed record = key order with index tie-break = *stable* key
///    order) — then the rare equal-truncated-key runs are repaired with
///    the exact 64-bit total-order key, which together is bit-identical
///    to a stable `sort_by(total_cmp)` with no float comparisons at all;
/// 3. the absorb scan walks the sorted norm lane sequentially and
///    evaluates distances row against row over contiguous memory, with
///    the kernel specialised for the small dimensions workload proxies
///    actually have.
pub fn cluster_lanes(
    data: &[f64],
    n: usize,
    dim: usize,
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    assert!(threshold > 0.0 && threshold < 1.0, "threshold out of range");
    assert_eq!(data.len(), n * dim, "lane data must be a dense n x dim matrix");
    assert!(n <= u32::MAX as usize, "population exceeds the u32 index space");
    if n == 0 {
        return ClusterOutcome { usable: vec![], rare: vec![] };
    }

    // One streaming pass: norms and packed (truncated key, index) records.
    let mut norms: Vec<f64> = Vec::with_capacity(n);
    let mut keyed: Vec<u64> = Vec::with_capacity(n);
    for i in 0..n {
        let row = &data[i * dim..(i + 1) * dim];
        let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        norms.push(norm);
        keyed.push((total_cmp_key(norm) & !0xFFFF_FFFF) | i as u64);
    }

    if n < RADIX_MIN_N {
        keyed.sort_unstable();
    } else {
        radix_sort_packed(&mut keyed);
    }

    // Repair runs whose truncated keys collide using the exact 64-bit
    // total-order key (ties broken by original index — the stability
    // guarantee). Runs are tiny for real norm distributions; a fully
    // degenerate input degrades to one comparison sort, never to a wrong
    // order.
    let mut s = 0usize;
    while s < n {
        let mut e = s + 1;
        while e < n && keyed[e] >> 32 == keyed[s] >> 32 {
            e += 1;
        }
        if e - s > 1 {
            keyed[s..e].sort_unstable_by_key(|&k| {
                let i = (k & 0xFFFF_FFFF) as u32;
                (total_cmp_key(norms[i as usize]), i)
            });
        }
        s = e;
    }

    // Sorted norm lane: the scan's window check then streams forward.
    let mut snorms: Vec<f64> = Vec::with_capacity(n);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for &k in &keyed {
        let idx = (k & 0xFFFF_FFFF) as u32;
        snorms.push(norms[idx as usize]);
        order.push(idx);
    }

    // Large populations additionally permute the rows into sorted order:
    // the absorb scan then streams *forward* through memory instead of
    // gathering one out-of-order row (one cache miss) per candidate. The
    // permute performs the same gathers once, but as an independent
    // address stream the prefetcher can overlap. Small pools skip the
    // copy — their rows fit in cache either way.
    let sdata: Option<Vec<f64>> = (n >= RADIX_MIN_N).then(|| {
        let mut s = Vec::with_capacity(n * dim);
        for &idx in &order {
            let i = idx as usize;
            s.extend_from_slice(&data[i * dim..(i + 1) * dim]);
        }
        s
    });
    let sdata = sdata.as_deref();

    let clusters = match dim {
        1 => greedy_scan(data, sdata, &snorms, &order, 1, threshold, dist_sq_fixed::<1>),
        2 => greedy_scan(data, sdata, &snorms, &order, 2, threshold, dist_sq_fixed::<2>),
        3 => greedy_scan(data, sdata, &snorms, &order, 3, threshold, dist_sq_fixed::<3>),
        4 => greedy_scan(data, sdata, &snorms, &order, 4, threshold, dist_sq_fixed::<4>),
        _ => greedy_scan(data, sdata, &snorms, &order, dim, threshold, dist_sq),
    };
    split_by_size(clusters, min_cluster_size)
}

/// Three stable counting-scatter passes (LSD radix, 11-bit digits) over
/// the sort-relevant high 32 bits of the packed records. The low 32 bits
/// (the original index) ride along untouched, so the integer order this
/// produces is exactly `sort_unstable`'s: truncated key, then index.
fn radix_sort_packed(keyed: &mut Vec<u64>) {
    let n = keyed.len();
    let mut hist = vec![0u32; 3 * RADIX_BUCKETS];
    let (h0, rest) = hist.split_at_mut(RADIX_BUCKETS);
    let (h1, h2) = rest.split_at_mut(RADIX_BUCKETS);
    let mask = RADIX_BUCKETS as u64 - 1;
    for &k in keyed.iter() {
        h0[((k >> 32) & mask) as usize] += 1;
        h1[((k >> (32 + RADIX_DIGIT_BITS)) & mask) as usize] += 1;
        h2[((k >> (32 + 2 * RADIX_DIGIT_BITS)) & mask) as usize] += 1;
    }
    for h in [&mut *h0, &mut *h1, &mut *h2] {
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let v = *c;
            *c = sum;
            sum += v;
        }
    }
    let mut scratch: Vec<u64> = vec![0; n];
    for &k in keyed.iter() {
        let d = ((k >> 32) & mask) as usize;
        scratch[h0[d] as usize] = k;
        h0[d] += 1;
    }
    for &k in scratch.iter() {
        let d = ((k >> (32 + RADIX_DIGIT_BITS)) & mask) as usize;
        keyed[h1[d] as usize] = k;
        h1[d] += 1;
    }
    for &k in keyed.iter() {
        let d = ((k >> (32 + 2 * RADIX_DIGIT_BITS)) & mask) as usize;
        scratch[h2[d] as usize] = k;
        h2[d] += 1;
    }
    *keyed = scratch;
}

/// Algorithm 1's greedy absorb scan over the norm-sorted order. The
/// sorted norm lane streams forward; vector rows are read from `sdata`
/// (rows pre-permuted into sorted position order, sequential access)
/// when provided, and gathered from `data` through the sorted index lane
/// otherwise — the same values either way. The float semantics are the
/// original ones verbatim — same bound and cutoff formulas, same
/// left-to-right distance summation, members in
/// seed-then-ascending-sorted-position order — so the outcome is
/// bit-identical to the exhaustive reference.
fn greedy_scan<F: Fn(&[f64], &[f64]) -> f64>(
    data: &[f64],
    sdata: Option<&[f64]>,
    snorms: &[f64],
    order: &[u32],
    dim: usize,
    threshold: f64,
    dist: F,
) -> Vec<Cluster> {
    let n = snorms.len();
    // Row of the vector at sorted position `p`: position-indexed in the
    // permuted strip, index-gathered from the original lanes otherwise.
    let row = |p: usize| match sdata {
        Some(s) => &s[p * dim..(p + 1) * dim],
        None => {
            let i = order[p] as usize;
            &data[i * dim..(i + 1) * dim]
        }
    };
    // skip[p] = next possibly-unassigned sorted position ≥ p. The hot
    // loop advances with an inlined fast path — `skip[next] == next`
    // (the next position was never absorbed) is the overwhelmingly
    // common case — and only falls back to the path-compressing chain
    // walk when clusters interleave.
    let mut skip: Vec<u32> = (0..=n as u32).collect();
    let advance = |skip: &mut [u32], next: u32| {
        if skip[next as usize] == next {
            next
        } else {
            skip_to(skip, next)
        }
    };
    let mut clusters: Vec<Cluster> = Vec::new();

    let mut pos = 0u32;
    loop {
        // Seed: smallest-norm unprocessed fragment (Algorithm 1, line 4).
        pos = advance(&mut skip, pos);
        let p = pos as usize;
        if p >= n {
            break;
        }
        let seed = row(p);
        let seed_norm = snorms[p];
        let bound = (threshold * seed_norm).max(1e-9);
        let bound_sq = bound * bound;
        // Break margin: the norm prune must only drop candidates that are
        // *certainly* out of range, so the distance predicate — shared
        // with the unpruned reference — stays the sole decision maker
        // even at floating-point boundaries.
        let norm_cutoff = bound + (seed_norm + seed_norm * threshold) * 1e-12;

        // The norm window bounds the membership: reserve once instead of
        // growing through the realloc ladder (the window end is exact for
        // a fresh window and an overestimate when parts are absorbed).
        let window_end = p + 1 + snorms[p + 1..].partition_point(|&v| v - seed_norm <= norm_cutoff);
        let mut members = Vec::with_capacity(window_end - p);
        members.push(order[p] as usize);
        skip[p] = pos + 1;
        let mut j = advance(&mut skip, pos + 1);
        while (j as usize) < window_end {
            let jj = j as usize;
            if dist(seed, row(jj)) <= bound_sq {
                members.push(order[jj] as usize);
                skip[jj] = j + 1;
            }
            j = advance(&mut skip, j + 1);
        }
        // vapro-lint: allow(R1, one O(dim) seed vector per emitted cluster; not a fragment population)
        clusters.push(Cluster { members, seed: seed.to_vec(), seed_norm });
    }
    clusters
}

/// Distance kernel for a compile-time dimension: the loop fully unrolls,
/// keeping the accumulation order identical to [`dist_sq`].
#[inline(always)]
fn dist_sq_fixed<const D: usize>(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        let d = a[k] - b[k];
        acc += d * d;
    }
    acc
}

/// Reference implementation of Algorithm 1 without the norm prune or the
/// skip pointers: every seed's absorb scan visits every remaining
/// candidate. `O(n·k)` for `k` clusters — kept for the property tests
/// (`cluster_vectors` must produce the identical [`ClusterOutcome`]) and
/// the clustering benchmark's pruned-vs-unpruned comparison.
pub fn cluster_vectors_unpruned(
    vectors: &[Vec<f64>],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    check_dimensions(vectors, threshold);
    let n = vectors.len();
    if n == 0 {
        return ClusterOutcome { usable: vec![], rare: vec![] };
    }
    let (norms, order) = sorted_by_norm(vectors);

    let mut assigned = vec![false; n];
    let mut clusters: Vec<Cluster> = Vec::new();
    for cursor in 0..n {
        let seed_idx = order[cursor];
        if assigned[seed_idx] {
            continue;
        }
        let seed = &vectors[seed_idx];
        let seed_norm = norms[seed_idx];
        let bound = (threshold * seed_norm).max(1e-9);
        let bound_sq = bound * bound;
        let mut members = vec![seed_idx];
        assigned[seed_idx] = true;
        for &j in order[cursor + 1..].iter() {
            if assigned[j] {
                continue;
            }
            if dist_sq(seed, &vectors[j]) <= bound_sq {
                // vapro-lint: allow(R4, cluster membership is data-dependent; no size is knowable before the scan)
                members.push(j);
                assigned[j] = true;
            }
        }
        // vapro-lint: allow(R1, one O(dim) seed vector per emitted cluster; not a fragment population)
        // vapro-lint: allow(R4, cluster count is data-dependent; one push per emitted cluster)
        clusters.push(Cluster { members, seed: seed.clone(), seed_norm });
    }

    split_by_size(clusters, min_cluster_size)
}

fn split_by_size(clusters: Vec<Cluster>, min_cluster_size: usize) -> ClusterOutcome {
    let (usable, rare) = clusters
        .into_iter()
        .partition(|c| c.len() >= min_cluster_size);
    ClusterOutcome { usable, rare }
}

/// Cluster borrowed fragments by their workload vectors (computation
/// fragments use `proxy_counters`; invocation fragments use their
/// argument vectors). This is the pipeline's zero-copy entry point:
/// pooled fragments stay where their STG owns them.
pub fn cluster_fragment_refs(
    fragments: &[&Fragment],
    proxy_counters: &[CounterId],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    cluster_pool(fragments, proxy_counters, threshold, min_cluster_size)
}

/// Cluster any pooled population through its [`PoolView`] accessors —
/// the representation-generic entry the detection pipeline calls for
/// both AoS fragment slices and columnar lane views. Workload values go
/// straight into one flat matrix; no per-fragment vector is ever
/// materialised.
pub fn cluster_pool<P: crate::columnar::PoolView + ?Sized>(
    pool: &P,
    proxy_counters: &[CounterId],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let n = pool.len();
    // Mixed-kind inputs could have ragged dimensions; pad to the max.
    let dim = pool.workload_dim(proxy_counters);
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        pool.extend_workload_lane(i, proxy_counters, dim, &mut data);
    }
    cluster_lanes(&data, n, dim, threshold, min_cluster_size)
}

/// Dimension of one fragment's workload vector without building it.
#[inline]
pub(crate) fn workload_dim(f: &Fragment, proxy_counters: &[CounterId]) -> usize {
    match f.kind {
        crate::fragment::FragmentKind::Computation => proxy_counters.len(),
        _ => f.args.len(),
    }
}

/// Append one fragment's workload vector to a flat lane buffer,
/// zero-padded to `dim` — the allocation-free twin of
/// [`Fragment::workload_vector`].
#[inline]
pub(crate) fn extend_workload_lane(
    f: &Fragment,
    proxy_counters: &[CounterId],
    dim: usize,
    out: &mut Vec<f64>,
) {
    let before = out.len();
    match f.kind {
        crate::fragment::FragmentKind::Computation => {
            out.extend(proxy_counters.iter().map(|&c| f.counters.get_or_zero(c)));
        }
        _ => out.extend_from_slice(&f.args),
    }
    out.resize(before + dim, 0.0);
}

/// Cluster owned fragments — see [`cluster_fragment_refs`].
pub fn cluster_fragments(
    fragments: &[Fragment],
    proxy_counters: &[CounterId],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let refs: Vec<&Fragment> = fragments.iter().collect();
    cluster_fragment_refs(&refs, proxy_counters, threshold, min_cluster_size)
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn distinct_workloads_separate() {
        // Two tight groups far apart.
        let mut vals = vec![];
        vals.extend(std::iter::repeat_n(1000.0, 10));
        vals.extend(std::iter::repeat_n(5000.0, 10));
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 2);
        assert!(out.rare.is_empty());
        assert_eq!(out.usable[0].len(), 10);
    }

    #[test]
    fn pmu_jitter_within_threshold_merges() {
        // 0.3 % jitter around one workload: one cluster.
        let vals: Vec<f64> = (0..50).map(|i| 1000.0 * (1.0 + 0.003 * ((i % 7) as f64 - 3.0))).collect();
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 50);
    }

    #[test]
    fn seed_is_smallest_norm() {
        let out = cluster_vectors(&vecs(&[5000.0, 1000.0, 1010.0, 990.0, 1005.0, 1001.0]), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert!((out.usable[0].seed_norm - 990.0).abs() < 1e-9);
        assert_eq!(out.rare.len(), 1); // the lone 5000
    }

    #[test]
    fn small_clusters_are_reported_as_rare() {
        let mut vals = vec![100.0; 20];
        vals.push(9_999.0); // a once-executed path
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.rare.len(), 1);
        assert_eq!(out.rare[0].len(), 1);
    }

    #[test]
    fn paper_example_instruction_ranges() {
        // "fragments within 1000-1050 instructions and 200-210 load/store
        // instructions are put into the same cluster" (§3.4).
        let vectors: Vec<Vec<f64>> = vec![
            vec![1000.0, 200.0],
            vec![1025.0, 205.0],
            vec![1050.0, 210.0],
            vec![1010.0, 202.0],
            vec![1040.0, 208.0],
            // distinctly different workload
            vec![2000.0, 400.0],
            vec![2010.0, 401.0],
            vec![2004.0, 399.0],
            vec![1998.0, 402.0],
            vec![2002.0, 400.0],
        ];
        let out = cluster_vectors(&vectors, 0.05, 5);
        assert_eq!(out.usable.len(), 2);
        assert_eq!(out.usable[0].len(), 5);
        assert_eq!(out.usable[1].len(), 5);
    }

    #[test]
    fn zero_vectors_cluster_together() {
        let out = cluster_vectors(&vecs(&[0.0; 8]), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 8);
    }

    #[test]
    fn chain_does_not_bridge_through_threshold() {
        // A chain 1000, 1049, 1100, 1153…: each within 5 % of the previous
        // but not of the seed. Greedy-from-seed must split the chain rather
        // than absorb it all (unlike single-linkage clustering).
        let vals = [1000.0, 1049.0, 1100.0, 1153.0, 1209.0, 1268.0];
        let out = cluster_vectors(&vecs(&vals), 0.05, 1);
        assert!(out.usable.len() >= 3, "got {} clusters", out.usable.len());
    }

    #[test]
    fn labels_cover_every_fragment() {
        let vals = [10.0, 10.0, 10.0, 10.0, 10.0, 999.0];
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        let labels = out.all_labels(6);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[4]);
        assert_ne!(labels[0], labels[5]);
        let opt = out.labels(6);
        assert!(opt[5].is_none()); // rare cluster → None
        assert_eq!(opt[0], Some(0));
    }

    #[test]
    fn empty_input_is_fine() {
        let out = cluster_vectors(&[], 0.05, 5);
        assert!(out.usable.is_empty() && out.rare.is_empty());
        assert_eq!(out.total_members(), 0);
    }

    #[test]
    fn linear_scan_terminates_on_large_uniform_input() {
        // A smoke test that the forward scan's early break works: 100k
        // identical vectors cluster in one pass.
        let vals = vec![42.0; 100_000];
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 100_000);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_vectors_are_rejected() {
        let _ = cluster_vectors(&[vec![1.0], vec![1.0, 2.0]], 0.05, 5);
    }

    #[test]
    fn pruned_matches_unpruned_on_interleaved_clusters() {
        // Many clusters whose norm windows interleave — the case the skip
        // pointers exist for. The pruned scan must produce the identical
        // outcome to the exhaustive reference.
        let mut vals = vec![];
        for c in 0..40 {
            let base = 100.0 * 1.07f64.powi(c);
            for i in 0..7 {
                vals.push(base * (1.0 + 0.004 * (i as f64 - 3.0)));
            }
        }
        // Shuffle deterministically so input order ≠ norm order.
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in (1..vals.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            vals.swap(i, j);
        }
        let vecs = vecs(&vals);
        assert_eq!(
            cluster_vectors(&vecs, 0.05, 5),
            cluster_vectors_unpruned(&vecs, 0.05, 5)
        );
    }

    #[test]
    fn total_cmp_key_orders_like_total_cmp() {
        let samples = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            1e308,
            -1e308,
            42.5,
            f64::EPSILON,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    total_cmp_key(a).cmp(&total_cmp_key(b)),
                    a.total_cmp(&b),
                    "key order diverged for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn lanes_and_nested_entry_points_agree() {
        // The nested-vector API is a thin wrapper over the flat kernel;
        // feeding the same matrix through both must be identical,
        // including a zero-dimension population (all-empty vectors form
        // one cluster).
        let vectors: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let base = if i % 3 == 0 { 1000.0 } else { 4000.0 };
                vec![base + i as f64, base * 0.2, 7.0]
            })
            .collect();
        let flat: Vec<f64> = vectors.iter().flatten().copied().collect();
        assert_eq!(
            cluster_vectors(&vectors, 0.05, 5),
            cluster_lanes(&flat, vectors.len(), 3, 0.05, 5)
        );
        let empties: Vec<Vec<f64>> = vec![vec![]; 9];
        let out = cluster_lanes(&[], 9, 0, 0.05, 5);
        assert_eq!(cluster_vectors(&empties, 0.05, 5), out);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 9);
    }

    #[test]
    fn wide_vectors_use_the_dynamic_distance_kernel() {
        // dim > 4 exercises the fallback distance path; equivalence with
        // the unpruned reference still must hold bit-for-bit.
        let vectors: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let base = 500.0 * 1.4f64.powi(i % 5);
                (0..7).map(|k| base * (1.0 + 0.002 * ((i + k) % 3) as f64)).collect()
            })
            .collect();
        assert_eq!(
            cluster_vectors(&vectors, 0.05, 5),
            cluster_vectors_unpruned(&vectors, 0.05, 5)
        );
    }

    #[test]
    fn refs_and_owned_entry_points_agree() {
        use crate::fragment::{FragmentKind, DEFAULT_PROXY};
        use vapro_pmu::{CounterDelta, CounterId};
        use vapro_sim::VirtualTime;
        let frags: Vec<Fragment> = (0..12)
            .map(|i| {
                let mut c = CounterDelta::default();
                c.put(CounterId::TotIns, if i % 2 == 0 { 1000.0 } else { 5000.0 });
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(i * 100),
                    end: VirtualTime::from_ns(i * 100 + 50),
                    counters: c,
                    args: vec![],
                }
            })
            .collect();
        let refs: Vec<&Fragment> = frags.iter().collect();
        assert_eq!(
            cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5),
            cluster_fragment_refs(&refs, &DEFAULT_PROXY, 0.05, 5)
        );
    }

    #[test]
    fn extended_proxy_separates_what_tot_ins_cannot() {
        // Two workloads with identical instruction counts but very
        // different memory behaviour (the paper's motivation for letting
        // users add load/store metrics to the proxy).
        use crate::fragment::{Fragment, FragmentKind, DEFAULT_PROXY, EXTENDED_PROXY};
        use vapro_pmu::{CounterDelta, CounterId};
        use vapro_sim::VirtualTime;
        let mk = |ins: f64, loads: f64, stores: f64, i: u64| {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            c.put(CounterId::LoadsL1Hit, loads);
            c.put(CounterId::Stores, stores);
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::from_ns(i * 100),
                end: VirtualTime::from_ns(i * 100 + 50),
                counters: c,
                args: vec![],
            }
        };
        let mut frags = vec![];
        for i in 0..6 {
            frags.push(mk(10_000.0, 4_000.0, 1_000.0, i)); // memory-heavy
        }
        for i in 6..12 {
            frags.push(mk(10_000.0, 500.0, 100.0, i)); // compute-heavy
        }
        let narrow = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let wide = cluster_fragments(&frags, &EXTENDED_PROXY, 0.05, 5);
        // TOT_INS alone cannot tell them apart…
        assert_eq!(narrow.usable.len(), 1);
        // …the extended proxy can.
        assert_eq!(wide.usable.len(), 2);
    }
}
