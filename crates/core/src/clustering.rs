//! Fixed-workload identification by clustering (paper §3.4, Algorithm 1).
//!
//! Fragments attached to one STG edge/vertex may still mix several
//! workloads (Fig. 6): the same call-site can execute with different loop
//! trip counts. Vapro clusters the fragments' workload vectors with an
//! ad-hoc linear-time algorithm exploiting two properties of performance
//! metrics: variance *enlarges* metrics rather than shrinking them, and
//! fixed-workload vectors concentrate near the smallest norm. So:
//!
//! 1. sort fragments by the Euclidean norm of their workload vectors;
//! 2. repeatedly take the smallest-norm unprocessed fragment as a seed and
//!    absorb every fragment within a 5 % relative distance of it;
//! 3. after clustering, flag clusters with fewer than 5 fragments — those
//!    are rarely executed paths the user should inspect separately.
//!
//! The loop over the sorted array is linear (each fragment is visited once
//! as a member); only the initial sort is `O(n log n)`.

use crate::fragment::Fragment;
use serde::{Deserialize, Serialize};
use vapro_pmu::CounterId;

/// One cluster of (presumed) fixed-workload fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Indices into the input fragment slice.
    pub members: Vec<usize>,
    /// The seed (smallest-norm) workload vector.
    pub seed: Vec<f64>,
    /// Norm of the seed vector.
    pub seed_norm: f64,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members (never produced by the
    /// algorithm, present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The result of clustering one edge/vertex's fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterOutcome {
    /// Clusters with at least `min_cluster_size` members — usable as
    /// in-program benchmarks.
    pub usable: Vec<Cluster>,
    /// Clusters below the size floor: rarely-executed paths, reported to
    /// the user (Algorithm 1, line 8).
    pub rare: Vec<Cluster>,
}

impl ClusterOutcome {
    /// Total fragments across all clusters.
    pub fn total_members(&self) -> usize {
        self.usable.iter().chain(&self.rare).map(Cluster::len).sum()
    }

    /// Cluster label (index into `usable`, or `None` if rare) per input
    /// fragment — the predicted labels used for the Table 2 V-Measure
    /// verification.
    pub fn labels(&self, n: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; n];
        for (ci, c) in self.usable.iter().enumerate() {
            for &m in &c.members {
                out[m] = Some(ci);
            }
        }
        out
    }

    /// Like [`ClusterOutcome::labels`] but assigning rare clusters labels
    /// after the usable ones, so every fragment gets a label.
    pub fn all_labels(&self, n: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; n];
        for (ci, c) in self.usable.iter().chain(&self.rare).enumerate() {
            for &m in &c.members {
                out[m] = ci;
            }
        }
        debug_assert!(out.iter().all(|&l| l != usize::MAX));
        out
    }
}

/// Sort indices and norms shared by the pruned and unpruned scans, and
/// the per-seed distance bound (5 % of the seed norm, with an epsilon
/// floor letting zero-norm workloads cluster together).
fn sorted_by_norm(vectors: &[Vec<f64>]) -> (Vec<f64>, Vec<usize>) {
    let n = vectors.len();
    let norms: Vec<f64> = vectors.iter().map(|v| Fragment::vector_norm(v)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| norms[a].total_cmp(&norms[b]));
    (norms, order)
}

fn check_dimensions(vectors: &[Vec<f64>], threshold: f64) {
    assert!(threshold > 0.0 && threshold < 1.0, "threshold out of range");
    if let Some(first) = vectors.first() {
        let dim = first.len();
        assert!(
            vectors.iter().all(|v| v.len() == dim),
            "workload vectors must share a dimension"
        );
    }
}

/// Follow the skip chain from sorted position `i` to the next position
/// that may still be unassigned, compressing the path on the way (a
/// single-parent union-find over sorted positions).
fn skip_to(skip: &mut [u32], start: u32) -> u32 {
    let mut root = start;
    while skip[root as usize] != root {
        root = skip[root as usize];
    }
    let mut i = start;
    while skip[i as usize] != root {
        let next = skip[i as usize];
        skip[i as usize] = root;
        i = next;
    }
    root
}

/// Cluster raw workload vectors. `threshold` is the relative distance
/// bound (the paper's 5 %); `min_cluster_size` separates usable from rare
/// clusters (the paper's 5).
///
/// The scan exploits the norm-sorted order twice:
///
/// * **Norm pruning** — members of a cluster seeded at norm `s` must have
///   norms in `[s, s + threshold·s]` (the reverse triangle inequality:
///   `|‖v‖ − ‖seed‖| ≤ ‖v − seed‖`), so each seed's absorb scan breaks at
///   the first candidate past that window instead of visiting the tail.
/// * **Skip pointers** — already-absorbed positions are bridged by a
///   path-compressed next-pointer chain, so overlapping clusters never
///   re-scan each other's members. Together these make the many-small-
///   clusters case near-linear after the initial `O(n log n)` sort.
pub fn cluster_vectors(
    vectors: &[Vec<f64>],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    check_dimensions(vectors, threshold);
    let n = vectors.len();
    if n == 0 {
        return ClusterOutcome { usable: vec![], rare: vec![] };
    }
    let (norms, order) = sorted_by_norm(vectors);

    // skip[p] = next possibly-unassigned sorted position ≥ p.
    let mut skip: Vec<u32> = (0..=n as u32).collect();
    let mut clusters: Vec<Cluster> = Vec::new();

    let mut pos = 0u32;
    loop {
        // Seed: smallest-norm unprocessed fragment (Algorithm 1, line 4).
        pos = skip_to(&mut skip, pos);
        if pos as usize >= n {
            break;
        }
        let seed_idx = order[pos as usize];
        let seed = &vectors[seed_idx];
        let seed_norm = norms[seed_idx];
        let bound = (threshold * seed_norm).max(1e-9);
        let bound_sq = bound * bound;
        // Break margin: the norm prune must only drop candidates that are
        // *certainly* out of range, so the distance predicate — shared
        // with the unpruned reference — stays the sole decision maker
        // even at floating-point boundaries.
        let norm_cutoff = bound + (seed_norm + seed_norm * threshold) * 1e-12;

        let mut members = vec![seed_idx];
        skip[pos as usize] = pos + 1;
        let mut j = skip_to(&mut skip, pos + 1);
        while (j as usize) < n {
            let cand = order[j as usize];
            if norms[cand] - seed_norm > norm_cutoff {
                break;
            }
            if dist_sq(seed, &vectors[cand]) <= bound_sq {
                members.push(cand);
                skip[j as usize] = j + 1;
            }
            j = skip_to(&mut skip, j + 1);
        }
        // vapro-lint: allow(R1, one O(dim) seed vector per emitted cluster; not a fragment population)
        clusters.push(Cluster { members, seed: seed.clone(), seed_norm });
    }

    split_by_size(clusters, min_cluster_size)
}

/// Reference implementation of Algorithm 1 without the norm prune or the
/// skip pointers: every seed's absorb scan visits every remaining
/// candidate. `O(n·k)` for `k` clusters — kept for the property tests
/// (`cluster_vectors` must produce the identical [`ClusterOutcome`]) and
/// the clustering benchmark's pruned-vs-unpruned comparison.
pub fn cluster_vectors_unpruned(
    vectors: &[Vec<f64>],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    check_dimensions(vectors, threshold);
    let n = vectors.len();
    if n == 0 {
        return ClusterOutcome { usable: vec![], rare: vec![] };
    }
    let (norms, order) = sorted_by_norm(vectors);

    let mut assigned = vec![false; n];
    let mut clusters: Vec<Cluster> = Vec::new();
    for cursor in 0..n {
        let seed_idx = order[cursor];
        if assigned[seed_idx] {
            continue;
        }
        let seed = &vectors[seed_idx];
        let seed_norm = norms[seed_idx];
        let bound = (threshold * seed_norm).max(1e-9);
        let bound_sq = bound * bound;
        let mut members = vec![seed_idx];
        assigned[seed_idx] = true;
        for &j in order[cursor + 1..].iter() {
            if assigned[j] {
                continue;
            }
            if dist_sq(seed, &vectors[j]) <= bound_sq {
                members.push(j);
                assigned[j] = true;
            }
        }
        // vapro-lint: allow(R1, one O(dim) seed vector per emitted cluster; not a fragment population)
        clusters.push(Cluster { members, seed: seed.clone(), seed_norm });
    }

    split_by_size(clusters, min_cluster_size)
}

fn split_by_size(clusters: Vec<Cluster>, min_cluster_size: usize) -> ClusterOutcome {
    let (usable, rare) = clusters
        .into_iter()
        .partition(|c| c.len() >= min_cluster_size);
    ClusterOutcome { usable, rare }
}

/// Cluster borrowed fragments by their workload vectors (computation
/// fragments use `proxy_counters`; invocation fragments use their
/// argument vectors). This is the pipeline's zero-copy entry point:
/// pooled fragments stay where their STG owns them.
pub fn cluster_fragment_refs(
    fragments: &[&Fragment],
    proxy_counters: &[CounterId],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let vectors: Vec<Vec<f64>> = fragments
        .iter()
        .map(|f| f.workload_vector(proxy_counters))
        .collect();
    // Mixed-kind inputs could have ragged dimensions; pad to the max.
    let dim = vectors.iter().map(Vec::len).max().unwrap_or(0);
    let padded: Vec<Vec<f64>> = vectors
        .into_iter()
        .map(|mut v| {
            v.resize(dim, 0.0);
            v
        })
        .collect();
    cluster_vectors(&padded, threshold, min_cluster_size)
}

/// Cluster owned fragments — see [`cluster_fragment_refs`].
pub fn cluster_fragments(
    fragments: &[Fragment],
    proxy_counters: &[CounterId],
    threshold: f64,
    min_cluster_size: usize,
) -> ClusterOutcome {
    let refs: Vec<&Fragment> = fragments.iter().collect();
    cluster_fragment_refs(&refs, proxy_counters, threshold, min_cluster_size)
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(values: &[f64]) -> Vec<Vec<f64>> {
        values.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn distinct_workloads_separate() {
        // Two tight groups far apart.
        let mut vals = vec![];
        vals.extend(std::iter::repeat_n(1000.0, 10));
        vals.extend(std::iter::repeat_n(5000.0, 10));
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 2);
        assert!(out.rare.is_empty());
        assert_eq!(out.usable[0].len(), 10);
    }

    #[test]
    fn pmu_jitter_within_threshold_merges() {
        // 0.3 % jitter around one workload: one cluster.
        let vals: Vec<f64> = (0..50).map(|i| 1000.0 * (1.0 + 0.003 * ((i % 7) as f64 - 3.0))).collect();
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 50);
    }

    #[test]
    fn seed_is_smallest_norm() {
        let out = cluster_vectors(&vecs(&[5000.0, 1000.0, 1010.0, 990.0, 1005.0, 1001.0]), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert!((out.usable[0].seed_norm - 990.0).abs() < 1e-9);
        assert_eq!(out.rare.len(), 1); // the lone 5000
    }

    #[test]
    fn small_clusters_are_reported_as_rare() {
        let mut vals = vec![100.0; 20];
        vals.push(9_999.0); // a once-executed path
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.rare.len(), 1);
        assert_eq!(out.rare[0].len(), 1);
    }

    #[test]
    fn paper_example_instruction_ranges() {
        // "fragments within 1000-1050 instructions and 200-210 load/store
        // instructions are put into the same cluster" (§3.4).
        let vectors: Vec<Vec<f64>> = vec![
            vec![1000.0, 200.0],
            vec![1025.0, 205.0],
            vec![1050.0, 210.0],
            vec![1010.0, 202.0],
            vec![1040.0, 208.0],
            // distinctly different workload
            vec![2000.0, 400.0],
            vec![2010.0, 401.0],
            vec![2004.0, 399.0],
            vec![1998.0, 402.0],
            vec![2002.0, 400.0],
        ];
        let out = cluster_vectors(&vectors, 0.05, 5);
        assert_eq!(out.usable.len(), 2);
        assert_eq!(out.usable[0].len(), 5);
        assert_eq!(out.usable[1].len(), 5);
    }

    #[test]
    fn zero_vectors_cluster_together() {
        let out = cluster_vectors(&vecs(&[0.0; 8]), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 8);
    }

    #[test]
    fn chain_does_not_bridge_through_threshold() {
        // A chain 1000, 1049, 1100, 1153…: each within 5 % of the previous
        // but not of the seed. Greedy-from-seed must split the chain rather
        // than absorb it all (unlike single-linkage clustering).
        let vals = [1000.0, 1049.0, 1100.0, 1153.0, 1209.0, 1268.0];
        let out = cluster_vectors(&vecs(&vals), 0.05, 1);
        assert!(out.usable.len() >= 3, "got {} clusters", out.usable.len());
    }

    #[test]
    fn labels_cover_every_fragment() {
        let vals = [10.0, 10.0, 10.0, 10.0, 10.0, 999.0];
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        let labels = out.all_labels(6);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[4]);
        assert_ne!(labels[0], labels[5]);
        let opt = out.labels(6);
        assert!(opt[5].is_none()); // rare cluster → None
        assert_eq!(opt[0], Some(0));
    }

    #[test]
    fn empty_input_is_fine() {
        let out = cluster_vectors(&[], 0.05, 5);
        assert!(out.usable.is_empty() && out.rare.is_empty());
        assert_eq!(out.total_members(), 0);
    }

    #[test]
    fn linear_scan_terminates_on_large_uniform_input() {
        // A smoke test that the forward scan's early break works: 100k
        // identical vectors cluster in one pass.
        let vals = vec![42.0; 100_000];
        let out = cluster_vectors(&vecs(&vals), 0.05, 5);
        assert_eq!(out.usable.len(), 1);
        assert_eq!(out.usable[0].len(), 100_000);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_vectors_are_rejected() {
        let _ = cluster_vectors(&[vec![1.0], vec![1.0, 2.0]], 0.05, 5);
    }

    #[test]
    fn pruned_matches_unpruned_on_interleaved_clusters() {
        // Many clusters whose norm windows interleave — the case the skip
        // pointers exist for. The pruned scan must produce the identical
        // outcome to the exhaustive reference.
        let mut vals = vec![];
        for c in 0..40 {
            let base = 100.0 * 1.07f64.powi(c);
            for i in 0..7 {
                vals.push(base * (1.0 + 0.004 * (i as f64 - 3.0)));
            }
        }
        // Shuffle deterministically so input order ≠ norm order.
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in (1..vals.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            vals.swap(i, j);
        }
        let vecs = vecs(&vals);
        assert_eq!(
            cluster_vectors(&vecs, 0.05, 5),
            cluster_vectors_unpruned(&vecs, 0.05, 5)
        );
    }

    #[test]
    fn refs_and_owned_entry_points_agree() {
        use crate::fragment::{FragmentKind, DEFAULT_PROXY};
        use vapro_pmu::{CounterDelta, CounterId};
        use vapro_sim::VirtualTime;
        let frags: Vec<Fragment> = (0..12)
            .map(|i| {
                let mut c = CounterDelta::default();
                c.put(CounterId::TotIns, if i % 2 == 0 { 1000.0 } else { 5000.0 });
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start: VirtualTime::from_ns(i * 100),
                    end: VirtualTime::from_ns(i * 100 + 50),
                    counters: c,
                    args: vec![],
                }
            })
            .collect();
        let refs: Vec<&Fragment> = frags.iter().collect();
        assert_eq!(
            cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5),
            cluster_fragment_refs(&refs, &DEFAULT_PROXY, 0.05, 5)
        );
    }

    #[test]
    fn extended_proxy_separates_what_tot_ins_cannot() {
        // Two workloads with identical instruction counts but very
        // different memory behaviour (the paper's motivation for letting
        // users add load/store metrics to the proxy).
        use crate::fragment::{Fragment, FragmentKind, DEFAULT_PROXY, EXTENDED_PROXY};
        use vapro_pmu::{CounterDelta, CounterId};
        use vapro_sim::VirtualTime;
        let mk = |ins: f64, loads: f64, stores: f64, i: u64| {
            let mut c = CounterDelta::default();
            c.put(CounterId::TotIns, ins);
            c.put(CounterId::LoadsL1Hit, loads);
            c.put(CounterId::Stores, stores);
            Fragment {
                rank: 0,
                kind: FragmentKind::Computation,
                start: VirtualTime::from_ns(i * 100),
                end: VirtualTime::from_ns(i * 100 + 50),
                counters: c,
                args: vec![],
            }
        };
        let mut frags = vec![];
        for i in 0..6 {
            frags.push(mk(10_000.0, 4_000.0, 1_000.0, i)); // memory-heavy
        }
        for i in 6..12 {
            frags.push(mk(10_000.0, 500.0, 100.0, i)); // compute-heavy
        }
        let narrow = cluster_fragments(&frags, &DEFAULT_PROXY, 0.05, 5);
        let wide = cluster_fragments(&frags, &EXTENDED_PROXY, 0.05, 5);
        // TOT_INS alone cannot tell them apart…
        assert_eq!(narrow.usable.len(), 1);
        // …the extended proxy can.
        assert_eq!(wide.usable.len(), 2);
    }
}
