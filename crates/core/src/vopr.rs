//! VOPR instrumentation: the fault-point registry and the canary
//! switchboard.
//!
//! The deterministic simulation tester (`crates/vopr`) needs two things
//! from the production code it drives:
//!
//! * **Counted fault points.** Every site where the system *handles* an
//!   injected fault — a CRC reject, a duplicate drop, a dead-rank
//!   latch, an arena eviction, a tenant-budget rejection — registers
//!   itself here with an atomic hit counter. A VOPR run then reports
//!   *coverage*: which handling paths its fault plans actually reached.
//!   A green run that never exercised the backpressure path proves
//!   nothing about backpressure; the counters make that visible and
//!   gateable (≥80% of fault points hit per run).
//! * **Canary mutations.** Five deliberately broken variants of
//!   load-bearing logic, compiled only under the `vopr-canary` feature
//!   and armed one at a time at runtime. The harness MUST flag each
//!   within a bounded number of seeds — the canary-mutation score
//!   (caught/total) is the measured falsification power of the whole
//!   chaos apparatus. Without the feature, [`canary::armed`] is a
//!   `const false` and every canary branch folds away; production
//!   builds carry zero canary code.
//!
//! The counters are process-global and relaxed: they are coverage
//! tallies, not synchronization. The VOPR driver snapshots them around
//! each run ([`fault_points::snapshot`]) and serialises runs behind a
//! lock, so concurrent tests never corrupt a measurement — they only
//! ever inflate someone else's tally, which coverage gating tolerates.

/// The registry of counted fault-handling points.
pub mod fault_points {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Every registered fault-handling point in the ingest plane.
    ///
    /// The discriminants index the hit-counter array; keep them dense.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    #[repr(usize)]
    pub enum FaultPoint {
        /// Wire decode rejected a frame whose CRC did not match.
        WireCorruptReject = 0,
        /// Wire decode rejected a structurally malformed frame
        /// (truncation, bad magic, count mismatch, trailing bytes...).
        WireStructuralReject = 1,
        /// Admission rejected a duplicate sequence number.
        SeqDuplicateReject = 2,
        /// Admission rejected a rank outside the deployment.
        UnknownRankReject = 3,
        /// Admission discarded late data from a latched-dead rank.
        LateDataDrop = 4,
        /// Admission discarded an ahead-of-watermark frame over the
        /// buffered-bytes cap.
        BackpressureDrop = 5,
        /// Liveness tracking latched a stalled rank as dead.
        DeadRankLatch = 6,
        /// A rank joined the deployment mid-stream.
        RankBirth = 7,
        /// Window close reclaimed arena bytes behind the closed horizon.
        ArenaEviction = 8,
        /// The fleet plane rejected a frame from an unregistered tenant.
        UnknownTenantReject = 9,
        /// The fleet plane rejected a frame over its tenant's byte
        /// budget.
        TenantOverBudgetReject = 10,
    }

    /// Number of registered fault points.
    pub const COUNT: usize = 11;

    /// All fault points, in discriminant order.
    pub const ALL: [FaultPoint; COUNT] = [
        FaultPoint::WireCorruptReject,
        FaultPoint::WireStructuralReject,
        FaultPoint::SeqDuplicateReject,
        FaultPoint::UnknownRankReject,
        FaultPoint::LateDataDrop,
        FaultPoint::BackpressureDrop,
        FaultPoint::DeadRankLatch,
        FaultPoint::RankBirth,
        FaultPoint::ArenaEviction,
        FaultPoint::UnknownTenantReject,
        FaultPoint::TenantOverBudgetReject,
    ];

    static HITS: [AtomicU64; COUNT] = [const { AtomicU64::new(0) }; COUNT];

    /// Stable machine-readable name, used as the report key.
    pub fn name(point: FaultPoint) -> &'static str {
        match point {
            FaultPoint::WireCorruptReject => "wire_corrupt_reject",
            FaultPoint::WireStructuralReject => "wire_structural_reject",
            FaultPoint::SeqDuplicateReject => "seq_duplicate_reject",
            FaultPoint::UnknownRankReject => "unknown_rank_reject",
            FaultPoint::LateDataDrop => "late_data_drop",
            FaultPoint::BackpressureDrop => "backpressure_drop",
            FaultPoint::DeadRankLatch => "dead_rank_latch",
            FaultPoint::RankBirth => "rank_birth",
            FaultPoint::ArenaEviction => "arena_eviction",
            FaultPoint::UnknownTenantReject => "unknown_tenant_reject",
            FaultPoint::TenantOverBudgetReject => "tenant_over_budget_reject",
        }
    }

    /// Record one hit at `point`. Relaxed: a coverage tally, not a
    /// synchronization edge.
    #[inline]
    pub fn hit(point: FaultPoint) {
        if let Some(counter) = HITS.get(point as usize) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot all hit counters, indexed like [`ALL`].
    pub fn snapshot() -> [u64; COUNT] {
        let mut out = [0u64; COUNT];
        for (slot, counter) in out.iter_mut().zip(HITS.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }

    /// Reset all hit counters to zero (test/driver setup only).
    pub fn reset() {
        for counter in HITS.iter() {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

/// The canary switchboard: deliberately broken variants the harness
/// must catch, armable only under the `vopr-canary` feature.
pub mod canary {
    /// The shipped canary mutations. Each breaks exactly one
    /// load-bearing piece of ingest logic in a way that a weak harness
    /// would wave through.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[repr(usize)]
    pub enum Canary {
        /// Wire decode accepts frames whose CRC does not match.
        SkipCrcCheck = 0,
        /// The watermark reads ahead of what ranks actually reported,
        /// closing windows before their data has arrived.
        WatermarkOffByOne = 1,
        /// Sequence-number dedup is disabled: retransmits are admitted
        /// twice.
        DedupDisabled = 2,
        /// Window-close eviction reclaims fragments still needed by
        /// open windows.
        EvictLive = 3,
        /// The analysis stage releases windows out of submission order.
        ReorderRelease = 4,
    }

    /// Number of shipped canaries.
    pub const COUNT: usize = 5;

    /// All canaries, in discriminant order.
    pub const CANARIES: [Canary; COUNT] = [
        Canary::SkipCrcCheck,
        Canary::WatermarkOffByOne,
        Canary::DedupDisabled,
        Canary::EvictLive,
        Canary::ReorderRelease,
    ];

    /// Stable machine-readable name, used as the report key.
    pub fn name(canary: Canary) -> &'static str {
        match canary {
            Canary::SkipCrcCheck => "skip_crc_check",
            Canary::WatermarkOffByOne => "watermark_off_by_one",
            Canary::DedupDisabled => "dedup_disabled",
            Canary::EvictLive => "evict_live_fragments",
            Canary::ReorderRelease => "reorder_release_out_of_order",
        }
    }

    /// True when canary support is compiled in at all.
    pub const fn compiled() -> bool {
        cfg!(feature = "vopr-canary")
    }

    #[cfg(feature = "vopr-canary")]
    mod armed_state {
        use std::sync::atomic::AtomicUsize;

        /// 0 = disarmed; `c as usize + 1` = canary `c` armed.
        pub(super) static ARMED: AtomicUsize = AtomicUsize::new(0);
    }

    /// Arm one canary (or disarm all with `None`). At most one canary
    /// is live at a time: each measurement must attribute a catch to
    /// exactly one mutation.
    #[cfg(feature = "vopr-canary")]
    pub fn arm(canary: Option<Canary>) {
        let code = match canary {
            None => 0,
            Some(c) => c as usize + 1,
        };
        armed_state::ARMED.store(code, std::sync::atomic::Ordering::SeqCst);
    }

    /// Is this canary currently armed?
    #[cfg(feature = "vopr-canary")]
    #[inline]
    pub fn armed(canary: Canary) -> bool {
        armed_state::ARMED.load(std::sync::atomic::Ordering::Relaxed) == canary as usize + 1
    }

    /// Without the `vopr-canary` feature arming is a no-op...
    #[cfg(not(feature = "vopr-canary"))]
    pub fn arm(_canary: Option<Canary>) {}

    /// ...and every canary branch is statically dead.
    #[cfg(not(feature = "vopr-canary"))]
    #[inline(always)]
    pub fn armed(_canary: Canary) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_point_names_are_unique_and_dense() {
        let mut names: Vec<&str> = fault_points::ALL.iter().map(|&p| fault_points::name(p)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fault_points::COUNT);
        for (i, &p) in fault_points::ALL.iter().enumerate() {
            assert_eq!(p as usize, i, "discriminants must index the counter array");
        }
    }

    #[test]
    fn hits_accumulate_per_point() {
        // Use a point no production code path in this test binary hits.
        let before = fault_points::snapshot();
        fault_points::hit(fault_points::FaultPoint::RankBirth);
        fault_points::hit(fault_points::FaultPoint::RankBirth);
        let after = fault_points::snapshot();
        let idx = fault_points::FaultPoint::RankBirth as usize;
        assert!(after[idx] >= before[idx] + 2);
    }

    #[test]
    fn canaries_disarmed_by_default() {
        for &c in canary::CANARIES.iter() {
            assert!(!canary::armed(c), "{} must start disarmed", canary::name(c));
        }
    }
}
