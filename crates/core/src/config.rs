//! All tunables in one place, defaulting to the constants the paper's
//! implementation uses (§3.4, §3.5, §4.3, §6.2).

use serde::{Deserialize, Serialize};
use vapro_pmu::{events, CounterSet};
use vapro_sim::VirtualTime;

/// How running states are keyed when building the STG (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StgMode {
    /// Key by call-site only: cheaper hooks, coarser states. The paper's
    /// Table 1 finds this both faster *and* higher-coverage (workload
    /// clustering compensates for the coarser states), so it is the
    /// default.
    ContextFree,
    /// Key by full call-path: needs a call-stack backtrace per hook
    /// (≈10× the hook cost), finer states.
    ContextAware,
}

/// What the ingestor does with a frame from a rank already declared
/// [`Dead`](crate::detect::server::RankHealth::Dead) (it revived, or its
/// data was badly delayed in transit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LateDataPolicy {
    /// Admit the fragments into the arena: still-open windows pick them
    /// up; windows already closed without them stay closed. The default —
    /// data is precious on a production run.
    #[default]
    Readmit,
    /// Discard the frame, counting it in the window coverage as
    /// `dropped_late_frames`. Keeps closed-window provenance simple: a
    /// dead rank stays absent.
    Drop,
}

/// Straggler, death and memory policy for the streaming ingest path
/// (`WindowedIngestor`). Everything defaults to **off**: with no horizons
/// set, window closing blocks on the slowest rank exactly as the
/// fault-free equivalence semantics require, and buffering is unbounded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultTolerance {
    /// A rank whose shipping mark trails the fastest rank's by more than
    /// this is `Degraded`: reported in coverage, but still awaited.
    pub straggler_horizon: Option<VirtualTime>,
    /// A rank trailing by more than this is declared `Dead` and excluded
    /// from the low-watermark, so windows keep closing without it. Death
    /// is latched: later frames are handled per [`LateDataPolicy`].
    pub dead_horizon: Option<VirtualTime>,
    /// What to do with frames from a rank already declared dead.
    pub late_data: LateDataPolicy,
    /// Cap on bytes buffered for frames arriving *ahead* of the
    /// watermark (a fast rank running away from a straggler). Frames
    /// past the cap are dropped and accounted in coverage instead of
    /// growing memory without bound.
    pub max_buffered_bytes: Option<u64>,
}

impl FaultTolerance {
    /// A production-style preset: degrade after `period`, declare dead
    /// after three periods, drop late data, cap ahead-of-watermark
    /// buffering at 64 MiB.
    pub fn production(period: VirtualTime) -> Self {
        FaultTolerance {
            straggler_horizon: Some(period),
            dead_horizon: Some(VirtualTime::from_ns(period.ns().saturating_mul(3))),
            late_data: LateDataPolicy::Drop,
            max_buffered_bytes: Some(64 << 20),
        }
    }

    /// Is any straggler/death handling active?
    pub fn is_active(&self) -> bool {
        self.straggler_horizon.is_some()
            || self.dead_horizon.is_some()
            || self.max_buffered_bytes.is_some()
    }
}

/// Vapro configuration.
#[derive(Debug, Clone)]
pub struct VaproConfig {
    /// STG keying mode.
    pub stg_mode: StgMode,
    /// Relative distance threshold for workload clustering
    /// (paper: 5 %).
    pub cluster_threshold: f64,
    /// Minimum fragments for a cluster to be usable for detection;
    /// smaller clusters are reported as rarely-executed paths
    /// (paper: 5).
    pub min_cluster_size: usize,
    /// Normalised-performance threshold below which a heat-map cell is
    /// variance-suspect (paper: 0.85).
    pub perf_threshold: f64,
    /// A fragment is *abnormal* when it costs more than this multiple of
    /// the fastest fragment in its cluster (paper: 1.2).
    pub ka_abnormal: f64,
    /// A factor is *major* when it contributes more than this share of
    /// the overall variance (paper: 0.25).
    pub major_factor_threshold: f64,
    /// Server reporting period (paper: 15 s).
    pub report_period: VirtualTime,
    /// How many top (by quantified loss) computation regions each closed
    /// streaming window diagnoses. 0 disables in-window diagnosis.
    pub diagnose_top_k: usize,
    /// Counters active during plain detection.
    pub detection_counters: CounterSet,
    /// The computation workload proxy: which counters form the workload
    /// vector for clustering. TOT_INS by default (paper §3.3); users can
    /// add load/store or cache metrics for sharper separation at extra
    /// collection overhead.
    pub proxy_counters: Vec<vapro_pmu::CounterId>,
    /// Per-hook virtual cost in ns. Context-aware mode pays extra for
    /// backtracing on top of this.
    pub hook_cost_ns: f64,
    /// Multiplier on `hook_cost_ns` in context-aware mode (the cost of
    /// unwinding the call stack).
    pub backtrace_cost_factor: f64,
    /// Enable binary-exponential-backoff sampling of short fragments.
    pub sampling_enabled: bool,
    /// Fragments shorter than this are subject to sampling back-off.
    pub sampling_min_ns: f64,
    /// Straggler/death/backpressure policy for streaming ingestion.
    /// Defaults to fully off (block on the slowest rank, buffer without
    /// bound) — the fault-free bit-identical semantics.
    pub fault: FaultTolerance,
    /// How many sealed windows the streaming ingestor may hold in its
    /// pipelined analysis stage at once. With a positive depth,
    /// admission keeps draining frames while clustering runs on stage
    /// workers; reports are still emitted strictly in window order, so
    /// the union of all reports stays bit-identical to the one-shot
    /// analysis. `0` analyses windows inline on the admission thread
    /// (the pre-pipeline behaviour — useful when per-push report
    /// latency must be deterministic).
    pub pipeline_depth: usize,
}

impl Default for VaproConfig {
    fn default() -> Self {
        VaproConfig {
            stg_mode: StgMode::ContextFree,
            cluster_threshold: 0.05,
            min_cluster_size: 5,
            perf_threshold: 0.85,
            ka_abnormal: 1.2,
            major_factor_threshold: 0.25,
            report_period: VirtualTime::from_secs(15),
            diagnose_top_k: 3,
            detection_counters: events::detection_set(),
            proxy_counters: vec![vapro_pmu::CounterId::TotIns],
            hook_cost_ns: 250.0,
            backtrace_cost_factor: 2.5,
            sampling_enabled: false,
            sampling_min_ns: 2_000.0,
            fault: FaultTolerance::default(),
            pipeline_depth: 8,
        }
    }
}

impl VaproConfig {
    /// The context-aware preset.
    pub fn context_aware() -> Self {
        VaproConfig { stg_mode: StgMode::ContextAware, ..VaproConfig::default() }
    }

    /// The context-free preset (same as `default`).
    pub fn context_free() -> Self {
        VaproConfig::default()
    }

    /// Effective per-hook cost for the configured mode.
    pub fn effective_hook_cost_ns(&self) -> f64 {
        match self.stg_mode {
            StgMode::ContextFree => self.hook_cost_ns,
            StgMode::ContextAware => self.hook_cost_ns * self.backtrace_cost_factor,
        }
    }

    /// Use a wider counter set during detection (e.g. when diagnosis has
    /// requested finer factors).
    pub fn with_counters(mut self, set: CounterSet) -> Self {
        self.detection_counters = set;
        self
    }

    /// Use an extended workload proxy for clustering. The proxies are
    /// automatically added to the active counter set (they must be
    /// collected to be clustered on).
    pub fn with_proxy(mut self, proxies: &[vapro_pmu::CounterId]) -> Self {
        assert!(!proxies.is_empty(), "need at least one proxy counter");
        self.detection_counters =
            self.detection_counters.union(CounterSet::from_ids(proxies));
        self.proxy_counters = proxies.to_vec();
        self
    }

    /// Basic sanity of the thresholds.
    pub fn is_valid(&self) -> bool {
        // A rank must degrade before (or when) it dies: a dead horizon
        // tighter than the straggler horizon would skip the Degraded
        // state's early warning.
        let horizons_ordered = match (self.fault.straggler_horizon, self.fault.dead_horizon)
        {
            (Some(s), Some(d)) => d >= s,
            _ => true,
        };
        self.cluster_threshold > 0.0
            && self.cluster_threshold < 1.0
            && self.min_cluster_size >= 2
            && (0.0..1.0).contains(&self.perf_threshold)
            && self.ka_abnormal > 1.0
            && (0.0..1.0).contains(&self.major_factor_threshold)
            && self.hook_cost_ns >= 0.0
            && horizons_ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_constants() {
        let c = VaproConfig::default();
        assert_eq!(c.cluster_threshold, 0.05);
        assert_eq!(c.min_cluster_size, 5);
        assert_eq!(c.perf_threshold, 0.85);
        assert_eq!(c.ka_abnormal, 1.2);
        assert_eq!(c.major_factor_threshold, 0.25);
        assert_eq!(c.report_period, VirtualTime::from_secs(15));
        assert!(c.is_valid());
    }

    #[test]
    fn fault_tolerance_defaults_to_off_and_orders_horizons() {
        let c = VaproConfig::default();
        assert!(!c.fault.is_active());
        assert_eq!(c.fault.late_data, LateDataPolicy::Readmit);
        // dead < straggler is rejected.
        let mut bad = VaproConfig::default();
        bad.fault.straggler_horizon = Some(VirtualTime::from_secs(10));
        bad.fault.dead_horizon = Some(VirtualTime::from_secs(5));
        assert!(!bad.is_valid());
        let prod = FaultTolerance::production(VirtualTime::from_secs(15));
        assert!(prod.is_active());
        let ok = VaproConfig { fault: prod, ..VaproConfig::default() };
        assert!(ok.is_valid());
    }

    #[test]
    fn context_aware_hooks_cost_more() {
        // The paper's Table 1: CA ≈ 2× the CF overhead (3.81% vs 1.80%),
        // from the call-stack backtrace each hook must take.
        let cf = VaproConfig::context_free();
        let ca = VaproConfig::context_aware();
        assert!(ca.effective_hook_cost_ns() >= cf.effective_hook_cost_ns() * 2.0);
    }
}
