//! All tunables in one place, defaulting to the constants the paper's
//! implementation uses (§3.4, §3.5, §4.3, §6.2).

use serde::{Deserialize, Serialize};
use vapro_pmu::{events, CounterSet};
use vapro_sim::VirtualTime;

/// How running states are keyed when building the STG (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StgMode {
    /// Key by call-site only: cheaper hooks, coarser states. The paper's
    /// Table 1 finds this both faster *and* higher-coverage (workload
    /// clustering compensates for the coarser states), so it is the
    /// default.
    ContextFree,
    /// Key by full call-path: needs a call-stack backtrace per hook
    /// (≈10× the hook cost), finer states.
    ContextAware,
}

/// Vapro configuration.
#[derive(Debug, Clone)]
pub struct VaproConfig {
    /// STG keying mode.
    pub stg_mode: StgMode,
    /// Relative distance threshold for workload clustering
    /// (paper: 5 %).
    pub cluster_threshold: f64,
    /// Minimum fragments for a cluster to be usable for detection;
    /// smaller clusters are reported as rarely-executed paths
    /// (paper: 5).
    pub min_cluster_size: usize,
    /// Normalised-performance threshold below which a heat-map cell is
    /// variance-suspect (paper: 0.85).
    pub perf_threshold: f64,
    /// A fragment is *abnormal* when it costs more than this multiple of
    /// the fastest fragment in its cluster (paper: 1.2).
    pub ka_abnormal: f64,
    /// A factor is *major* when it contributes more than this share of
    /// the overall variance (paper: 0.25).
    pub major_factor_threshold: f64,
    /// Server reporting period (paper: 15 s).
    pub report_period: VirtualTime,
    /// How many top (by quantified loss) computation regions each closed
    /// streaming window diagnoses. 0 disables in-window diagnosis.
    pub diagnose_top_k: usize,
    /// Counters active during plain detection.
    pub detection_counters: CounterSet,
    /// The computation workload proxy: which counters form the workload
    /// vector for clustering. TOT_INS by default (paper §3.3); users can
    /// add load/store or cache metrics for sharper separation at extra
    /// collection overhead.
    pub proxy_counters: Vec<vapro_pmu::CounterId>,
    /// Per-hook virtual cost in ns. Context-aware mode pays extra for
    /// backtracing on top of this.
    pub hook_cost_ns: f64,
    /// Multiplier on `hook_cost_ns` in context-aware mode (the cost of
    /// unwinding the call stack).
    pub backtrace_cost_factor: f64,
    /// Enable binary-exponential-backoff sampling of short fragments.
    pub sampling_enabled: bool,
    /// Fragments shorter than this are subject to sampling back-off.
    pub sampling_min_ns: f64,
}

impl Default for VaproConfig {
    fn default() -> Self {
        VaproConfig {
            stg_mode: StgMode::ContextFree,
            cluster_threshold: 0.05,
            min_cluster_size: 5,
            perf_threshold: 0.85,
            ka_abnormal: 1.2,
            major_factor_threshold: 0.25,
            report_period: VirtualTime::from_secs(15),
            diagnose_top_k: 3,
            detection_counters: events::detection_set(),
            proxy_counters: vec![vapro_pmu::CounterId::TotIns],
            hook_cost_ns: 250.0,
            backtrace_cost_factor: 2.5,
            sampling_enabled: false,
            sampling_min_ns: 2_000.0,
        }
    }
}

impl VaproConfig {
    /// The context-aware preset.
    pub fn context_aware() -> Self {
        VaproConfig { stg_mode: StgMode::ContextAware, ..VaproConfig::default() }
    }

    /// The context-free preset (same as `default`).
    pub fn context_free() -> Self {
        VaproConfig::default()
    }

    /// Effective per-hook cost for the configured mode.
    pub fn effective_hook_cost_ns(&self) -> f64 {
        match self.stg_mode {
            StgMode::ContextFree => self.hook_cost_ns,
            StgMode::ContextAware => self.hook_cost_ns * self.backtrace_cost_factor,
        }
    }

    /// Use a wider counter set during detection (e.g. when diagnosis has
    /// requested finer factors).
    pub fn with_counters(mut self, set: CounterSet) -> Self {
        self.detection_counters = set;
        self
    }

    /// Use an extended workload proxy for clustering. The proxies are
    /// automatically added to the active counter set (they must be
    /// collected to be clustered on).
    pub fn with_proxy(mut self, proxies: &[vapro_pmu::CounterId]) -> Self {
        assert!(!proxies.is_empty(), "need at least one proxy counter");
        self.detection_counters =
            self.detection_counters.union(CounterSet::from_ids(proxies));
        self.proxy_counters = proxies.to_vec();
        self
    }

    /// Basic sanity of the thresholds.
    pub fn is_valid(&self) -> bool {
        self.cluster_threshold > 0.0
            && self.cluster_threshold < 1.0
            && self.min_cluster_size >= 2
            && (0.0..1.0).contains(&self.perf_threshold)
            && self.ka_abnormal > 1.0
            && (0.0..1.0).contains(&self.major_factor_threshold)
            && self.hook_cost_ns >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_constants() {
        let c = VaproConfig::default();
        assert_eq!(c.cluster_threshold, 0.05);
        assert_eq!(c.min_cluster_size, 5);
        assert_eq!(c.perf_threshold, 0.85);
        assert_eq!(c.ka_abnormal, 1.2);
        assert_eq!(c.major_factor_threshold, 0.25);
        assert_eq!(c.report_period, VirtualTime::from_secs(15));
        assert!(c.is_valid());
    }

    #[test]
    fn context_aware_hooks_cost_more() {
        // The paper's Table 1: CA ≈ 2× the CF overhead (3.81% vs 1.80%),
        // from the call-stack backtrace each hook must take.
        let cf = VaproConfig::context_free();
        let ca = VaproConfig::context_aware();
        assert!(ca.effective_hook_cost_ns() >= cf.effective_hook_cost_ns() * 2.0);
    }
}
