//! Sampling policies: trading detection coverage for overhead (paper
//! §3.5 "Sampling" and §5's binary exponential backoff).
//!
//! Two mechanisms, both heuristic per the paper:
//!
//! * **skip-short**: fragments shorter than a floor carry little variance
//!   information per unit overhead, so they are the first to be skipped;
//! * **binary exponential backoff** per state: when a state fires at high
//!   frequency, record only every 2^k-th occurrence, doubling the backoff
//!   while the rate stays high and halving it as the rate drops.

use std::collections::HashMap;

/// Per-state exponential backoff sampler.
#[derive(Debug, Default)]
pub struct BackoffSampler {
    states: HashMap<u64, StateBackoff>,
    /// Fragments shorter than this (ns) are eligible for backoff.
    pub min_duration_ns: f64,
}

#[derive(Debug, Default)]
struct StateBackoff {
    /// Current backoff exponent: record every 2^k-th occurrence.
    k: u32,
    /// Occurrences since the last recorded one.
    since_recorded: u64,
    /// Consecutive recorded-short streak, drives k upward.
    short_streak: u32,
}

/// Maximum backoff exponent (records at least every 1024th occurrence so
/// coverage never collapses entirely).
const MAX_K: u32 = 10;

impl BackoffSampler {
    /// A sampler skipping fragments shorter than `min_duration_ns`.
    pub fn new(min_duration_ns: f64) -> Self {
        BackoffSampler { states: HashMap::new(), min_duration_ns }
    }

    /// Decide whether to record this occurrence of `state_hash` whose
    /// previous fragment lasted `duration_ns`. Long fragments are always
    /// recorded and relax the state's backoff; short ones tighten it.
    pub fn should_record(&mut self, state_hash: u64, duration_ns: f64) -> bool {
        let st = self.states.entry(state_hash).or_default();
        if duration_ns >= self.min_duration_ns {
            // Long fragment: always record, decay the backoff.
            st.short_streak = 0;
            if st.k > 0 {
                st.k -= 1;
            }
            st.since_recorded = 0;
            return true;
        }
        // Short fragment: subject to backoff.
        st.since_recorded += 1;
        if st.since_recorded >= (1u64 << st.k) {
            st.since_recorded = 0;
            st.short_streak += 1;
            // Every 4 recorded shorts in a row, double the backoff.
            if st.short_streak.is_multiple_of(4) && st.k < MAX_K {
                st.k += 1;
            }
            true
        } else {
            false
        }
    }

    /// Current backoff exponent of a state (for tests/telemetry).
    pub fn backoff_of(&self, state_hash: u64) -> u32 {
        self.states.get(&state_hash).map_or(0, |s| s.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_fragments_are_always_recorded() {
        let mut s = BackoffSampler::new(1_000.0);
        for _ in 0..100 {
            assert!(s.should_record(1, 5_000.0));
        }
        assert_eq!(s.backoff_of(1), 0);
    }

    #[test]
    fn short_fragments_back_off_exponentially() {
        let mut s = BackoffSampler::new(1_000.0);
        let recorded = (0..4096).filter(|_| s.should_record(7, 10.0)).count();
        // Far fewer than all, far more than none.
        assert!(recorded < 400, "recorded {recorded}");
        assert!(recorded > 10, "recorded {recorded}");
        assert!(s.backoff_of(7) > 2);
    }

    #[test]
    fn backoff_relaxes_when_fragments_lengthen() {
        let mut s = BackoffSampler::new(1_000.0);
        for _ in 0..512 {
            s.should_record(3, 10.0);
        }
        let tightened = s.backoff_of(3);
        assert!(tightened > 0);
        for _ in 0..(tightened + 1) {
            s.should_record(3, 10_000.0);
        }
        assert_eq!(s.backoff_of(3), 0);
    }

    #[test]
    fn states_back_off_independently() {
        let mut s = BackoffSampler::new(1_000.0);
        for _ in 0..256 {
            s.should_record(1, 10.0);
        }
        assert!(s.backoff_of(1) > 0);
        assert_eq!(s.backoff_of(2), 0);
        assert!(s.should_record(2, 10.0)); // first occurrence records
    }

    #[test]
    fn backoff_is_capped() {
        let mut s = BackoffSampler::new(1_000.0);
        for _ in 0..2_000_000 {
            s.should_record(9, 1.0);
        }
        assert!(s.backoff_of(9) <= MAX_K);
    }
}
